//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Provides exactly what the workspace consumes: the [`Distribution`] trait
//! (re-exported from the vendored `rand`) and a [`Zipf`] distribution with
//! the `rand_distr` 0.4 constructor signature `Zipf::new(n: u64, s: f64)`.
//!
//! Sampling uses an exact inverse-CDF table (`O(n)` build, `O(log n)` per
//! sample) instead of `rand_distr`'s rejection-inversion. For the keyspaces
//! this repo uses (≤ a few million keys) the table costs a few MB and one
//! `powf` pass at construction, and the resulting distribution is exact
//! rather than approximate.

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error from [`Zipf::new`] on a degenerate parameterization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` must be at least 1.
    NTooSmall,
    /// The exponent must be finite and non-negative.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "Zipf: n must be >= 1"),
            ZipfError::STooSmall => write!(f, "Zipf: s must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(X = k) ∝ k^(-s)`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Normalized cumulative probabilities; `cdf[k-1] = P(X <= k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n < 1 {
            return Err(ZipfError::NTooSmall);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against rounding leaving the last entry below 1.0.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, -0.5).is_err());
    }

    #[test]
    fn samples_stay_in_rank_range() {
        let z = Zipf::new(1000, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&v), "rank {v} out of range");
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 50_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) <= 100.0).count() as f64 / n as f64;
        // For s = 0.99, the top-100 ranks of 10k carry roughly half the mass.
        assert!(hot > 0.35, "hot-rank mass {hot} too small for Zipf(0.99)");
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(100, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean = (0..n).map(|_| z.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.5).abs() < 1.0, "mean {mean}");
    }
}
