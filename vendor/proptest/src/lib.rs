//! Offline vendored stand-in for the `proptest` crate.
//!
//! The container cannot reach crates.io, so this crate reimplements the
//! slice of proptest the workspace's test-suite uses:
//!
//! - the [`proptest!`] macro (optional `#![proptest_config(..)]`, any number
//!   of `#[test] fn name(pat in strategy, ..) { .. }` items, doc comments),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - range strategies over primitive numerics (`0u8..5`, `-1e6f64..1e6`),
//!   tuple strategies, [`any::<T>()`], and `proptest::collection::{vec,
//!   btree_set}`.
//!
//! Differences from real proptest, deliberately accepted: **no shrinking**
//! (a failing case reports its seed and values, but is not minimized) and a
//! fixed deterministic seed per test derived from the test name, so failures
//! reproduce exactly across runs.

use rand::rngs::StdRng;

/// Failure raised by `prop_assert!` family; carries the formatted message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test inputs. Unlike real proptest there is no value
    /// tree: strategies sample directly and never shrink.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Values with a canonical "whole type" strategy, i.e. `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`], returned by [`crate::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Constant strategy: every sample is a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union over strategies sharing a value type; each sample picks
    /// one arm with probability proportional to its weight. Built by
    /// [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// # Panics
        ///
        /// Panics if the weights sum to zero (no arm could ever be picked).
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, strat) in &self.arms {
                if pick < *w {
                    return strat.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target size drawn from `size`.
    ///
    /// Duplicates from the element strategy may leave the set smaller than
    /// the drawn target; extra draws (up to 4× the target) compensate. The
    /// minimum bound is honoured on a best-effort basis, matching how this
    /// workspace uses it (large element domains, small sizes).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    pub fn btree_set<S>(elem: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.start..self.size.end);
            let mut set = BTreeSet::new();
            let mut draws = 0;
            while set.len() < target && draws < target.saturating_mul(4) + 8 {
                set.insert(self.elem.sample(rng));
                draws += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Runs `cases` iterations of a property body with freshly sampled inputs.
/// Used by the expansion of [`proptest!`]; not part of the public API shape
/// of real proptest, but kept `pub` so the macro can reach it.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    let base = seed_for(test_name);
    for i in 0..config.cases {
        let seed = base ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest '{test_name}' failed at case {i} (seed {seed:#x}): {e}\n\
                 (vendored proptest: no shrinking; rerun reproduces exactly)"
            );
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Weighted choice between strategies with a common value type:
/// `prop_oneof![3 => -1.0..1.0, 1 => Just(f64::NAN)]`. Unweighted arms
/// (`prop_oneof![a, b]`) all get weight 1, matching real proptest.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32,
               ::std::boxed::Box::new($strat)
                   as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u8..9, b in -2.5f64..2.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
        }

        /// Tuple + collection strategies compose.
        #[test]
        fn vec_of_tuples(v in crate::collection::vec((0u8..5, 0u64..100), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (op, key) in v {
                prop_assert!(op < 5);
                prop_assert!(key < 100);
            }
        }

        /// btree_set draws an ordered set within the size bounds.
        #[test]
        fn btree_set_sizes(s in crate::collection::btree_set(0u64..1000, 1..50)) {
            prop_assert!(s.len() < 50);
            prop_assert!(s.iter().all(|&k| k < 1000));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "intentional");
                Ok(())
            },
        );
    }
}
