//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so this
//! workspace vendors the *minimal* slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive ranges of the primitive numeric types, [`seq::SliceRandom`]
//! (Fisher–Yates `shuffle` + `choose`), and the
//! [`distributions::Distribution`] trait consumed by the vendored
//! `rand_distr`.
//!
//! It is **not** a general-purpose replacement: no thread-local RNG, no
//! `fill_bytes`, no `Standard` distribution beyond what `gen_range` needs.
//! Determinism is the priority — the repro harness seeds everything — and
//! xoshiro256++ comfortably passes the statistical sanity the test-suite
//! asserts (Zipf hot-set hit ratios, shuffle pairing, etc.).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a random `u64` to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, state-expanded from a `u64` seed via SplitMix64.
    ///
    /// Chosen over the real `StdRng`'s ChaCha12 for implementation size; the
    /// workspace only needs statistical quality, not cryptographic strength.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: Fisher–Yates shuffle and uniform element choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types that produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn float_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // A 64-element shuffle fixing every point has probability ~1/64!.
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }
}
