//! Offline vendored stand-in for the `criterion` crate.
//!
//! The container has no crates.io access, so this crate provides a real —
//! if much simpler — wall-clock benchmarking harness behind the criterion
//! API surface the workspace's benches use: `Criterion::default()`,
//! `sample_size`, `bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after an auto-calibrated warmup, each sample times a
//! batch of iterations sized so one sample lasts roughly 2 ms, and reports
//! per-iteration wall time. Output is median / mean / min / max per
//! benchmark id, one line each — no plots, no statistical regression
//! analysis. Median per-iteration nanoseconds is also exported via
//! [`summaries`] so harness code (e.g. the telemetry overhead gate) can
//! assert on results programmatically.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. All variants behave identically
/// here (setup always runs outside the timed section).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let f = function_name.into();
        BenchmarkId {
            id: format!("{f}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One completed measurement, exposed through [`summaries`].
#[derive(Clone, Debug)]
pub struct Summary {
    pub id: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_count: usize,
    target_sample_time: Duration,
}

impl Bencher {
    /// Benchmark `routine` by timing batches of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit in ~target_sample_time?
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target_sample_time / 4 || n >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as f64 / n as f64;
                n = ((self.target_sample_time.as_nanos() as f64 / per_iter) as u64)
                    .clamp(1, 1 << 30);
                break;
            }
            n *= 8;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / n as f64);
        }
    }

    /// Benchmark `routine` over inputs created by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate batch size against routine cost alone.
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target_sample_time / 4 || n >= 1 << 20 {
                let per_iter = elapsed.as_nanos().max(1) as f64 / n as f64;
                n = ((self.target_sample_time.as_nanos() as f64 / per_iter) as u64)
                    .clamp(1, 1 << 20);
                break;
            }
            n *= 8;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / n as f64);
        }
    }
}

thread_local! {
    static SUMMARIES: std::cell::RefCell<Vec<Summary>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// All summaries recorded on this thread so far, in execution order.
pub fn summaries() -> Vec<Summary> {
    SUMMARIES.with(|s| s.borrow().clone())
}

fn record(id: &str, samples_ns: &mut [f64], quiet: bool) {
    if samples_ns.is_empty() {
        return;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let summary = Summary {
        id: id.to_string(),
        median_ns: median,
        mean_ns: mean,
        min_ns: samples_ns[0],
        max_ns: samples_ns[samples_ns.len() - 1],
        samples: samples_ns.len(),
    };
    if !quiet {
        println!(
            "{:<48} time: [median {} | mean {} | min {} | max {}] ({} samples)",
            summary.id,
            fmt_ns(summary.median_ns),
            fmt_ns(summary.mean_ns),
            fmt_ns(summary.min_ns),
            fmt_ns(summary.max_ns),
            summary.samples,
        );
    }
    SUMMARIES.with(|s| s.borrow_mut().push(summary));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
    filter: Option<String>,
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            target_sample_time: Duration::from_millis(2),
            filter: None,
            quiet: false,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Accepted for API compatibility; the simplified harness sizes samples
    /// by `target_sample_time` rather than a total measurement budget.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    fn runs(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !self.runs(&id.id) {
            return self;
        }
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_count: self.sample_size,
            target_sample_time: self.target_sample_time,
        };
        f(&mut b);
        let mut samples = b.samples_ns;
        record(&id.id, &mut samples, self.quiet);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }
}

/// Named group of related benchmarks; ids print as `group/bench`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    /// Accepted for API compatibility; see [`Criterion::measurement_time`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.runs(&full) {
            return self;
        }
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_count: self.sample_size.unwrap_or(self.criterion.sample_size),
            target_sample_time: self.criterion.target_sample_time,
        };
        f(&mut b);
        let mut samples = b.samples_ns;
        record(&full, &mut samples, self.criterion.quiet);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id: BenchmarkId = id.id.as_str().into();
        self.bench_function(full_id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Expands to a function running each target against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(filter: Option<&str>) {
            $(
                let mut c: $crate::Criterion = $config;
                if let Some(f) = filter {
                    c = c.with_filter(f);
                }
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Expands to `main`, accepting (and mostly ignoring) cargo-bench CLI flags;
/// a bare non-flag argument becomes a substring filter on benchmark ids.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut filter: Option<String> = None;
            for arg in std::env::args().skip(1) {
                if !arg.starts_with('-') {
                    filter = Some(arg);
                }
            }
            $( $group(filter.as_deref()); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_op_sanely() {
        let mut c = Criterion {
            quiet: true,
            ..Criterion::default()
        }
        .sample_size(10);
        let mut acc = 0u64;
        c.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(std::hint::black_box(3));
                acc
            })
        });
        let s = summaries();
        let add = s.iter().rev().find(|s| s.id == "add").expect("summary");
        // A wrapping add plus black_box overhead is in the ns range,
        // certainly under 1 µs even on a loaded CI machine.
        assert!(
            add.median_ns > 0.0 && add.median_ns < 1_000.0,
            "median {}",
            add.median_ns
        );
    }

    #[test]
    fn groups_and_batched_inputs_work() {
        let mut c = Criterion {
            quiet: true,
            ..Criterion::default()
        }
        .sample_size(5);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter_batched(
                || vec![1u64; n],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert!(summaries().iter().any(|s| s.id == "g/64"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            quiet: true,
            ..Criterion::default()
        }
        .with_filter("only_this");
        c.bench_function("something_else", |b| b.iter(|| 1 + 1));
        assert!(!summaries().iter().any(|s| s.id == "something_else"));
    }
}
