//! Integration of the asynchronous-training architecture (§3.2): the
//! simulator produces tracepoints on the "I/O path" while KML's training
//! thread drains and learns on its own kthread — in-kernel training, the
//! mode the paper says it also supports ("we also tried training the same
//! neural networks directly in the kernel").

use kernel_sim::{DeviceProfile, Sim, SimConfig, TraceRecord};
use kml_collect::{AsyncTrainer, RingBuffer};
use kml_platform::Persona;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn async_trainer_consumes_live_simulator_tracepoints() {
    let (producer, consumer) = RingBuffer::<TraceRecord>::with_capacity(1 << 14).split();

    // The "training function pointer" of §3.2: here it folds records into
    // feature extractors, counting what it sees.
    let seen = Arc::new(AtomicU64::new(0));
    let offsets = Arc::new(Mutex::new(Vec::new()));
    let (seen_w, offsets_w) = (seen.clone(), offsets.clone());
    let trainer = AsyncTrainer::spawn(Persona::Kernel, consumer, move |batch: &[TraceRecord]| {
        seen_w.fetch_add(batch.len() as u64, Ordering::Relaxed);
        offsets_w
            .lock()
            .expect("no poisoning")
            .extend(batch.iter().map(|r| r.page_offset));
    })
    .expect("training thread spawns");

    // The I/O path: a workload hammers the simulator, which pushes
    // tracepoints wait-free.
    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::nvme(),
        cache_pages: 512,
        ..SimConfig::default()
    });
    sim.attach_trace(producer);
    let f = sim.create_file(1 << 16);
    let mut expected = 0u64;
    for i in 0..2_000u64 {
        let page = (i * 37) % ((1 << 16) - 4);
        sim.read(f, page, 1).unwrap();
        expected = sim.stats().cache.insertions;
    }

    // Wait for the training thread to drain everything, then stop it.
    while seen.load(Ordering::Relaxed) + trainer.samples_dropped() < expected {
        std::thread::yield_now();
    }
    let dropped = trainer.samples_dropped();
    trainer.stop().expect("trainer stops cleanly");

    let observed = seen.load(Ordering::Relaxed);
    assert_eq!(
        observed + dropped,
        expected,
        "every tracepoint is either trained on or counted as lost"
    );
    // With a 16Ki ring against this workload no loss is expected.
    assert_eq!(dropped, 0, "ring buffer overflowed unexpectedly");

    // Sanity on payload integrity: offsets within file bounds.
    let offsets = offsets.lock().expect("no poisoning");
    assert!(offsets.iter().all(|&o| o < 1 << 16));
}

#[test]
fn undersized_ring_loses_data_observably_not_silently() {
    // §3.1: "users must carefully configure the circular buffer size" —
    // a deliberately tiny ring under a fast producer loses records, and the
    // framework reports exactly how many.
    let (producer, consumer) = RingBuffer::<TraceRecord>::with_capacity(8).split();
    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::nvme(),
        cache_pages: 512,
        ..SimConfig::default()
    });
    sim.attach_trace(producer);
    let f = sim.create_file(1 << 16);
    // Burst first (nothing draining), then start the trainer.
    for i in 0..500u64 {
        sim.read(f, (i * 97) % ((1 << 16) - 4), 1).unwrap();
    }
    let produced = sim.stats().cache.insertions;
    let seen = Arc::new(AtomicU64::new(0));
    let seen_w = seen.clone();
    let trainer = AsyncTrainer::spawn(Persona::Kernel, consumer, move |batch: &[TraceRecord]| {
        seen_w.fetch_add(batch.len() as u64, Ordering::Relaxed);
    })
    .expect("training thread spawns");
    while seen.load(Ordering::Relaxed) + trainer.samples_dropped() < produced {
        std::thread::yield_now();
    }
    let dropped = trainer.samples_dropped();
    trainer.stop().expect("trainer stops");
    assert!(
        dropped >= produced - 8,
        "loss accounting: {dropped} of {produced}"
    );
}
