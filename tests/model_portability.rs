//! Cross-precision deployment invariants (§3.1 + §3.3): a model trained in
//! one precision must deploy into the others through the KML model file
//! with agreeing predictions — and the fixed-point deployment must stay
//! off the FPU.

use kml_core::dataset::{Dataset, Normalizer};
use kml_core::fixed::Fix32;
use kml_core::loss::CrossEntropyLoss;
use kml_core::model::{Model, ModelBuilder};
use kml_core::optimizer::Sgd;
use kml_core::KmlRng;
use rand::{Rng, SeedableRng};

fn trained_f64() -> (Model<f64>, Dataset) {
    let mut rng = KmlRng::seed_from_u64(77);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..400 {
        let class = rng.gen_range(0..3usize);
        let center = [(-4.0, 0.0), (4.0, 0.0), (0.0, 5.0)][class];
        rows.push(vec![
            center.0 + rng.gen_range(-1.0..1.0),
            center.1 + rng.gen_range(-1.0..1.0),
        ]);
        labels.push(class);
    }
    let data = Dataset::from_rows(&rows, &labels).expect("dataset builds");
    let mut model = ModelBuilder::new(2)
        .linear(10)
        .sigmoid()
        .linear(3)
        .seed(5)
        .build::<f64>()
        .expect("model builds");
    model.set_normalizer(Normalizer::fit(data.features()).expect("normalizer fits"));
    let mut sgd = Sgd::new(0.2, 0.9);
    for _ in 0..150 {
        model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .expect("epoch trains");
    }
    assert!(model.accuracy(&data).expect("accuracy") > 0.95);
    (model, data)
}

#[test]
fn all_three_precisions_agree_on_confident_inputs() {
    let (mut f64_model, data) = trained_f64();
    let bytes = kml_core::modelfile::encode(&f64_model).expect("encode");
    let mut f32_model = kml_core::modelfile::decode::<f32>(&bytes).expect("decode f32");
    let mut q16_model = kml_core::modelfile::decode::<Fix32>(&bytes).expect("decode q16");

    let mut f32_agree = 0;
    let mut q16_agree = 0;
    for i in 0..data.len() {
        let (f, _) = data.sample(i);
        let truth = f64_model.predict(f).expect("f64 predicts");
        f32_agree += usize::from(f32_model.predict(f).expect("f32 predicts") == truth);
        q16_agree += usize::from(q16_model.predict(f).expect("q16 predicts") == truth);
    }
    let n = data.len();
    assert!(
        f32_agree as f64 / n as f64 > 0.99,
        "f32 agreement {f32_agree}/{n}"
    );
    assert!(
        q16_agree as f64 / n as f64 > 0.95,
        "q16 agreement {q16_agree}/{n}"
    );
}

#[test]
fn quantized_model_is_smaller_and_close_in_accuracy() {
    let (mut f64_model, data) = trained_f64();
    let bytes = kml_core::modelfile::encode(&f64_model).expect("encode");
    let mut q16_model = kml_core::modelfile::decode::<Fix32>(&bytes).expect("decode");

    // §3.1 trade-off: fixed point halves the memory (vs f64) ...
    assert_eq!(q16_model.param_bytes() * 2, f64_model.param_bytes());
    // ... and costs little accuracy on this well-separated task.
    let f64_acc = f64_model.accuracy(&data).expect("accuracy");
    let q16_acc = q16_model.accuracy(&data).expect("accuracy");
    assert!(
        q16_acc > f64_acc - 0.05,
        "quantized accuracy {q16_acc:.3} vs float {f64_acc:.3}"
    );
}

#[test]
fn saved_files_are_byte_stable_across_loads() {
    let (model, _) = trained_f64();
    let bytes1 = kml_core::modelfile::encode(&model).expect("encode");
    let reloaded = kml_core::modelfile::decode::<f64>(&bytes1).expect("decode");
    let bytes2 = kml_core::modelfile::encode(&reloaded).expect("re-encode");
    assert_eq!(bytes1, bytes2, "encode → decode → encode must be stable");
}

#[test]
fn normalizer_travels_with_the_model() {
    let (model, data) = trained_f64();
    let bytes = kml_core::modelfile::encode(&model).expect("encode");
    let loaded = kml_core::modelfile::decode::<f32>(&bytes).expect("decode");
    let n = loaded.normalizer().expect("normalizer present");
    let orig = model.normalizer().expect("normalizer present");
    assert_eq!(n.means(), orig.means());
    assert_eq!(n.stds(), orig.stds());
    let _ = data;
}
