//! Failure-path integration: the paper's safety story (§3.1, §3.3) is that
//! KML degrades gracefully — allocation failure under memory pressure,
//! ring-buffer overflow, corrupt model files — without taking the "kernel"
//! down. These tests drive each failure through the public API.

use kml_core::model::ModelBuilder;
use kml_platform::alloc::KmlAllocator;
use kml_platform::{Persona, PlatformError};

#[test]
fn allocation_failure_surfaces_as_error_not_panic() {
    let alloc = KmlAllocator::new(Persona::Kernel);
    alloc.inject_failures(1);
    let err = alloc
        .alloc_bytes(64)
        .expect_err("injected failure must surface");
    assert!(matches!(err, PlatformError::OutOfMemory { .. }));
    // The allocator keeps working afterwards.
    let ok = alloc
        .alloc_bytes(64)
        .expect("subsequent allocation succeeds");
    assert_eq!(ok.len(), 64);
}

#[test]
fn memory_pressure_with_reservation_keeps_model_memory_available() {
    // §3.1: "KML thus supports memory reservation to ensure predictable
    // performance and accuracy."
    let alloc = KmlAllocator::new(Persona::Kernel);
    alloc.reserve(8192).expect("reservation succeeds");
    // Claim most of the reservation...
    let _working_set = alloc.alloc_bytes(6000).expect("within reservation");
    // ...a small model's worth still fits...
    let model_mem = alloc.alloc_bytes(2000).expect("model memory guaranteed");
    // ...but exceeding the reservation fails loudly, not silently.
    let err = alloc
        .alloc_bytes(1000)
        .expect_err("over-reservation must fail");
    assert!(matches!(err, PlatformError::OutOfMemory { .. }));
    drop(model_mem);
    // Freed bytes return to the pool.
    assert!(alloc.alloc_bytes(1000).is_ok());
}

#[test]
fn corrupt_model_files_never_produce_a_model() {
    let model = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f32>()
        .expect("builds");
    let good = kml_core::modelfile::encode(&model).expect("encodes");

    // Flip every single byte, one at a time, on a sample of positions:
    // decode must either fail or produce a structurally valid model —
    // never panic, never UB.
    for pos in (0..good.len()).step_by(7) {
        let mut bad = good.clone();
        bad[pos] ^= 0xA5;
        match kml_core::modelfile::decode::<f32>(&bad) {
            Err(_) => {}
            Ok(mut m) => {
                // Extremely unlikely (checksum collision), but if it decodes
                // it must still be usable.
                let _ = m.predict(&[0.0; 5]);
            }
        }
    }

    // Truncations at every length must fail cleanly.
    for cut in 0..good.len().min(64) {
        assert!(
            kml_core::modelfile::decode::<f32>(&good[..cut]).is_err(),
            "truncation to {cut} bytes decoded"
        );
    }
}

#[test]
fn tuner_survives_trace_overflow() {
    // An undersized ring under a fast simulator must not wedge the tuner:
    // decisions keep flowing, loss is reported.
    use kernel_sim::{DeviceProfile, Sim, SimConfig};
    use kml_collect::RingBuffer;
    use kml_core::dataset::Dataset;
    use kml_core::dtree::{DecisionTree, DecisionTreeConfig};
    use readahead::tuner::{KmlTuner, RaPolicy, TunerModel};

    let tree = DecisionTree::fit(
        &Dataset::from_rows(
            &[
                vec![1.0, 0.0, 0.0, 1000.0, 128.0],
                vec![1.0, 0.0, 0.0, 1.0, 128.0],
            ],
            &[0, 1],
        )
        .expect("dataset"),
        DecisionTreeConfig::default(),
    )
    .expect("tree fits");

    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::nvme(),
        cache_pages: 512,
        ..SimConfig::default()
    });
    let (producer, consumer) = RingBuffer::with_capacity(4).split(); // tiny!
    sim.attach_trace(producer);
    let f = sim.create_file(1 << 18);
    let mut tuner = KmlTuner::new(
        TunerModel::Tree(tree),
        RaPolicy::new(vec![16, 1024]),
        consumer,
        1_000_000,
        128,
    );
    let mut x = 9u64;
    for _ in 0..2_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.read(f, (x >> 14) % ((1 << 18) - 4), 4).unwrap();
        tuner.on_op(&mut sim).expect("tuner survives overflow");
    }
    assert!(
        tuner.records_dropped() > 0,
        "overflow expected with a 4-slot ring"
    );
    assert!(
        !tuner.decisions().is_empty(),
        "tuner still made decisions from the surviving records"
    );
}
