//! End-to-end integration: the complete §4 pipeline from tracepoints to
//! Table 2-shaped results, across all crates.

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::closed_loop;
use readahead::model::{train_paper_model, LoopConfig, TrainedReadahead};
use std::sync::OnceLock;

/// Train once for the whole test binary (the expensive step).
fn trained() -> &'static TrainedReadahead {
    static CELL: OnceLock<TrainedReadahead> = OnceLock::new();
    CELL.get_or_init(|| {
        train_paper_model(&LoopConfig::quick()).expect("quick training pipeline succeeds")
    })
}

#[test]
fn classifier_reaches_high_cross_validated_accuracy() {
    let cv = &trained().cross_validation;
    assert!(
        cv.mean_accuracy() > 0.75,
        "cross-validated accuracy {:.3} (paper: 0.955 at full scale)",
        cv.mean_accuracy()
    );
}

#[test]
fn table2_shape_holds_across_workloads_and_devices() {
    let cfg = LoopConfig::quick();
    let t = trained();

    let mut nvme = Vec::new();
    let mut ssd = Vec::new();
    for workload in Workload::all() {
        let on_nvme = closed_loop::compare(workload, DeviceProfile::nvme(), t, &cfg)
            .expect("nvme comparison runs");
        let on_ssd = closed_loop::compare(workload, DeviceProfile::sata_ssd(), t, &cfg)
            .expect("ssd comparison runs");
        nvme.push((workload, on_nvme.speedup));
        ssd.push((workload, on_ssd.speedup));
    }

    // Shape 1: nothing collapses (worst case bounded like the paper's 0.96x).
    for &(w, s) in nvme.iter().chain(&ssd) {
        assert!(s > 0.85, "{w} collapsed to {s:.2}x");
    }
    // Shape 2: random point reads gain more on SSD than on NVMe.
    let s = |v: &[(Workload, f64)], w: Workload| {
        v.iter().find(|(x, _)| *x == w).expect("workload present").1
    };
    assert!(
        s(&ssd, Workload::ReadRandom) > s(&nvme, Workload::ReadRandom),
        "SSD should gain more than NVMe on readrandom"
    );
    // Shape 3: random workloads gain clearly; sequential stays ~neutral.
    assert!(s(&ssd, Workload::ReadRandom) > 1.1);
    assert!(s(&ssd, Workload::ReadSeq) > 0.9 && s(&ssd, Workload::ReadSeq) < 1.2);
    // Shape 4: the never-seen workloads (updaterandom, mixgraph) also gain
    // on SSD — the generalization claim of the paper.
    assert!(s(&ssd, Workload::UpdateRandom) > 1.05);
    assert!(s(&ssd, Workload::MixGraph) > 1.05);
}

#[test]
fn tuner_decisions_follow_workload_changes() {
    // Run a KML-tuned readrandom and a KML-tuned readseq; the readahead the
    // tuner converges to must differ in the right direction.
    let cfg = LoopConfig::quick();
    let t = trained();
    let (_, random_timeline) =
        closed_loop::run_kml(Workload::ReadRandom, DeviceProfile::sata_ssd(), t, &cfg)
            .expect("run succeeds");
    let (_, seq_timeline) =
        closed_loop::run_kml(Workload::ReadSeq, DeviceProfile::sata_ssd(), t, &cfg)
            .expect("run succeeds");
    let last_ra = |tl: &[closed_loop::TimelinePoint]| tl.last().map(|p| p.ra_kb);
    let (Some(random_ra), Some(seq_ra)) = (last_ra(&random_timeline), last_ra(&seq_timeline))
    else {
        panic!("timelines were empty");
    };
    assert!(
        seq_ra > random_ra,
        "sequential should settle on a larger readahead ({seq_ra} KiB) than random ({random_ra} KiB)"
    );
}

#[test]
fn vanilla_runs_are_reproducible() {
    let cfg = LoopConfig::quick();
    let a = closed_loop::run_vanilla(Workload::MixGraph, DeviceProfile::nvme(), &cfg);
    let b = closed_loop::run_vanilla(Workload::MixGraph, DeviceProfile::nvme(), &cfg);
    assert_eq!(a, b, "simulated runs must be deterministic");
}
