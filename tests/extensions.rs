//! Integration tests for the §6 future-work extensions working together:
//! parallel training threads on live tracepoints, the RL tuner inside the
//! closed loop, sequence models on captured traces, quantized deployment
//! of the trained readahead network, and the HDD device profile.

use kernel_sim::{DeviceProfile, Sim, SimConfig, TraceRecord};
use kml_collect::{ShardedCollector, TrainerPool};
use kml_platform::Persona;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn trainer_pool_consumes_sharded_simulator_tracepoints() {
    // §6: "spawning several parallel training threads" — here three, fed by
    // inode-sharded collection from a live simulator.
    let (collector, consumers) = ShardedCollector::<TraceRecord>::new(3, 1 << 14);
    let totals: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
    let pool = TrainerPool::spawn(Persona::Kernel, consumers, |shard| {
        let totals = totals.clone();
        move |batch: &[TraceRecord]| {
            totals[shard].fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    })
    .expect("pool spawns");

    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::nvme(),
        cache_pages: 1024,
        ..SimConfig::default()
    });
    let (producer, mut drainer) = kml_collect::RingBuffer::with_capacity(1 << 14).split();
    sim.attach_trace(producer);
    let files: Vec<_> = (0..8).map(|_| sim.create_file(1 << 14)).collect();
    let mut x = 11u64;
    for _ in 0..2_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let f = files[(x % 8) as usize];
        sim.read(f, (x >> 16) % ((1 << 14) - 4), 2).unwrap();
        // Re-shard from the sim's single trace stream by inode.
        for record in drainer.drain() {
            collector.push(record.inode, record);
        }
    }
    for record in drainer.drain() {
        collector.push(record.inode, record);
    }
    let expected = collector.pushed();
    while pool.samples_processed() + pool.samples_dropped() < expected {
        std::thread::yield_now();
    }
    pool.stop().expect("pool stops");
    let per_shard: Vec<u64> = totals.iter().map(|t| t.load(Ordering::Relaxed)).collect();
    assert_eq!(per_shard.iter().sum::<u64>(), expected);
    assert!(
        per_shard.iter().filter(|&&c| c > 0).count() >= 2,
        "tracepoints did not spread across training threads: {per_shard:?}"
    );
}

#[test]
fn quantized_deployment_of_the_trained_readahead_network() {
    // Train the quick-scale paper model, then deploy it int8-quantized and
    // verify it makes the same class decisions on the training windows.
    let cfg = readahead::datagen::DatagenConfig::quick();
    let data = readahead::datagen::training_dataset(&cfg).expect("collection succeeds");
    let trained = readahead::model::train_network(&data, 300, 7).expect("training succeeds");
    let bytes = kml_core::modelfile::encode(&trained).expect("encode");
    let mut f32_model = kml_core::modelfile::decode::<f32>(&bytes).expect("decode");
    let qmodel = kml_core::quant::QuantizedModel::from_model(&f32_model).expect("quantizes");

    let mut agree = 0;
    for i in 0..data.len() {
        let (f, _) = data.sample(i);
        if qmodel.predict(f).expect("q predict") == f32_model.predict(f).expect("f predict") {
            agree += 1;
        }
    }
    let ratio = agree as f64 / data.len() as f64;
    assert!(ratio > 0.95, "int8 deployment agreement {ratio:.3}");
    // And it is markedly smaller than the f32 deployment.
    assert!(qmodel.param_bytes() * 2 < f32_model.param_bytes());
}

#[test]
fn hdd_profile_amplifies_the_readahead_effect() {
    // The extension device: on a seek-dominated disk, sequential scans gain
    // far more from large readahead than on either SSD.
    use readahead::study::{measure, StudyConfig};
    let cfg = StudyConfig::quick();
    let gain = |device| {
        let small = measure(device, kvstore::Workload::ReadSeq, 8, &cfg);
        let large = measure(device, kvstore::Workload::ReadSeq, 1024, &cfg);
        large / small
    };
    let hdd_gain = gain(DeviceProfile::hdd());
    let ssd_gain = gain(DeviceProfile::sata_ssd());
    assert!(
        hdd_gain > ssd_gain,
        "hdd seq gain {hdd_gain:.2} should exceed ssd {ssd_gain:.2}"
    );
    assert!(hdd_gain > 3.0, "hdd gain only {hdd_gain:.2}");
}

#[test]
fn bandit_and_supervised_tuners_coexist_in_one_binary() {
    // The RL path shares the closed-loop plumbing with the supervised one;
    // smoke both against the same workload and expect both to finish and
    // stay within sane bounds of vanilla.
    use readahead::closed_loop;
    use readahead::model::LoopConfig;
    let mut cfg = LoopConfig::quick();
    cfg.eval_ops = 6_000;
    let vanilla = closed_loop::run_vanilla(
        kvstore::Workload::ReadRandom,
        DeviceProfile::sata_ssd(),
        &cfg,
    );
    let (bandit, timeline) = closed_loop::run_bandit(
        kvstore::Workload::ReadRandom,
        DeviceProfile::sata_ssd(),
        &cfg,
    );
    assert!(bandit.ops_per_sec > vanilla.ops_per_sec * 0.8);
    assert!(!timeline.is_empty());
}
