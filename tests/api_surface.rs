//! E8 — Table 1 API parity: the paper's Table 1 lists "KML API examples",
//! the interface between KML models and the kernel. This test exercises the
//! equivalent Rust surface end to end, one paper-flow step at a time, and
//! doubles as living documentation of the public API.

use kernel_sim::{DeviceProfile, Sim, SimConfig};
use kml_collect::RingBuffer;
use kml_core::dataset::{Dataset, Normalizer};
use kml_core::loss::CrossEntropyLoss;
use kml_core::model::ModelBuilder;
use kml_core::optimizer::Sgd;
use kml_core::KmlRng;
use kml_platform::alloc::KmlAllocator;
use kml_platform::{fpu, Persona};
use rand::SeedableRng;

#[test]
fn paper_flow_steps_one_through_five() {
    // §3.3: "(1) KML starts collecting data from the memory management
    // component" — attach the lock-free buffer to the substrate.
    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::nvme(),
        cache_pages: 1024,
        ..SimConfig::default()
    });
    let (producer, mut consumer) = RingBuffer::with_capacity(1 << 14).split();
    sim.attach_trace(producer);
    let file = sim.create_file(1 << 16);
    for p in 0..512u64 {
        sim.read(file, p * 8, 4).unwrap();
    }

    // "(2) the collected data is processed and normalized" — features.
    let mut fx = readahead::FeatureExtractor::new();
    while let Some(record) = consumer.pop() {
        fx.push(&record);
    }
    assert!(fx.total() > 0, "tracepoints reached the collector");
    let features = fx.roll_window(128.0);

    // "(3) features are passed to the KML engine for inference" and
    // "(4) KML's engine inferences and generates predictions".
    let mut model = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f32>()
        .expect("topology builds");
    let training = Dataset::from_rows(
        &[features.to_vec(), features.map(|v| v * 0.5).to_vec()],
        &[0, 1],
    )
    .expect("dataset builds");
    model.set_normalizer(Normalizer::fit(training.features()).expect("normalizer fits"));
    let class = model.predict(&features).expect("inference succeeds");
    assert!(class < 4);

    // "(5) the KML application takes actions based on the predictions ...
    // changes readahead sizes using block device layer ioctls and updates
    // the readahead values in struct files."
    sim.set_ra_kb(1024); // the "ioctl"
    sim.set_file_ra_kb(file, 8); // the per-file struct update
    assert_eq!(sim.file_ra_kb(file), 8);
}

#[test]
fn dev_api_memory_threading_logging_atomics_files() {
    // §3.3: "The KML development API has five parts: (i) system memory
    // allocation, (ii) threading, (iii) logging, (iv) atomic operations,
    // and (v) file operations."

    // (i) memory — kml_malloc analogue with reservation.
    let alloc = KmlAllocator::new(Persona::Kernel);
    alloc.reserve(1 << 16).expect("reservation succeeds");
    let buf = alloc.alloc_slice::<f32>(256).expect("allocation succeeds");
    assert_eq!(buf.len(), 256);

    // (ii) threading — the kthread wrapper.
    let t = kml_platform::threading::KmlThread::spawn(Persona::Kernel, "api-demo", |ctl| {
        while !ctl.should_stop() {
            kml_platform::threading::kml_yield();
        }
    })
    .expect("thread spawns");
    assert_eq!(t.name(), "kthread/api-demo");
    t.stop().expect("thread stops cleanly");

    // (iii) logging — printk/printf router.
    let log = kml_platform::logging::Logger::memory();
    log.log(kml_platform::logging::Level::Info, "model deployed");
    assert_eq!(log.records().len(), 1);

    // (iv) atomics.
    let counter = kml_platform::atomics::KmlCounter::new(0);
    counter.inc();
    assert_eq!(counter.get(), 1);

    // (v) file operations — the model save/load path.
    let path = std::env::temp_dir().join(format!("kml-api-{}.kml", std::process::id()));
    let model = ModelBuilder::new(3)
        .linear(2)
        .build::<f64>()
        .expect("builds");
    kml_core::modelfile::save(&model, &path).expect("save succeeds");
    let loaded = kml_core::modelfile::load::<f64>(&path).expect("load succeeds");
    assert_eq!(loaded.input_dim(), 3);
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn training_and_inference_run_in_both_personas() {
    // §3.3: "KML can do either training or inference in user or kernel
    // spaces." The persona difference in this reproduction is the FPU
    // discipline: kernel-side FP math must happen inside guard sections.
    let mut rng = KmlRng::seed_from_u64(3);
    let data = Dataset::from_rows(
        &[
            vec![0.0, 0.0],
            vec![0.1, 0.2],
            vec![5.0, 5.0],
            vec![5.2, 4.9],
        ],
        &[0, 0, 1, 1],
    )
    .expect("dataset builds");

    // "User space" training (f64) ...
    let mut user_model = ModelBuilder::new(2)
        .linear(4)
        .sigmoid()
        .linear(2)
        .build::<f64>()
        .expect("builds");
    let mut sgd = Sgd::new(0.3, 0.5);
    for _ in 0..100 {
        user_model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .expect("training epoch runs");
    }
    assert!(user_model.accuracy(&data).expect("accuracy computes") > 0.9);

    // ... deployed "in kernel" (f32), inference bracketed by FPU guards.
    let bytes = kml_core::modelfile::encode(&user_model).expect("encode");
    let mut kernel_model = kml_core::modelfile::decode::<f32>(&bytes).expect("decode");
    let before = fpu::sections_entered();
    let p = kernel_model.predict(&[5.1, 5.0]).expect("inference");
    assert_eq!(p, 1);
    assert!(
        fpu::sections_entered() > before,
        "kernel-persona float inference must enter an FPU section"
    );
}
