//! Rust API Guidelines conformance spot-checks across the workspace:
//! common traits on public types (C-COMMON-TRAITS), non-empty Debug
//! representations (C-DEBUG-NONEMPTY), Send/Sync where promised
//! (C-SEND-SYNC), and well-behaved error types (C-GOOD-ERR).

use std::error::Error;
use std::fmt::Debug;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_debug_nonempty<T: Debug>(v: &T) {
    assert!(!format!("{v:?}").is_empty());
}

#[test]
fn core_types_are_send_sync() {
    assert_send_sync::<kml_core::matrix::Matrix<f32>>();
    assert_send_sync::<kml_core::matrix::Matrix<f64>>();
    assert_send_sync::<kml_core::matrix::Matrix<kml_core::fixed::Fix32>>();
    assert_send_sync::<kml_core::model::Model<f32>>();
    assert_send_sync::<kml_core::dtree::DecisionTree>();
    assert_send_sync::<kml_core::dataset::Dataset>();
    assert_send_sync::<kml_core::recurrent::Rnn<f64>>();
    assert_send_sync::<kml_core::recurrent::Lstm<f64>>();
    assert_send_sync::<kml_core::quant::QuantizedModel>();
    assert_send_sync::<kernel_sim::Sim>();
    assert_send_sync::<kvstore::Db>();
    assert_send_sync::<iosched::IoScheduler>();
    assert_send_sync::<kml_platform::alloc::KmlAllocator>();
}

#[test]
fn error_types_implement_error_display_send_sync() {
    fn assert_error<E: Error + Send + Sync + 'static>() {}
    assert_error::<kml_core::KmlError>();
    assert_error::<kml_platform::PlatformError>();
    assert_error::<kernel_sim::tracefile::TraceFileError>();

    // Display messages: lowercase start, no trailing punctuation (C-GOOD-ERR).
    let samples: Vec<Box<dyn Error>> = vec![
        Box::new(kml_core::KmlError::InvalidConfig("x".into())),
        Box::new(kml_core::KmlError::BadModelFile("y".into())),
        Box::new(kml_platform::PlatformError::ReservationActive),
        Box::new(kernel_sim::tracefile::TraceFileError::Malformed("z".into())),
    ];
    for e in samples {
        let msg = e.to_string();
        let first = msg.chars().next().expect("non-empty message");
        assert!(
            first.is_lowercase(),
            "error message should start lowercase: {msg:?}"
        );
        assert!(
            !msg.ends_with('.'),
            "error message should not end with a period: {msg:?}"
        );
    }
}

#[test]
fn debug_representations_are_never_empty() {
    use kml_core::prelude::*;
    let m = Matrix::<f64>::zeros(2, 2);
    assert_debug_nonempty(&m);
    assert_debug_nonempty(&kml_core::fixed::Fix32::ZERO);
    assert_debug_nonempty(&Sgd::paper_defaults());
    assert_debug_nonempty(&kvstore::Workload::MixGraph);
    assert_debug_nonempty(&kernel_sim::DeviceProfile::nvme());
    assert_debug_nonempty(&iosched::SchedulerConfig::default());
    assert_debug_nonempty(&kml_platform::Persona::Kernel);
    assert_debug_nonempty(&readahead::FeatureExtractor::new());
}

#[test]
fn display_implementations_are_informative() {
    assert_eq!(kvstore::Workload::ReadSeq.to_string(), "readseq");
    assert_eq!(kml_platform::Persona::Kernel.to_string(), "kernel");
    assert_eq!(kml_core::fixed::Fix32::from_f64(1.5).to_string(), "1.5");
    let m = kml_core::matrix::Matrix::<f64>::identity(2);
    let shown = m.to_string();
    assert!(shown.contains("2x2"));
}

#[test]
fn default_constructors_match_new() {
    // C-COMMON-TRAITS: Default and new() agree where both exist.
    use kml_collect::stats::{AbsDiffMean, CumulativeStats, ZScore};
    assert_eq!(CumulativeStats::new(), CumulativeStats::default());
    assert_eq!(ZScore::new(), ZScore::default());
    assert_eq!(AbsDiffMean::new(), AbsDiffMean::default());
}

#[test]
fn dataset_types_implement_clone_and_partial_eq() {
    use kml_core::dataset::Dataset;
    let d = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0, 1]).expect("builds");
    let clone = d.clone();
    assert_eq!(d, clone);
    let w = kvstore::WorkloadConfig::new(kvstore::Workload::ReadSeq);
    let _copy = w; // Copy
}
