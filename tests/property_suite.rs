//! Cross-crate property tests: model-based checking of the LSM store
//! against a reference implementation, fuzz-decoding of the binary
//! formats, and invariants of the readahead state machine under arbitrary
//! access patterns.

use kernel_sim::readahead::{RaAction, RaState};
use kernel_sim::{DeviceProfile, FaultConfig, FaultPlan, Sim, SimConfig};
use kvstore::{Db, DbConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LSM store agrees with a BTreeSet reference under arbitrary
    /// interleavings of puts, gets, flushes, and compactions.
    #[test]
    fn lsm_store_matches_reference_model(
        ops in proptest::collection::vec((0u8..5, 0u64..500), 1..200)
    ) {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 512,
            ..SimConfig::default()
        });
        let mut db = Db::create(&mut sim, DbConfig {
            memtable_keys: 32,
            l0_compaction_trigger: 3,
            ..DbConfig::default()
        });
        let mut reference = BTreeSet::new();
        for (op, key) in ops {
            match op {
                0 | 1 => {
                    db.put(&mut sim, key).unwrap();
                    reference.insert(key);
                }
                2 => {
                    prop_assert_eq!(db.get(&mut sim, key).unwrap(), reference.contains(&key));
                }
                3 => db.flush(&mut sim).unwrap(),
                _ => db.compact(&mut sim).unwrap(),
            }
        }
        // Full sweep at the end.
        db.flush(&mut sim).unwrap();
        db.compact(&mut sim).unwrap();
        for key in (0..500).step_by(7) {
            prop_assert_eq!(db.get(&mut sim, key).unwrap(), reference.contains(&key));
        }
    }

    /// Under an *arbitrary* fault plan — device errors, torn writes,
    /// latency spikes, stalls, cache squeezes at any rate — the LSM store
    /// never panics and never silently diverges from the reference model:
    /// a rejected put leaves the key absent, an accepted put keeps it
    /// durable across failed flushes/compactions, and once the faults are
    /// lifted every surviving key is readable.
    #[test]
    fn lsm_store_survives_arbitrary_fault_plans(
        seed in any::<u64>(),
        read_error in 0.0f64..0.3,
        write_error in 0.0f64..0.3,
        torn_write in 0.0f64..0.3,
        latency_spike in 0.0f64..0.2,
        stall in 0.0f64..0.1,
        cache_squeeze in 0.0f64..0.05,
        ops in proptest::collection::vec((0u8..5, 0u64..500), 1..150)
    ) {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 512,
            ..SimConfig::default()
        });
        let mut db = Db::create(&mut sim, DbConfig {
            memtable_keys: 32,
            l0_compaction_trigger: 3,
            ..DbConfig::default()
        });
        sim.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed,
            read_error,
            write_error,
            torn_write,
            latency_spike,
            stall,
            cache_squeeze,
            squeeze_frac: 0.25,
            squeeze_ops: 32,
            ..FaultConfig::off()
        })));
        let mut reference = BTreeSet::new();
        for (op, key) in ops {
            match op {
                0 | 1 => {
                    // A rejected put must leave the store as if it never
                    // happened; an accepted one must stick.
                    if db.put(&mut sim, key).is_ok() {
                        reference.insert(key);
                    }
                }
                2 => {
                    if let Ok(found) = db.get(&mut sim, key) {
                        prop_assert_eq!(found, reference.contains(&key));
                    }
                }
                3 => { let _ = db.flush(&mut sim); }
                _ => { let _ = db.compact(&mut sim); }
            }
        }
        // Lift the faults: every accepted key must still be there, every
        // rejected one still absent.
        sim.set_fault_plan(None);
        db.flush(&mut sim).unwrap();
        db.compact(&mut sim).unwrap();
        for key in 0..500 {
            prop_assert_eq!(db.get(&mut sim, key).unwrap(), reference.contains(&key));
        }
    }

    /// Scans return exactly the reference's range contents, in order.
    #[test]
    fn lsm_scan_matches_reference_counts(
        keys in proptest::collection::btree_set(0u64..1000, 1..200),
        from in 0u64..1000,
        limit in 1usize..100
    ) {
        let mut sim = Sim::new(SimConfig::default());
        let mut db = Db::create(&mut sim, DbConfig::default());
        db.bulk_load(&mut sim, keys.iter().copied().collect()).unwrap();
        let expected = keys.range(from..).take(limit).count();
        prop_assert_eq!(db.scan(&mut sim, from, limit).unwrap(), expected);
        let expected_rev = keys.range(..=from).rev().take(limit).count();
        prop_assert_eq!(db.scan_reverse(&mut sim, from, limit).unwrap(), expected_rev);
    }

    /// Model files: arbitrary byte soup never panics the decoder and a
    /// valid prefix with appended garbage never decodes.
    #[test]
    fn modelfile_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = kml_core::modelfile::decode::<f32>(&bytes); // must not panic
    }

    /// Trace files: arbitrary byte soup never panics the decoder.
    #[test]
    fn tracefile_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = kernel_sim::tracefile::decode(&bytes); // must not panic
    }

    /// Tree files: arbitrary byte soup never panics the decoder.
    #[test]
    fn dtreefile_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = kml_core::dtree::DecisionTree::decode(&bytes); // must not panic
    }

    /// Readahead state machine invariants under arbitrary access patterns:
    /// speculative extent never exceeds the configured window (a sync fetch
    /// may exceed it only to cover the demanded request itself), fetches
    /// start at the accessed page (sync) or beyond it (async), and never
    /// cross EOF.
    #[test]
    fn readahead_state_machine_invariants(
        ra_pages in 1u64..512,
        file_pages in 1u64..100_000,
        accesses in proptest::collection::vec((0u64..100_000, 1u64..8, any::<bool>()), 1..200)
    ) {
        let mut ra = RaState::new(ra_pages);
        for (page, req, cached) in accesses {
            match ra.on_access(page, req, cached, file_pages) {
                RaAction::None => {}
                RaAction::Sync { start, len } => {
                    prop_assert_eq!(start, page);
                    // The demanded range always fetches whole; only the
                    // speculative surplus is bounded by ra_pages.
                    prop_assert!(len <= ra_pages.max(req));
                    prop_assert!(start + len <= file_pages);
                    prop_assert!(len > 0);
                }
                RaAction::Async { start, len } => {
                    prop_assert!(start > page);
                    prop_assert!(len <= ra_pages.max(1));
                    prop_assert!(start + len <= file_pages);
                    prop_assert!(len > 0);
                }
            }
        }
    }

    /// Simulator conservation: pages the device reads equal pages inserted
    /// into the cache by fetches, and every logical read advances the clock.
    #[test]
    fn sim_read_accounting_is_conserved(
        reads in proptest::collection::vec((0u64..4_000, 1u64..8), 1..100)
    ) {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 256,
            ..SimConfig::default()
        });
        let f = sim.create_file(4_096);
        let mut last_clock = sim.now_ns();
        for (page, n) in reads {
            sim.read(f, page, n).unwrap();
            let now = sim.now_ns();
            prop_assert!(now > last_clock, "read did not advance the clock");
            last_clock = now;
        }
        let stats = sim.stats();
        prop_assert_eq!(stats.device.pages_read, stats.cache.insertions);
        prop_assert!(stats.cache.hits + stats.cache.misses > 0);
    }
}
