//! Umbrella crate for the KML reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//!
//! - [`kml_core`] — the machine-learning library (matrices, layers, losses,
//!   autodiff, SGD, decision trees, model serialization).
//! - [`kml_platform`] — the portability/dev API layer (paper §3.3).
//! - [`kml_collect`] — lock-free data collection and async training (§3.1–3.2).
//! - [`kernel_sim`] — simulated OS substrate: page cache, readahead, block
//!   devices, tracepoints.
//! - [`kvstore`] — LSM key-value store + db_bench-style workload driver.
//! - [`readahead`] — the paper's §4 use case: the readahead tuning models and
//!   the closed-loop KML application.
//! - [`iosched`] — the §6 future-work second use case: KML tuning the block
//!   layer's request-batching window.
//! - [`netfs`] — the network-storage use case: a simulated NFS-like mount
//!   (RPC transport, retransmission, duplicate-request cache) with a KML
//!   loop tuning the `rsize` transfer size per link condition.
//! - [`kml_lifecycle`] — model lifecycle: versioned `.kmlm` deployment
//!   artifacts, generation-tagged hot-swap, shadow evaluation, and
//!   deterministic watchdog promote/rollback.

pub use iosched;
pub use kernel_sim;
pub use kml_collect;
pub use kml_core;
pub use kml_lifecycle;
pub use kml_platform;
pub use kvstore;
pub use netfs;
pub use readahead;
