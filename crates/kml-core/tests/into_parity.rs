//! Property tests: every `*_into` kernel is indistinguishable from its
//! allocating counterpart — same values, same shapes, same errors — across
//! random shapes and all three scalar types (f32, f64, Q16.16 fixed point).
//!
//! The allocating kernels delegate to the `_into` forms, so today parity is
//! bit-exact by construction; these properties pin that contract down so a
//! future hand-optimized divergence (blocking, SIMD, a separate fast path)
//! cannot silently change numerics or error behavior.

use kml_core::fixed::Fix32;
use kml_core::matrix::Matrix;
use kml_core::scalar::Scalar;
use proptest::prelude::*;

/// Fresh out-buffer pre-dirtied with a wrong shape and garbage values, so
/// every property also exercises `ensure_shape` reuse rather than a
/// conveniently-zeroed destination.
fn dirty_out<S: Scalar>() -> Matrix<S> {
    let mut m = Matrix::zeros(2, 3);
    m.fill(S::from_f64(-77.25));
    m
}

fn to_matrix<S: Scalar>(rows: usize, cols: usize, data: &[f64]) -> Matrix<S> {
    Matrix::from_f64_vec(rows, cols, &data[..rows * cols]).unwrap()
}

fn assert_same<S: Scalar>(op: &str, alloc: &Matrix<S>, into: &Matrix<S>) {
    assert_eq!(alloc.shape(), into.shape(), "{op}: shape diverged");
    assert_eq!(
        alloc.as_slice(),
        into.as_slice(),
        "{op}: values diverged from allocating kernel"
    );
}

/// Runs every kernel pair on `a (m×k)`, `b (k×n)`, `c (m×k)`, `bias (1×k)`.
fn check_parity<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let b: Matrix<S> = to_matrix(k, n, &data[25..]);
    let c: Matrix<S> = to_matrix(m, k, &data[50..]);
    let bias: Matrix<S> = to_matrix(1, k, &data[50..]);

    let mut out = dirty_out();
    a.matmul_into(&b, &mut out).unwrap();
    assert_same("matmul", &a.matmul(&b).unwrap(), &out);

    // matmul_transpose computes self · rhsᵀ, so rhs must be (n × k).
    let bt = b.transpose();
    a.matmul_transpose_into(&bt, &mut out).unwrap();
    assert_same("matmul_transpose", &a.matmul_transpose(&bt).unwrap(), &out);

    // transpose_matmul computes selfᵀ · rhs, so rhs shares self's row count.
    a.transpose_matmul_into(&c, &mut out).unwrap();
    assert_same("transpose_matmul", &a.transpose_matmul(&c).unwrap(), &out);

    a.add_into(&c, &mut out).unwrap();
    assert_same("add", &a.add(&c).unwrap(), &out);

    a.sub_into(&c, &mut out).unwrap();
    assert_same("sub", &a.sub(&c).unwrap(), &out);

    a.hadamard_into(&c, &mut out).unwrap();
    assert_same("hadamard", &a.hadamard(&c).unwrap(), &out);

    a.add_row_broadcast_into(&bias, &mut out).unwrap();
    assert_same(
        "add_row_broadcast",
        &a.add_row_broadcast(&bias).unwrap(),
        &out,
    );

    a.sum_rows_into(&mut out);
    assert_same("sum_rows", &a.sum_rows(), &out);

    a.map_into(&mut out, |v| v.mul(S::from_f64(0.5)));
    assert_same("map", &a.map(|v| v.mul(S::from_f64(0.5))), &out);
}

type ErrorPair<'a, S> = (&'a str, kml_core::Result<Matrix<S>>, kml_core::Result<()>);

/// Every kernel pair must reject the same mismatched shapes with the same
/// error value (op name + reported shapes included).
fn check_error_parity<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    // Each bad shape is off-by-one in the dimension its kernel checks, so a
    // mismatch is guaranteed for every (m, k, n).
    let bad_inner: Matrix<S> = to_matrix(k + 1, n, &data[25..]); // matmul: rows ≠ k
    let bad_mt: Matrix<S> = to_matrix(n, k + 1, &data[25..]); // matmul_transpose: cols ≠ k
    let bad_tm: Matrix<S> = to_matrix(m + 1, k, &data[25..]); // transpose_matmul: rows ≠ m
    let bad_ew: Matrix<S> = to_matrix(m, k + 1, &data[25..]); // element-wise: shape ≠ (m, k)
    let bad_bias: Matrix<S> = to_matrix(1, k + 1, &data[25..]); // broadcast: cols ≠ k
    let mut out = dirty_out();

    let pairs: [ErrorPair<S>; 7] = [
        (
            "matmul",
            a.matmul(&bad_inner),
            a.matmul_into(&bad_inner, &mut out),
        ),
        (
            "matmul_transpose",
            a.matmul_transpose(&bad_mt),
            a.matmul_transpose_into(&bad_mt, &mut out),
        ),
        (
            "transpose_matmul",
            a.transpose_matmul(&bad_tm),
            a.transpose_matmul_into(&bad_tm, &mut out),
        ),
        ("add", a.add(&bad_ew), a.add_into(&bad_ew, &mut out)),
        ("sub", a.sub(&bad_ew), a.sub_into(&bad_ew, &mut out)),
        (
            "hadamard",
            a.hadamard(&bad_ew),
            a.hadamard_into(&bad_ew, &mut out),
        ),
        (
            "add_row_broadcast",
            a.add_row_broadcast(&bad_bias),
            a.add_row_broadcast_into(&bad_bias, &mut out),
        ),
    ];
    for (op, alloc, into) in pairs {
        let alloc_err = alloc.expect_err(op);
        let into_err = into.expect_err(op);
        assert_eq!(alloc_err, into_err, "{op}: error values diverged");
    }
}

// Dims stay in 1..6 and values in ±8 so Q16.16 products (≤ 5·8·8 = 320) are
// exactly representable without saturation, keeping Fix32 parity meaningful.
// Slices used: a at 0, b at 25, c/bias at 50 — 75 values cover every view.
const DIMS: (
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<usize>,
) = (1..6, 1..6, 1..6);

fn values() -> proptest::collection::VecStrategy<std::ops::Range<f64>> {
    proptest::collection::vec(-8.0f64..8.0, 75..76)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn into_kernels_match_allocating_kernels_f32((m, k, n) in DIMS, data in values()) {
        check_parity::<f32>(m, k, n, &data);
    }

    #[test]
    fn into_kernels_match_allocating_kernels_f64((m, k, n) in DIMS, data in values()) {
        check_parity::<f64>(m, k, n, &data);
    }

    #[test]
    fn into_kernels_match_allocating_kernels_fix32((m, k, n) in DIMS, data in values()) {
        check_parity::<Fix32>(m, k, n, &data);
    }

    #[test]
    fn into_kernels_match_allocating_errors_f32((m, k, n) in DIMS, data in values()) {
        check_error_parity::<f32>(m, k, n, &data);
    }

    #[test]
    fn into_kernels_match_allocating_errors_f64((m, k, n) in DIMS, data in values()) {
        check_error_parity::<f64>(m, k, n, &data);
    }

    #[test]
    fn into_kernels_match_allocating_errors_fix32((m, k, n) in DIMS, data in values()) {
        check_error_parity::<Fix32>(m, k, n, &data);
    }
}
