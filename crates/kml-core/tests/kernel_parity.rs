//! Property tests: the blocked/register-tiled GEMM kernels are bit-for-bit
//! indistinguishable from the retained naive triple-loop references in
//! [`kml_core::matrix::naive`] — same values, same shapes, same errors —
//! across random shapes (including non-multiple-of-tile edges) and all three
//! scalar types (f32, f64, Q16.16 fixed point).
//!
//! Bit-exactness is the contract the deterministic simulation tests and the
//! data-parallel trainer stand on: every output element must be one
//! multiply-accumulate chain walking the shared dimension in ascending
//! order, no matter how the loops are tiled.

use kml_core::fixed::Fix32;
use kml_core::matrix::{naive, Matrix};
use kml_core::scalar::Scalar;
use kml_core::scratch::ScratchArena;
use proptest::prelude::*;

/// Out-buffer pre-dirtied with a wrong shape and garbage values so every
/// property also exercises `ensure_shape` reuse.
fn dirty_out<S: Scalar>() -> Matrix<S> {
    let mut m = Matrix::zeros(2, 3);
    m.fill(S::from_f64(-77.25));
    m
}

fn to_matrix<S: Scalar>(rows: usize, cols: usize, data: &[f64]) -> Matrix<S> {
    let need = rows * cols;
    let vals: Vec<f64> = data.iter().copied().cycle().take(need).collect();
    Matrix::from_f64_vec(rows, cols, &vals).unwrap()
}

fn assert_bits_equal<S: Scalar>(op: &str, reference: &Matrix<S>, blocked: &Matrix<S>) {
    assert_eq!(reference.shape(), blocked.shape(), "{op}: shape diverged");
    assert_eq!(
        reference.as_slice(),
        blocked.as_slice(),
        "{op}: blocked kernel diverged from naive reference"
    );
}

/// Blocked vs naive on `a (m×k) · b (k×n)`, plus the transpose forms and the
/// packed large-product path, all on the same operands.
fn check_kernels<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let b: Matrix<S> = to_matrix(k, n, &data[7..]);

    let mut want = dirty_out();
    let mut got = dirty_out();

    naive::matmul_into(&a, &b, &mut want).unwrap();
    a.matmul_into(&b, &mut got).unwrap();
    assert_bits_equal("matmul", &want, &got);

    let mut pack = ScratchArena::new();
    a.matmul_into_packed(&b, &mut got, &mut pack).unwrap();
    assert_bits_equal("matmul_packed", &want, &got);

    // matmul_transpose computes self · rhsᵀ, so rhs is (n × k).
    let bt: Matrix<S> = to_matrix(n, k, &data[13..]);
    naive::matmul_transpose_into(&a, &bt, &mut want).unwrap();
    a.matmul_transpose_into(&bt, &mut got).unwrap();
    assert_bits_equal("matmul_transpose", &want, &got);

    // transpose_matmul computes selfᵀ · rhs, so rhs shares self's row count.
    let c: Matrix<S> = to_matrix(m, n, &data[19..]);
    naive::transpose_matmul_into(&a, &c, &mut want).unwrap();
    a.transpose_matmul_into(&c, &mut got).unwrap();
    assert_bits_equal("transpose_matmul", &want, &got);
}

/// The accumulating kernels used by the sharded-gradient reduction: feeding
/// row blocks in ascending order must continue the full-batch chains exactly.
fn check_acc_kernels<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let c: Matrix<S> = to_matrix(m, n, &data[19..]);

    let mut want = dirty_out();
    a.transpose_matmul_into(&c, &mut want).unwrap();

    // Split the shared (row) dimension at every possible point.
    for split in 0..=m {
        let top_a: Matrix<S> = to_matrix(split, k, data);
        let bot_a = {
            let vals: Vec<f64> = a.as_slice()[split * k..]
                .iter()
                .map(|v| v.to_f64())
                .collect();
            Matrix::<S>::from_f64_vec(m - split, k, &vals).unwrap()
        };
        let top_c = {
            let vals: Vec<f64> = c.as_slice()[..split * n]
                .iter()
                .map(|v| v.to_f64())
                .collect();
            Matrix::<S>::from_f64_vec(split, n, &vals).unwrap()
        };
        let bot_c = {
            let vals: Vec<f64> = c.as_slice()[split * n..]
                .iter()
                .map(|v| v.to_f64())
                .collect();
            Matrix::<S>::from_f64_vec(m - split, n, &vals).unwrap()
        };

        let mut got = dirty_out();
        got.ensure_shape(k, n);
        got.fill(S::ZERO);
        top_a.transpose_matmul_acc_into(&top_c, &mut got).unwrap();
        bot_a.transpose_matmul_acc_into(&bot_c, &mut got).unwrap();
        assert_bits_equal("transpose_matmul_acc split", &want, &got);

        // sum_rows over ascending row blocks == one-shot sum_rows.
        let mut rows_want = dirty_out();
        c.sum_rows_into(&mut rows_want);
        let mut rows_got = Matrix::zeros(1, n);
        top_c.sum_rows_acc_into(&mut rows_got).unwrap();
        bot_c.sum_rows_acc_into(&mut rows_got).unwrap();
        assert_bits_equal("sum_rows_acc split", &rows_want, &rows_got);
    }
}

/// Blocked and naive kernels must reject the same mismatched shapes with the
/// same error value.
fn check_error_parity<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let bad_inner: Matrix<S> = to_matrix(k + 1, n, &data[7..]); // matmul: rows ≠ k
    let bad_mt: Matrix<S> = to_matrix(n, k + 1, &data[7..]); // matmul_transpose: cols ≠ k
    let bad_tm: Matrix<S> = to_matrix(m + 1, n, &data[7..]); // transpose_matmul: rows ≠ m
    let mut out = dirty_out();
    let mut pack = ScratchArena::new();

    let e_naive = naive::matmul_into(&a, &bad_inner, &mut out).expect_err("matmul");
    let e_blocked = a.matmul_into(&bad_inner, &mut out).expect_err("matmul");
    let e_packed = a
        .matmul_into_packed(&bad_inner, &mut out, &mut pack)
        .expect_err("matmul_packed");
    assert_eq!(e_naive, e_blocked, "matmul error diverged");
    assert_eq!(e_naive, e_packed, "packed matmul error diverged");

    let e_naive = naive::matmul_transpose_into(&a, &bad_mt, &mut out).expect_err("mt");
    let e_blocked = a.matmul_transpose_into(&bad_mt, &mut out).expect_err("mt");
    assert_eq!(e_naive, e_blocked, "matmul_transpose error diverged");

    let e_naive = naive::transpose_matmul_into(&a, &bad_tm, &mut out).expect_err("tm");
    let e_blocked = a.transpose_matmul_into(&bad_tm, &mut out).expect_err("tm");
    assert_eq!(e_naive, e_blocked, "transpose_matmul error diverged");
}

// Dims span 1..13 so every property crosses the MR=4/NR=4 register-tile
// boundary both ways (full tiles plus 1–3-wide edges); values stay in ±8 so
// Q16.16 products are exactly representable without saturation.
const DIMS: (
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<usize>,
) = (1..13, 1..13, 1..13);

fn values() -> proptest::collection::VecStrategy<std::ops::Range<f64>> {
    proptest::collection::vec(-8.0f64..8.0, 64..65)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_kernels_match_naive_f32((m, k, n) in DIMS, data in values()) {
        check_kernels::<f32>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_f64((m, k, n) in DIMS, data in values()) {
        check_kernels::<f64>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_fix32((m, k, n) in DIMS, data in values()) {
        check_kernels::<Fix32>(m, k, n, &data);
    }

    #[test]
    fn acc_kernels_continue_chains_f32((m, k, n) in DIMS, data in values()) {
        check_acc_kernels::<f32>(m, k, n, &data);
    }

    #[test]
    fn acc_kernels_continue_chains_f64((m, k, n) in DIMS, data in values()) {
        check_acc_kernels::<f64>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_errors_f32((m, k, n) in DIMS, data in values()) {
        check_error_parity::<f32>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_errors_f64((m, k, n) in DIMS, data in values()) {
        check_error_parity::<f64>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_errors_fix32((m, k, n) in DIMS, data in values()) {
        check_error_parity::<Fix32>(m, k, n, &data);
    }
}

/// One deterministic large case whose shared dimension crosses the KC=256
/// cache-block boundary, so the packed path's store/reload of partial sums
/// is exercised (proptest dims stay small for speed).
#[test]
fn packed_matmul_crosses_kc_boundary_bit_exact() {
    let k = 300; // > KC = 256
    let (m, n) = (9, 11); // non-multiples of the 4×4 tile
    let a_vals: Vec<f64> = (0..m * k)
        .map(|i| ((i * 37) % 64) as f64 * 0.11 - 3.3)
        .collect();
    let b_vals: Vec<f64> = (0..k * n)
        .map(|i| ((i * 53) % 64) as f64 * 0.13 - 4.1)
        .collect();
    let a = Matrix::<f64>::from_f64_vec(m, k, &a_vals).unwrap();
    let b = Matrix::<f64>::from_f64_vec(k, n, &b_vals).unwrap();

    let mut want = Matrix::zeros(0, 0);
    naive::matmul_into(&a, &b, &mut want).unwrap();

    let mut got = Matrix::zeros(0, 0);
    a.matmul_into(&b, &mut got).unwrap();
    assert_eq!(want.as_slice(), got.as_slice(), "blocked kernel diverged");

    let mut pack = ScratchArena::new();
    let mut packed = Matrix::zeros(0, 0);
    a.matmul_into_packed(&b, &mut packed, &mut pack).unwrap();
    assert_eq!(want.as_slice(), packed.as_slice(), "packed kernel diverged");
}
