//! Property tests: the blocked/register-tiled GEMM kernels are bit-for-bit
//! indistinguishable from the retained naive triple-loop references in
//! [`kml_core::matrix::naive`] — same values, same shapes, same errors —
//! across random shapes (including non-multiple-of-tile edges) and all three
//! scalar types (f32, f64, Q16.16 fixed point).
//!
//! Bit-exactness is the contract the deterministic simulation tests and the
//! data-parallel trainer stand on: every output element must be one
//! multiply-accumulate chain walking the shared dimension in ascending
//! order, no matter how the loops are tiled.

use kml_core::fixed::Fix32;
use kml_core::matrix::{naive, Matrix};
use kml_core::scalar::Scalar;
use kml_core::scratch::ScratchArena;
use proptest::prelude::*;

/// Out-buffer pre-dirtied with a wrong shape and garbage values so every
/// property also exercises `ensure_shape` reuse.
fn dirty_out<S: Scalar>() -> Matrix<S> {
    let mut m = Matrix::zeros(2, 3);
    m.fill(S::from_f64(-77.25));
    m
}

fn to_matrix<S: Scalar>(rows: usize, cols: usize, data: &[f64]) -> Matrix<S> {
    let need = rows * cols;
    let vals: Vec<f64> = data.iter().copied().cycle().take(need).collect();
    Matrix::from_f64_vec(rows, cols, &vals).unwrap()
}

fn assert_bits_equal<S: Scalar>(op: &str, reference: &Matrix<S>, blocked: &Matrix<S>) {
    assert_eq!(reference.shape(), blocked.shape(), "{op}: shape diverged");
    assert_eq!(
        reference.as_slice(),
        blocked.as_slice(),
        "{op}: blocked kernel diverged from naive reference"
    );
}

/// Blocked vs naive on `a (m×k) · b (k×n)`, plus the transpose forms and the
/// packed large-product path, all on the same operands.
fn check_kernels<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let b: Matrix<S> = to_matrix(k, n, &data[7..]);

    let mut want = dirty_out();
    let mut got = dirty_out();

    naive::matmul_into(&a, &b, &mut want).unwrap();
    a.matmul_into(&b, &mut got).unwrap();
    assert_bits_equal("matmul", &want, &got);

    let mut pack = ScratchArena::new();
    a.matmul_into_packed(&b, &mut got, &mut pack).unwrap();
    assert_bits_equal("matmul_packed", &want, &got);

    // matmul_transpose computes self · rhsᵀ, so rhs is (n × k).
    let bt: Matrix<S> = to_matrix(n, k, &data[13..]);
    naive::matmul_transpose_into(&a, &bt, &mut want).unwrap();
    a.matmul_transpose_into(&bt, &mut got).unwrap();
    assert_bits_equal("matmul_transpose", &want, &got);

    // transpose_matmul computes selfᵀ · rhs, so rhs shares self's row count.
    let c: Matrix<S> = to_matrix(m, n, &data[19..]);
    naive::transpose_matmul_into(&a, &c, &mut want).unwrap();
    a.transpose_matmul_into(&c, &mut got).unwrap();
    assert_bits_equal("transpose_matmul", &want, &got);
}

/// The accumulating kernels used by the sharded-gradient reduction: feeding
/// row blocks in ascending order must continue the full-batch chains exactly.
fn check_acc_kernels<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let c: Matrix<S> = to_matrix(m, n, &data[19..]);

    let mut want = dirty_out();
    a.transpose_matmul_into(&c, &mut want).unwrap();

    // Split the shared (row) dimension at every possible point.
    for split in 0..=m {
        let top_a: Matrix<S> = to_matrix(split, k, data);
        let bot_a = {
            let vals: Vec<f64> = a.as_slice()[split * k..]
                .iter()
                .map(|v| v.to_f64())
                .collect();
            Matrix::<S>::from_f64_vec(m - split, k, &vals).unwrap()
        };
        let top_c = {
            let vals: Vec<f64> = c.as_slice()[..split * n]
                .iter()
                .map(|v| v.to_f64())
                .collect();
            Matrix::<S>::from_f64_vec(split, n, &vals).unwrap()
        };
        let bot_c = {
            let vals: Vec<f64> = c.as_slice()[split * n..]
                .iter()
                .map(|v| v.to_f64())
                .collect();
            Matrix::<S>::from_f64_vec(m - split, n, &vals).unwrap()
        };

        let mut got = dirty_out();
        got.ensure_shape(k, n);
        got.fill(S::ZERO);
        top_a.transpose_matmul_acc_into(&top_c, &mut got).unwrap();
        bot_a.transpose_matmul_acc_into(&bot_c, &mut got).unwrap();
        assert_bits_equal("transpose_matmul_acc split", &want, &got);

        // sum_rows over ascending row blocks == one-shot sum_rows.
        let mut rows_want = dirty_out();
        c.sum_rows_into(&mut rows_want);
        let mut rows_got = Matrix::zeros(1, n);
        top_c.sum_rows_acc_into(&mut rows_got).unwrap();
        bot_c.sum_rows_acc_into(&mut rows_got).unwrap();
        assert_bits_equal("sum_rows_acc split", &rows_want, &rows_got);
    }
}

/// Blocked and naive kernels must reject the same mismatched shapes with the
/// same error value.
fn check_error_parity<S: Scalar>(m: usize, k: usize, n: usize, data: &[f64]) {
    let a: Matrix<S> = to_matrix(m, k, data);
    let bad_inner: Matrix<S> = to_matrix(k + 1, n, &data[7..]); // matmul: rows ≠ k
    let bad_mt: Matrix<S> = to_matrix(n, k + 1, &data[7..]); // matmul_transpose: cols ≠ k
    let bad_tm: Matrix<S> = to_matrix(m + 1, n, &data[7..]); // transpose_matmul: rows ≠ m
    let mut out = dirty_out();
    let mut pack = ScratchArena::new();

    let e_naive = naive::matmul_into(&a, &bad_inner, &mut out).expect_err("matmul");
    let e_blocked = a.matmul_into(&bad_inner, &mut out).expect_err("matmul");
    let e_packed = a
        .matmul_into_packed(&bad_inner, &mut out, &mut pack)
        .expect_err("matmul_packed");
    assert_eq!(e_naive, e_blocked, "matmul error diverged");
    assert_eq!(e_naive, e_packed, "packed matmul error diverged");

    let e_naive = naive::matmul_transpose_into(&a, &bad_mt, &mut out).expect_err("mt");
    let e_blocked = a.matmul_transpose_into(&bad_mt, &mut out).expect_err("mt");
    assert_eq!(e_naive, e_blocked, "matmul_transpose error diverged");

    let e_naive = naive::transpose_matmul_into(&a, &bad_tm, &mut out).expect_err("tm");
    let e_blocked = a.transpose_matmul_into(&bad_tm, &mut out).expect_err("tm");
    assert_eq!(e_naive, e_blocked, "transpose_matmul error diverged");
}

// Dims span 1..13 so every property crosses the MR=4/NR=4 register-tile
// boundary both ways (full tiles plus 1–3-wide edges); values stay in ±8 so
// Q16.16 products are exactly representable without saturation.
const DIMS: (
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<usize>,
) = (1..13, 1..13, 1..13);

fn values() -> proptest::collection::VecStrategy<std::ops::Range<f64>> {
    proptest::collection::vec(-8.0f64..8.0, 64..65)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_kernels_match_naive_f32((m, k, n) in DIMS, data in values()) {
        check_kernels::<f32>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_f64((m, k, n) in DIMS, data in values()) {
        check_kernels::<f64>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_fix32((m, k, n) in DIMS, data in values()) {
        check_kernels::<Fix32>(m, k, n, &data);
    }

    #[test]
    fn acc_kernels_continue_chains_f32((m, k, n) in DIMS, data in values()) {
        check_acc_kernels::<f32>(m, k, n, &data);
    }

    #[test]
    fn acc_kernels_continue_chains_f64((m, k, n) in DIMS, data in values()) {
        check_acc_kernels::<f64>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_errors_f32((m, k, n) in DIMS, data in values()) {
        check_error_parity::<f32>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_errors_f64((m, k, n) in DIMS, data in values()) {
        check_error_parity::<f64>(m, k, n, &data);
    }

    #[test]
    fn blocked_kernels_match_naive_errors_fix32((m, k, n) in DIMS, data in values()) {
        check_error_parity::<Fix32>(m, k, n, &data);
    }
}

// ---------------------------------------------------------------------------
// Per-ISA arm parity: drive each SIMD arm directly through
// `kml_core::simd::testing` — bypassing backend dispatch, so the AVX2 arm is
// exercised even on an AVX-512 host and every arm still runs under
// `KML_FORCE_SCALAR=1` — and compare bit patterns against the scalar chain
// contract. Dims reach 19 so shapes cross the 4/8/16-lane boundaries of every
// arm both ways, and the value strategy mixes NaN, subnormals, ±0 and the
// sigmoid clamp/saturation bands in with ordinary magnitudes. Arms return
// `false` when the host CPU lacks the feature; those are skipped.
// ---------------------------------------------------------------------------
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod arm_parity {
    use super::*;
    use kml_core::simd::testing as arms;
    use proptest::prop_oneof;

    type GemmFn<T> = fn(&[T], &[T], &mut [T], usize, usize, usize) -> bool;
    type TmmFn<T> = fn(&[T], &[T], &mut [T], usize, usize, usize, bool) -> bool;
    type MtFn<T> = fn(&[T], &[T], &mut [T], usize, usize, usize) -> bool;
    type SigFn<T> = fn(&[T], &mut [T]) -> bool;

    /// One labelled fn-pointer table per kernel family, listing every arm the
    /// compilation target *could* have (runtime detection prunes the rest).
    macro_rules! arm_table {
        ($name:ident, $fnty:ty,
         x86: [$($xl:literal => $xf:path),*],
         neon: [$($nl:literal => $nf:path),*]) => {
            fn $name() -> Vec<(&'static str, $fnty)> {
                #[cfg(target_arch = "x86_64")]
                return vec![$(($xl, $xf as $fnty)),*];
                #[cfg(target_arch = "aarch64")]
                return vec![$(($nl, $nf as $fnty)),*];
            }
        };
    }

    arm_table!(matmul_arms_f32, GemmFn<f32>,
        x86: ["avx2" => arms::avx2_matmul_f32, "avx512" => arms::avx512_matmul_f32],
        neon: ["neon" => arms::neon_matmul_f32]);
    arm_table!(matmul_arms_f64, GemmFn<f64>,
        x86: ["avx2" => arms::avx2_matmul_f64, "avx512" => arms::avx512_matmul_f64],
        neon: ["neon" => arms::neon_matmul_f64]);
    arm_table!(tmm_arms_f32, TmmFn<f32>,
        x86: ["avx2" => arms::avx2_transpose_matmul_f32,
              "avx512" => arms::avx512_transpose_matmul_f32],
        neon: ["neon" => arms::neon_transpose_matmul_f32]);
    arm_table!(tmm_arms_f64, TmmFn<f64>,
        x86: ["avx2" => arms::avx2_transpose_matmul_f64,
              "avx512" => arms::avx512_transpose_matmul_f64],
        neon: ["neon" => arms::neon_transpose_matmul_f64]);
    arm_table!(mt_arms_f32, MtFn<f32>,
        x86: ["dot4" => arms::simd_matmul_transpose_f32],
        neon: ["dot4" => arms::simd_matmul_transpose_f32]);
    arm_table!(mt_arms_f64, MtFn<f64>,
        x86: ["dot4" => arms::simd_matmul_transpose_f64],
        neon: ["dot4" => arms::simd_matmul_transpose_f64]);
    arm_table!(sig_arms_f32, SigFn<f32>,
        x86: ["avx2" => arms::avx2_sigmoid_f32, "avx512" => arms::avx512_sigmoid_f32],
        neon: ["neon" => arms::neon_sigmoid_f32]);
    arm_table!(sig_arms_f64, SigFn<f64>,
        x86: ["avx2" => arms::avx2_sigmoid_f64, "avx512" => arms::avx512_sigmoid_f64],
        neon: ["neon" => arms::neon_sigmoid_f64]);

    /// Bit-pattern access so the asserts distinguish NaN payloads and signed
    /// zeros the way the determinism contract demands.
    trait Bits: Scalar {
        fn bits(self) -> u64;
    }
    impl Bits for f32 {
        fn bits(self) -> u64 {
            u64::from(self.to_bits())
        }
    }
    impl Bits for f64 {
        fn bits(self) -> u64 {
            self.to_bits()
        }
    }

    fn assert_arm_bits<S: Bits>(op: &str, arm: &str, want: &[S], got: &[S]) {
        let wb: Vec<u64> = want.iter().map(|v| v.bits()).collect();
        let gb: Vec<u64> = got.iter().map(|v| v.bits()).collect();
        assert_eq!(wb, gb, "{op}: {arm} arm diverged from the scalar chain");
    }

    fn vals<S: Scalar>(count: usize, data: &[f64], offset: usize) -> Vec<S> {
        data.iter()
            .copied()
            .cycle()
            .skip(offset)
            .take(count)
            .map(S::from_f64)
            .collect()
    }

    fn dirty<S: Scalar>(count: usize) -> Vec<S> {
        vec![S::from_f64(-77.25); count]
    }

    /// `matmul` contract: `c[i·n+j]` is one ascending-k mul/add chain from
    /// zero — `acc = acc + a·b`, never a fused contraction.
    fn ref_matmul<S: Scalar>(a: &[S], b: &[S], m: usize, kd: usize, n: usize) -> Vec<S> {
        let mut c = vec![S::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = S::ZERO;
                for p in 0..kd {
                    acc = acc.mul_acc(a[i * kd + p], b[p * n + j]);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    /// `transpose_matmul` contract (`a` is kd×mm): same ascending-k chains,
    /// continuing from `init` when given (`cont = true`, the `_acc` path).
    fn ref_transpose_matmul<S: Scalar>(
        a: &[S],
        b: &[S],
        init: Option<&[S]>,
        mm: usize,
        kd: usize,
        n: usize,
    ) -> Vec<S> {
        let mut c = init.map_or_else(|| vec![S::ZERO; mm * n], <[S]>::to_vec);
        for i in 0..mm {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..kd {
                    acc = acc.mul_acc(a[p * mm + i], b[p * n + j]);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    /// `matmul_transpose` contract: every output is [`Matrix::dot`]'s four
    /// stride-4 accumulator chains reduced `((l0+l1)+(l2+l3))+tail`.
    fn ref_matmul_transpose<S: Scalar>(a: &[S], b: &[S], m: usize, n: usize, kd: usize) -> Vec<S> {
        fn dot4<S: Scalar>(arow: &[S], brow: &[S]) -> S {
            let mut acc = [S::ZERO; 4];
            let mut ac = arow.chunks_exact(4);
            let mut bc = brow.chunks_exact(4);
            for (a4, b4) in (&mut ac).zip(&mut bc) {
                acc[0] = acc[0].mul_acc(a4[0], b4[0]);
                acc[1] = acc[1].mul_acc(a4[1], b4[1]);
                acc[2] = acc[2].mul_acc(a4[2], b4[2]);
                acc[3] = acc[3].mul_acc(a4[3], b4[3]);
            }
            let mut tail = S::ZERO;
            for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
                tail = tail.mul_acc(x, y);
            }
            acc[0].add(acc[1]).add(acc[2].add(acc[3])).add(tail)
        }
        let mut c = vec![S::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] = dot4(&a[i * kd..(i + 1) * kd], &b[j * kd..(j + 1) * kd]);
            }
        }
        c
    }

    fn check_matmul_arms<S: Bits>(
        table: &[(&str, GemmFn<S>)],
        m: usize,
        kd: usize,
        n: usize,
        data: &[f64],
    ) {
        let a: Vec<S> = vals(m * kd, data, 0);
        let b: Vec<S> = vals(kd * n, data, 7);
        let want = ref_matmul(&a, &b, m, kd, n);
        for &(name, f) in table {
            let mut c = dirty::<S>(m * n); // arms overwrite, never read, C
            if !f(&a, &b, &mut c, m, kd, n) {
                continue;
            }
            assert_arm_bits("matmul", name, &want, &c);
        }
    }

    fn check_tmm_arms<S: Bits>(
        table: &[(&str, TmmFn<S>)],
        mm: usize,
        kd: usize,
        n: usize,
        data: &[f64],
    ) {
        let a: Vec<S> = vals(kd * mm, data, 0);
        let b: Vec<S> = vals(kd * n, data, 7);
        let init: Vec<S> = vals(mm * n, data, 19);
        let fresh = ref_transpose_matmul(&a, &b, None, mm, kd, n);
        let seeded = ref_transpose_matmul(&a, &b, Some(&init), mm, kd, n);
        for &(name, f) in table {
            let mut c = dirty::<S>(mm * n);
            if !f(&a, &b, &mut c, mm, kd, n, false) {
                continue;
            }
            assert_arm_bits("transpose_matmul", name, &fresh, &c);

            // cont = true continues the chains from the existing C.
            let mut c = init.clone();
            assert!(f(&a, &b, &mut c, mm, kd, n, true));
            assert_arm_bits("transpose_matmul cont", name, &seeded, &c);

            // Ascending blocks along the shared dim, second with cont,
            // must equal the one-shot product (the `_acc` reduction).
            let s = kd / 2;
            let mut c = dirty::<S>(mm * n);
            assert!(f(&a[..s * mm], &b[..s * n], &mut c, mm, s, n, false));
            assert!(f(&a[s * mm..], &b[s * n..], &mut c, mm, kd - s, n, true));
            assert_arm_bits("transpose_matmul split", name, &fresh, &c);
        }
    }

    fn check_mt_arms<S: Bits>(
        table: &[(&str, MtFn<S>)],
        m: usize,
        n: usize,
        kd: usize,
        data: &[f64],
    ) {
        let a: Vec<S> = vals(m * kd, data, 0);
        let b: Vec<S> = vals(n * kd, data, 13);
        let want = ref_matmul_transpose(&a, &b, m, n, kd);
        for &(name, f) in table {
            let mut c = dirty::<S>(m * n);
            if !f(&a, &b, &mut c, m, n, kd) {
                continue;
            }
            assert_arm_bits("matmul_transpose", name, &want, &c);
        }
    }

    fn check_sigmoid_arms<S: Bits>(table: &[(&str, SigFn<S>)], input: &[S]) {
        let want: Vec<S> = input.iter().map(|&x| x.sigmoid()).collect();
        for &(name, f) in table {
            let mut out = dirty::<S>(input.len());
            if !f(input, &mut out) {
                continue;
            }
            assert_arm_bits("sigmoid", name, &want, &out);
        }
    }

    // Dims reach 19: past two 8-lane f32 vectors, so every arm sees full
    // 2×L blocks, single-L blocks, and masked remainders of 1..L-1 lanes.
    const ARM_DIMS: (
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
    ) = (1..20, 1..20, 1..20);

    /// Mostly ordinary magnitudes, salted with the values that break naive
    /// vectorizations: NaN (propagation), subnormals (FTZ/DAZ mismatches),
    /// signed zeros, and the sigmoid clamp (|x| ≥ 700 takes the scalar
    /// fallback lane) and f32 saturation bands.
    fn special_values() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            prop_oneof![
                10 => -8.0f64..8.0,
                1 => Just(f64::NAN),
                1 => Just(1.0e-41),   // subnormal once narrowed to f32
                1 => Just(-1.0e-310), // f64 subnormal (underflows to -0.0 as f32)
                1 => Just(0.0),
                1 => Just(-0.0),
                1 => Just(750.0),     // past the f64 sigmoid clamp
                1 => Just(-750.0),
                1 => Just(95.0),      // f32 sigmoid saturation band
                1 => Just(-95.0),
            ],
            64..65,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn simd_arms_match_scalar_chains_f32((m, k, n) in ARM_DIMS, data in special_values()) {
            check_matmul_arms(&matmul_arms_f32(), m, k, n, &data);
            check_tmm_arms(&tmm_arms_f32(), m, k, n, &data);
            check_mt_arms(&mt_arms_f32(), m, n, k, &data);
        }

        #[test]
        fn simd_arms_match_scalar_chains_f64((m, k, n) in ARM_DIMS, data in special_values()) {
            check_matmul_arms(&matmul_arms_f64(), m, k, n, &data);
            check_tmm_arms(&tmm_arms_f64(), m, k, n, &data);
            check_mt_arms(&mt_arms_f64(), m, n, k, &data);
        }

        #[test]
        fn simd_sigmoid_arms_match_scalar_f32(data in special_values(), len in 0usize..40) {
            let input: Vec<f32> = vals(len, &data, 0);
            check_sigmoid_arms(&sig_arms_f32(), &input);
        }

        #[test]
        fn simd_sigmoid_arms_match_scalar_f64(data in special_values(), len in 0usize..40) {
            let input: Vec<f64> = vals(len, &data, 0);
            check_sigmoid_arms(&sig_arms_f64(), &input);
        }
    }

    /// The dispatch-facing sanity check: on an x86-64 or AArch64 host where
    /// the runtime picked a SIMD backend, at least one per-ISA arm must be
    /// reachable by the suite above (otherwise it silently tests nothing).
    #[test]
    fn arms_available_when_simd_backend_dispatched() {
        if kml_core::simd::backend_name() != "scalar" {
            assert!(
                !arms::available_arms().is_empty(),
                "SIMD backend {} dispatched but no testable arms",
                kml_core::simd::backend_name()
            );
        }
    }
}

/// One deterministic large case whose shared dimension crosses the KC=256
/// cache-block boundary, so the packed path's store/reload of partial sums
/// is exercised (proptest dims stay small for speed).
#[test]
fn packed_matmul_crosses_kc_boundary_bit_exact() {
    let k = 300; // > KC = 256
    let (m, n) = (9, 11); // non-multiples of the 4×4 tile
    let a_vals: Vec<f64> = (0..m * k)
        .map(|i| ((i * 37) % 64) as f64 * 0.11 - 3.3)
        .collect();
    let b_vals: Vec<f64> = (0..k * n)
        .map(|i| ((i * 53) % 64) as f64 * 0.13 - 4.1)
        .collect();
    let a = Matrix::<f64>::from_f64_vec(m, k, &a_vals).unwrap();
    let b = Matrix::<f64>::from_f64_vec(k, n, &b_vals).unwrap();

    let mut want = Matrix::zeros(0, 0);
    naive::matmul_into(&a, &b, &mut want).unwrap();

    let mut got = Matrix::zeros(0, 0);
    a.matmul_into(&b, &mut got).unwrap();
    assert_eq!(want.as_slice(), got.as_slice(), "blocked kernel diverged");

    let mut pack = ScratchArena::new();
    let mut packed = Matrix::zeros(0, 0);
    a.matmul_into_packed(&b, &mut packed, &mut pack).unwrap();
    assert_eq!(want.as_slice(), packed.as_slice(), "packed kernel diverged");
}
