//! Allocation-count regression test for the inference hot path.
//!
//! KML's pitch is a kernel-resident ML runtime, and a kernel hot path cannot
//! afford heap traffic per event (the paper budgets 676 B of *reused* scratch
//! for inference, §4). This test installs [`CountingSystemAlloc`] as the
//! global allocator of its own test binary and proves that after one warm-up
//! call, steady-state `Model::predict` / `Model::infer_into` perform **zero**
//! heap allocations.
//!
//! Lives in its own integration-test binary because `#[global_allocator]` is
//! process-wide; per-thread counters keep parallel libtest threads from
//! perturbing each other.

use kml_core::dataset::Normalizer;
use kml_core::fixed::Fix32;
use kml_core::loss::{CrossEntropyLoss, TargetRef};
use kml_core::matrix::Matrix;
use kml_core::model::ModelBuilder;
use kml_core::optimizer::Sgd;
use kml_core::scalar::Scalar;
use kml_platform::alloc::CountingSystemAlloc;

#[global_allocator]
static ALLOC: CountingSystemAlloc = CountingSystemAlloc;

const FEATURES: [f64; 5] = [5_000.0, 3_000.0, 1_800.0, 500.0, 128.0];

fn fitted_normalizer() -> Normalizer {
    let rows: Vec<Vec<f64>> = (0..8)
        .map(|r| (0..5).map(|c| (r * 5 + c) as f64).collect())
        .collect();
    let m = Matrix::from_rows(&rows).unwrap();
    Normalizer::fit(&m).unwrap()
}

fn assert_steady_state_zero_allocs<S: Scalar>(label: &str) {
    let mut model = ModelBuilder::readahead_paper_topology(5, 4)
        .seed(0x2a)
        .build::<S>()
        .unwrap();
    model.set_normalizer(fitted_normalizer());
    let mut out = Vec::new();

    // Warm-up: sizes every scratch buffer (graph arena, staging row, output).
    for _ in 0..3 {
        model.predict(&FEATURES).unwrap();
        model.infer_into(&FEATURES, &mut out).unwrap();
    }

    let allocs_before = CountingSystemAlloc::thread_allocations();
    let frees_before = CountingSystemAlloc::thread_frees();
    for _ in 0..1_000 {
        let class = model.predict(&FEATURES).unwrap();
        assert!(class < 4);
        model.infer_into(&FEATURES, &mut out).unwrap();
        assert_eq!(out.len(), 4);
    }
    let allocs = CountingSystemAlloc::thread_allocations() - allocs_before;
    let frees = CountingSystemAlloc::thread_frees() - frees_before;
    assert_eq!(
        allocs, 0,
        "{label}: steady-state inference performed {allocs} heap allocations"
    );
    assert_eq!(
        frees, 0,
        "{label}: steady-state inference performed {frees} heap frees"
    );
}

#[test]
fn steady_state_inference_is_allocation_free_f32() {
    assert_steady_state_zero_allocs::<f32>("f32");
}

#[test]
fn steady_state_inference_is_allocation_free_f64() {
    assert_steady_state_zero_allocs::<f64>("f64");
}

#[test]
fn steady_state_inference_is_allocation_free_fix32() {
    assert_steady_state_zero_allocs::<Fix32>("Fix32 (Q16.16)");
}

/// Steady-state serial `train_batch` — forward, fused loss+gradient,
/// backward, visitor-driven SGD — must also be allocation-free once every
/// scratch buffer (graph arenas, loss-grad matrix, SGD velocities) has been
/// sized by a warm-up step.
fn assert_steady_state_training_zero_allocs<S: Scalar>(label: &str) {
    let mut model = ModelBuilder::readahead_paper_topology(5, 4)
        .seed(0x2a)
        .build::<S>()
        .unwrap();
    let mut sgd = Sgd::paper_defaults();
    let vals: Vec<f64> = (0..16 * 5).map(|i| ((i * 11) % 23) as f64 * 0.1).collect();
    let input = Matrix::<S>::from_f64_vec(16, 5, &vals).unwrap();
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let target = TargetRef::Classes(&labels);

    for _ in 0..3 {
        model
            .train_batch(&input, target, &CrossEntropyLoss, &mut sgd)
            .unwrap();
    }

    let allocs_before = CountingSystemAlloc::thread_allocations();
    let frees_before = CountingSystemAlloc::thread_frees();
    for _ in 0..1_000 {
        model
            .train_batch(&input, target, &CrossEntropyLoss, &mut sgd)
            .unwrap();
    }
    let allocs = CountingSystemAlloc::thread_allocations() - allocs_before;
    let frees = CountingSystemAlloc::thread_frees() - frees_before;
    assert_eq!(
        allocs, 0,
        "{label}: steady-state training performed {allocs} heap allocations"
    );
    assert_eq!(
        frees, 0,
        "{label}: steady-state training performed {frees} heap frees"
    );
}

#[test]
fn steady_state_training_is_allocation_free_f32() {
    assert_steady_state_training_zero_allocs::<f32>("f32");
}

#[test]
fn steady_state_training_is_allocation_free_f64() {
    assert_steady_state_training_zero_allocs::<f64>("f64");
}

#[test]
fn steady_state_training_is_allocation_free_fix32() {
    assert_steady_state_training_zero_allocs::<Fix32>("Fix32 (Q16.16)");
}

#[test]
fn counting_allocator_observes_heap_traffic() {
    // Sanity check that the counter actually counts: a Vec push from empty
    // must allocate, so a zero reading above is meaningful.
    let before = CountingSystemAlloc::thread_allocations();
    let v: Vec<u64> = Vec::with_capacity(32);
    assert!(
        CountingSystemAlloc::thread_allocations() > before,
        "allocator hook did not observe Vec::with_capacity"
    );
    drop(v);
}
