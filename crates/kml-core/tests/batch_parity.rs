//! Property tests: batched inference over a row-stacked feature matrix is
//! bit-identical to N single-row inferences — the guarantee the fleet's
//! shared model-inference server rests on. A batch forward runs one
//! `B × input_dim` matmul per linear layer (the blocked-GEMM path) instead
//! of B single-row passes, so this property is what lets the server batch
//! per-tenant windows without changing a single decision.
//!
//! Covered across all three scalar types (f32, f64, Q16.16 fixed point),
//! with and without a fitted normalizer, and including ragged final
//! batches: chunking the rows into uneven batches must reproduce the
//! full-batch output bit for bit.

use kml_core::dataset::Normalizer;
use kml_core::fixed::Fix32;
use kml_core::matrix::Matrix;
use kml_core::model::{Model, ModelBuilder};
use kml_core::scalar::Scalar;
use proptest::prelude::*;

/// Builds the test network: wide enough that the hidden dimension crosses
/// the blocked kernel's tile boundaries for some draws.
fn build_model<S: Scalar>(
    input_dim: usize,
    hidden: usize,
    output_dim: usize,
    seed: u64,
    normalize: bool,
    rows: &[Vec<f64>],
) -> Model<S> {
    let mut model = ModelBuilder::new(input_dim)
        .linear(hidden)
        .sigmoid()
        .linear(output_dim)
        .seed(seed)
        .build::<S>()
        .expect("valid topology");
    if normalize {
        let features = Matrix::from_rows(rows).expect("rectangular rows");
        model.set_normalizer(Normalizer::fit(&features).expect("fit succeeds"));
    }
    model
}

#[allow(clippy::too_many_arguments)]
fn check_batch_parity<S: Scalar>(
    input_dim: usize,
    hidden: usize,
    output_dim: usize,
    seed: u64,
    normalize: bool,
    data: &[f64],
    n_rows: usize,
    chunk: usize,
) {
    let rows: Vec<Vec<f64>> = (0..n_rows)
        .map(|r| data[r * input_dim..(r + 1) * input_dim].to_vec())
        .collect();
    let mut model = build_model::<S>(input_dim, hidden, output_dim, seed, normalize, &rows);

    // Serial reference: one infer_into / predict per row.
    let mut serial_out = Vec::new();
    let mut serial_classes = Vec::new();
    let mut row_out = Vec::new();
    for row in &rows {
        model.infer_into(row, &mut row_out).expect("serial infer");
        serial_out.extend_from_slice(&row_out);
        serial_classes.push(model.predict(row).expect("serial predict"));
    }

    // Full batch: one forward pass over all rows.
    let stacked: Vec<f64> = rows.iter().flatten().copied().collect();
    let mut batch_out = Vec::new();
    model
        .infer_batch_into(&stacked, n_rows, &mut batch_out)
        .expect("batch infer");
    assert_eq!(batch_out.len(), n_rows * output_dim);
    for (i, (s, b)) in serial_out.iter().zip(&batch_out).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "output {i}: serial {s} vs batched {b}"
        );
    }
    let mut batch_classes = Vec::new();
    model
        .predict_batch_into(&stacked, n_rows, &mut batch_classes)
        .expect("batch predict");
    assert_eq!(serial_classes, batch_classes);

    // Ragged chunking: uneven batch sizes (final chunk smaller) must
    // reproduce the full-batch output bit for bit.
    let mut chunked_out = Vec::new();
    let mut chunk_buf = Vec::new();
    for rows_chunk in rows.chunks(chunk) {
        let flat: Vec<f64> = rows_chunk.iter().flatten().copied().collect();
        model
            .infer_batch_into(&flat, rows_chunk.len(), &mut chunk_buf)
            .expect("chunked infer");
        chunked_out.extend_from_slice(&chunk_buf);
    }
    for (i, (s, c)) in serial_out.iter().zip(&chunked_out).enumerate() {
        assert_eq!(
            s.to_bits(),
            c.to_bits(),
            "output {i}: serial {s} vs chunked {c}"
        );
    }
}

/// Dimensions: hidden up to 20 so some draws cross the blocked kernel's
/// tile edges; rows up to 37 and chunks up to 7 so final chunks are ragged
/// for most draws. Values stay within ±8 so Q16.16 stays unsaturated.
const MAX_ROWS: usize = 37;
const MAX_DIM: usize = 6;

type Params = ((usize, usize, usize), (u64, bool), (usize, usize));

fn params() -> impl Strategy<Value = Params> {
    (
        // (input_dim, hidden, output_dim)
        (1..=MAX_DIM, 1..=20usize, 2..=5usize),
        // (seed, normalizer attached?)
        (0..1000u64, any::<bool>()),
        // (rows, chunk size — ragged final batch for most draws)
        (1..=MAX_ROWS, 1..=7usize),
    )
}

fn values() -> proptest::collection::VecStrategy<std::ops::Range<f64>> {
    proptest::collection::vec(-8.0f64..8.0, MAX_ROWS * MAX_DIM..MAX_ROWS * MAX_DIM + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_inference_matches_serial_f32(
        ((input_dim, hidden, output_dim), (seed, normalize), (rows, chunk)) in params(),
        data in values(),
    ) {
        check_batch_parity::<f32>(input_dim, hidden, output_dim, seed, normalize, &data, rows, chunk);
    }

    #[test]
    fn batched_inference_matches_serial_f64(
        ((input_dim, hidden, output_dim), (seed, normalize), (rows, chunk)) in params(),
        data in values(),
    ) {
        check_batch_parity::<f64>(input_dim, hidden, output_dim, seed, normalize, &data, rows, chunk);
    }

    #[test]
    fn batched_inference_matches_serial_fix32(
        ((input_dim, hidden, output_dim), (seed, normalize), (rows, chunk)) in params(),
        data in values(),
    ) {
        check_batch_parity::<Fix32>(input_dim, hidden, output_dim, seed, normalize, &data, rows, chunk);
    }
}

#[test]
fn empty_batch_is_a_clean_no_op() {
    let mut model = ModelBuilder::new(3)
        .linear(4)
        .sigmoid()
        .linear(2)
        .seed(1)
        .build::<f32>()
        .unwrap();
    let mut out = vec![1.0, 2.0];
    model.infer_batch_into(&[], 0, &mut out).unwrap();
    assert!(out.is_empty());
    let mut classes = vec![9usize];
    model.predict_batch_into(&[], 0, &mut classes).unwrap();
    assert!(classes.is_empty());
}

#[test]
fn wrong_batch_shape_is_rejected() {
    let mut model = ModelBuilder::new(3)
        .linear(4)
        .sigmoid()
        .linear(2)
        .seed(1)
        .build::<f32>()
        .unwrap();
    let mut out = Vec::new();
    // 5 values cannot be 2 rows of 3 features.
    let err = model.infer_batch_into(&[0.0; 5], 2, &mut out).unwrap_err();
    assert!(matches!(err, kml_core::KmlError::ShapeMismatch { .. }));
}
