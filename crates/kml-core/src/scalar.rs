//! The [`Scalar`] abstraction over matrix element types.
//!
//! KML "supports *integer*, *floating-point*, and *double* precision
//! matrices" (§3.1) so the same model code can run with the FPU disabled
//! (fixed-point) or enabled (f32/f64). `Scalar` is the sealed trait that
//! matrices and layers are generic over; the three implementations are `f32`,
//! `f64`, and [`crate::fixed::Fix32`] (Q16.16 fixed point standing in for the
//! paper's integer matrices).

use crate::fixed::Fix32;

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for crate::fixed::Fix32 {}
}

/// Element type usable inside a [`crate::matrix::Matrix`].
///
/// This trait is sealed: the supported scalar types are exactly `f32`, `f64`
/// and [`Fix32`], matching the three matrix precisions the paper lists.
pub trait Scalar:
    private::Sealed
    + Copy
    + Clone
    + std::fmt::Debug
    + std::fmt::Display
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short name stored in model files (`"f32"`, `"f64"`, `"q16"`).
    const DTYPE: &'static str;
    /// Whether arithmetic on this type uses the floating-point unit
    /// (and therefore must run inside an [`kml_platform::fpu::FpuGuard`]).
    const USES_FPU: bool;
    /// Bytes per element (for the memory-footprint accounting in §4).
    const BYTES: usize = std::mem::size_of::<Self>();

    /// Converts from `f64`, saturating where the representation requires.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` (exact for f32/f64, exact by construction for Q16.16).
    fn to_f64(self) -> f64;

    /// Addition.
    fn add(self, rhs: Self) -> Self;
    /// Subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Division.
    fn div(self, rhs: Self) -> Self;
    /// Multiply-accumulate `self + a*b` (the inner-product kernel).
    /// Named `mul_acc` to avoid colliding with `f64::mul_add`, whose argument
    /// convention (`self*a + b`) differs.
    fn mul_acc(self, a: Self, b: Self) -> Self {
        self.add(a.mul(b))
    }

    /// Logistic sigmoid. The default routes through the `f64` approximation
    /// in [`crate::math`]; FPU-free scalars override it.
    fn sigmoid(self) -> Self {
        Self::from_f64(crate::math::sigmoid(self.to_f64()))
    }

    /// Element-wise sigmoid over a slice, bit-identical to mapping
    /// [`Scalar::sigmoid`] per element. The default is that loop; the float
    /// impls override it with the four-lane SLP path
    /// ([`crate::math::sigmoid4`]), whose packed divides are what make the
    /// activation layers cheap.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    fn sigmoid_map(input: &[Self], out: &mut [Self]) {
        assert_eq!(input.len(), out.len(), "sigmoid_map length mismatch");
        for (o, &x) in out.iter_mut().zip(input) {
            *o = x.sigmoid();
        }
    }

    /// Hyperbolic tangent, same routing policy as [`Scalar::sigmoid`].
    fn tanh(self) -> Self {
        Self::from_f64(crate::math::tanh(self.to_f64()))
    }

    /// Rectified linear unit (`max(0, x)`), FPU-free for every scalar.
    fn relu(self) -> Self {
        if self > Self::ZERO {
            self
        } else {
            Self::ZERO
        }
    }

    // Whole-operation SIMD hooks, dispatched per process by
    // [`crate::simd::kernel_backend`]. Each returns `true` when a
    // bit-identical vector kernel handled the operation, `false` when the
    // caller must run the scalar blocked kernel. The defaults (always
    // `false`) cover [`Fix32`], whose widening integer arithmetic stays on
    // the scalar path; f32/f64 override. Hidden: these are kernel plumbing,
    // not part of the scalar algebra.

    /// `c[m×n] = a[m×kd]·b[kd×n]` via the dispatched SIMD backend.
    #[doc(hidden)]
    fn simd_matmul(
        _a: &[Self],
        _b: &[Self],
        _c: &mut [Self],
        _m: usize,
        _kd: usize,
        _n: usize,
    ) -> bool {
        false
    }

    /// `c[m×n] = a[m×kd]·b[n×kd]ᵀ` via the dispatched SIMD backend.
    #[doc(hidden)]
    fn simd_matmul_transpose(
        _a: &[Self],
        _b: &[Self],
        _c: &mut [Self],
        _m: usize,
        _n: usize,
        _kd: usize,
    ) -> bool {
        false
    }

    /// `c[mm×n] {=, +=} a[kd×mm]ᵀ·b[kd×n]` via the dispatched SIMD backend.
    #[doc(hidden)]
    fn simd_transpose_matmul(
        _a: &[Self],
        _b: &[Self],
        _c: &mut [Self],
        _mm: usize,
        _kd: usize,
        _n: usize,
        _cont: bool,
    ) -> bool {
        false
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: &'static str = "f32";
    const USES_FPU: bool = true;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }

    fn sigmoid_map(input: &[Self], out: &mut [Self]) {
        assert_eq!(input.len(), out.len(), "sigmoid_map length mismatch");
        if crate::simd::sigmoid_map_f32(input, out) {
            return;
        }
        // Widen to f64 lanes — sixteen at a time while the slice lasts,
        // then four — narrowing back exactly like the scalar
        // `from_f64(sigmoid(to_f64(x)))` route.
        let mut oc16 = out.chunks_exact_mut(16);
        let mut ic16 = input.chunks_exact(16);
        for (o16, i16) in (&mut oc16).zip(&mut ic16) {
            let mut wide = [0.0f64; 16];
            for (w, &x) in wide.iter_mut().zip(i16) {
                *w = x as f64;
            }
            let y = crate::math::sigmoid16(&wide);
            for (o, &v) in o16.iter_mut().zip(&y) {
                *o = v as f32;
            }
        }
        let mut oc = oc16.into_remainder().chunks_exact_mut(4);
        let mut ic = ic16.remainder().chunks_exact(4);
        for (o4, i4) in (&mut oc).zip(&mut ic) {
            let y = crate::math::sigmoid4([i4[0] as f64, i4[1] as f64, i4[2] as f64, i4[3] as f64]);
            o4[0] = y[0] as f32;
            o4[1] = y[1] as f32;
            o4[2] = y[2] as f32;
            o4[3] = y[3] as f32;
        }
        for (o, &x) in oc.into_remainder().iter_mut().zip(ic.remainder()) {
            *o = x.sigmoid();
        }
    }

    #[doc(hidden)]
    fn simd_matmul(a: &[Self], b: &[Self], c: &mut [Self], m: usize, kd: usize, n: usize) -> bool {
        crate::simd::matmul_f32(a, b, c, m, kd, n)
    }

    #[doc(hidden)]
    fn simd_matmul_transpose(
        a: &[Self],
        b: &[Self],
        c: &mut [Self],
        m: usize,
        n: usize,
        kd: usize,
    ) -> bool {
        crate::simd::matmul_transpose_f32(a, b, c, m, n, kd)
    }

    #[doc(hidden)]
    fn simd_transpose_matmul(
        a: &[Self],
        b: &[Self],
        c: &mut [Self],
        mm: usize,
        kd: usize,
        n: usize,
        cont: bool,
    ) -> bool {
        crate::simd::transpose_matmul_f32(a, b, c, mm, kd, n, cont)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: &'static str = "f64";
    const USES_FPU: bool = true;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }

    fn sigmoid_map(input: &[Self], out: &mut [Self]) {
        assert_eq!(input.len(), out.len(), "sigmoid_map length mismatch");
        if crate::simd::sigmoid_map_f64(input, out) {
            return;
        }
        crate::math::sigmoid_slice(input, out);
    }

    #[doc(hidden)]
    fn simd_matmul(a: &[Self], b: &[Self], c: &mut [Self], m: usize, kd: usize, n: usize) -> bool {
        crate::simd::matmul_f64(a, b, c, m, kd, n)
    }

    #[doc(hidden)]
    fn simd_matmul_transpose(
        a: &[Self],
        b: &[Self],
        c: &mut [Self],
        m: usize,
        n: usize,
        kd: usize,
    ) -> bool {
        crate::simd::matmul_transpose_f64(a, b, c, m, n, kd)
    }

    #[doc(hidden)]
    fn simd_transpose_matmul(
        a: &[Self],
        b: &[Self],
        c: &mut [Self],
        mm: usize,
        kd: usize,
        n: usize,
        cont: bool,
    ) -> bool {
        crate::simd::transpose_matmul_f64(a, b, c, mm, kd, n, cont)
    }
}

impl Scalar for Fix32 {
    const ZERO: Self = Fix32::ZERO;
    const ONE: Self = Fix32::ONE;
    const DTYPE: &'static str = "q16";
    const USES_FPU: bool = false;

    #[inline]
    fn from_f64(v: f64) -> Self {
        Fix32::from_f64(v)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Fix32::to_f64(self)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }

    /// FPU-free piecewise-linear sigmoid (the fixed-point trick the paper's
    /// §3.1 discussion motivates): exact at 0 and saturated beyond |x| ≥ 5,
    /// linear interpolation on 10 integer-boundary segments in between.
    /// Max absolute error ≈ 0.02 — enough for classification, measured in
    /// the `ablate_dtype` benchmark.
    fn sigmoid(self) -> Self {
        // Knot table: sigmoid at x = 0..=5, Q16.16-encoded.
        const KNOTS: [i64; 6] = [32768, 47911, 57723, 62428, 64357, 65097];
        let x = self.to_bits() as i64;
        let (neg, ax) = if x < 0 { (true, -x) } else { (false, x) };
        let y = if ax >= (5 << 16) {
            65536 // saturate at 1.0
        } else {
            let seg = (ax >> 16) as usize;
            let frac = ax & 0xffff; // position within the segment, Q0.16
            let lo = KNOTS[seg];
            let hi = KNOTS[seg + 1];
            lo + (((hi - lo) * frac) >> 16)
        };
        let y = if neg { 65536 - y } else { y };
        Fix32::from_bits(y as i32)
    }

    /// FPU-free tanh via the identity `tanh(x) = 2σ(2x) − 1` on the
    /// piecewise-linear sigmoid.
    fn tanh(self) -> Self {
        let two = Fix32::from_bits(2 << 16);
        let two_x = self * two;
        (Scalar::sigmoid(two_x) * two) - Fix32::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names_are_distinct() {
        assert_ne!(f32::DTYPE, f64::DTYPE);
        assert_ne!(f64::DTYPE, Fix32::DTYPE);
    }

    #[test]
    fn fpu_flags_match_representation() {
        // Compile-time constants; compare against runtime values so the
        // intent (floats guard, fixed point does not) stays asserted.
        let flags = [f32::USES_FPU, f64::USES_FPU, Fix32::USES_FPU];
        assert_eq!(flags, [true, true, false]);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for &v in &[-3.25, 0.0, 1.0, 12345.6789] {
            assert_eq!(f64::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn mul_acc_default_matches_composition() {
        let acc = 1.5f64;
        assert_eq!(Scalar::mul_acc(acc, 2.0, 3.0), 1.5 + 2.0 * 3.0);
    }

    #[test]
    fn bytes_constant_matches_size_of() {
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(Fix32::BYTES, 4);
    }

    #[test]
    fn fixed_sigmoid_tracks_float_sigmoid() {
        let mut x = -8.0;
        while x <= 8.0 {
            let want = crate::math::sigmoid(x);
            let got = Scalar::sigmoid(Fix32::from_f64(x)).to_f64();
            assert!(
                (got - want).abs() < 0.025,
                "piecewise sigmoid({x}): got {got}, want {want}"
            );
            x += 0.13;
        }
    }

    #[test]
    fn fixed_sigmoid_is_monotone_and_symmetric() {
        let mut prev = -1.0;
        let mut x = -10.0;
        while x <= 10.0 {
            let s = Scalar::sigmoid(Fix32::from_f64(x)).to_f64();
            assert!(s >= prev, "monotonicity broken at {x}");
            let mirrored = Scalar::sigmoid(Fix32::from_f64(-x)).to_f64();
            assert!((s + mirrored - 1.0).abs() < 2e-4, "symmetry broken at {x}");
            prev = s;
            x += 0.25;
        }
    }

    #[test]
    fn fixed_tanh_tracks_float_tanh() {
        let mut x = -3.0;
        while x <= 3.0 {
            let want = crate::math::tanh(x);
            let got = Scalar::tanh(Fix32::from_f64(x)).to_f64();
            assert!(
                (got - want).abs() < 0.05,
                "piecewise tanh({x}): {got} vs {want}"
            );
            x += 0.11;
        }
    }

    #[test]
    fn relu_zeroes_negatives_for_all_scalars() {
        assert_eq!(Scalar::relu(-1.0f64), 0.0);
        assert_eq!(Scalar::relu(2.0f64), 2.0);
        assert_eq!(Scalar::relu(Fix32::from_f64(-3.0)), Fix32::ZERO);
        assert_eq!(Scalar::relu(Fix32::from_f64(3.0)).to_f64(), 3.0);
    }

    #[test]
    fn sigmoid_map_matches_per_element_for_every_scalar() {
        fn check<S: Scalar>() {
            // Lengths straddling the quad boundary, mixed-sign values.
            for len in [0usize, 1, 3, 4, 5, 8, 17] {
                let input: Vec<S> = (0..len)
                    .map(|i| S::from_f64(i as f64 * 0.63 - 3.1))
                    .collect();
                let mut out = vec![S::ZERO; len];
                S::sigmoid_map(&input, &mut out);
                for (&x, &got) in input.iter().zip(&out) {
                    let want = x.sigmoid();
                    assert!(
                        got.to_f64().to_bits() == want.to_f64().to_bits(),
                        "{}: sigmoid_map({:?}) = {got:?}, want {want:?}",
                        S::DTYPE,
                        x
                    );
                }
            }
        }
        check::<f32>();
        check::<f64>();
        check::<Fix32>();
    }

    #[test]
    fn float_sigmoid_default_matches_math() {
        let got = Scalar::sigmoid(0.7f64);
        assert!((got - crate::math::sigmoid(0.7)).abs() < 1e-15);
    }
}
