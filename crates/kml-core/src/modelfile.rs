//! The KML model-file format (paper §3.3).
//!
//! "The user can save the model to a file that has a KML-specific file
//! format. The user can then load the neural network model ... in the kernel
//! module." This module implements that format: a little-endian binary
//! container holding the layer chain, all parameters (stored as `f64` so a
//! model trained in one precision can deploy in another — e.g. train in
//! `f64` user space, deploy as `f32` or fixed point in the kernel), the
//! fitted Z-score normalizer, and an FNV-1a checksum.
//!
//! ```text
//! offset  field
//! 0       magic "KMLMODEL" (8 bytes)
//! 8       version u32 = 1
//! 12      source dtype (u8 length + bytes, informational)
//! ..      input_dim u32, output_dim u32
//! ..      normalizer flag u8; if 1: dim u32, means [f64], stds [f64]
//! ..      layer count u32
//! ..      per layer: kind tag u8; linear layers add rows u32, cols u32,
//!         weights (rows*cols f64), bias (cols f64)
//! ..      checksum u64 (FNV-1a over everything before it)
//! ```

use crate::dataset::Normalizer;
use crate::graph::Graph;
use crate::layers::{Activation, ActivationLayer, Layer, LayerKind, Linear, SoftmaxLayer};
use crate::matrix::Matrix;
use crate::model::Model;
use crate::scalar::Scalar;
use crate::{KmlError, Result};
use kml_platform::fileops::KmlFile;

const MAGIC: &[u8; 8] = b"KMLMODEL";
const VERSION: u32 = 1;

/// Serializes a model to the KML binary format.
///
/// # Errors
///
/// Returns [`KmlError::InvalidConfig`] if the model's graph is not a chain
/// (only chains are serializable, matching the paper's prototype).
pub fn encode<S: Scalar>(model: &Model<S>) -> Result<Vec<u8>> {
    if !model.graph().is_chain() {
        return Err(KmlError::InvalidConfig(
            "only chain models can be serialized".into(),
        ));
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    let dtype = S::DTYPE.as_bytes();
    buf.push(dtype.len() as u8);
    buf.extend_from_slice(dtype);
    put_u32(&mut buf, model.input_dim() as u32);
    put_u32(&mut buf, model.output_dim() as u32);

    match model.normalizer() {
        Some(n) => {
            buf.push(1);
            put_u32(&mut buf, n.feature_dim() as u32);
            for &m in n.means() {
                put_f64(&mut buf, m);
            }
            for &s in n.stds() {
                put_f64(&mut buf, s);
            }
        }
        None => buf.push(0),
    }

    let layers: Vec<&dyn Layer<S>> = model.graph().layers().collect();
    put_u32(&mut buf, layers.len() as u32);
    for layer in layers {
        buf.push(layer.kind().tag());
        if layer.kind() == LayerKind::Linear {
            let params = layer.params();
            let (w, b) = (params[0], params[1]);
            put_u32(&mut buf, w.rows() as u32);
            put_u32(&mut buf, w.cols() as u32);
            for v in w.as_slice() {
                put_f64(&mut buf, v.to_f64());
            }
            for v in b.as_slice() {
                put_f64(&mut buf, v.to_f64());
            }
        }
    }

    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    Ok(buf)
}

/// Deserializes a model from the KML binary format, converting parameters
/// into scalar type `S` (which may differ from the saving precision).
///
/// # Errors
///
/// Returns [`KmlError::BadModelFile`] for truncated data, a bad magic or
/// version, an unknown layer tag, or a checksum mismatch.
pub fn decode<S: Scalar>(bytes: &[u8]) -> Result<Model<S>> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(KmlError::BadModelFile("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(KmlError::BadModelFile(format!(
            "unsupported version {version}"
        )));
    }
    let dtype_len = r.u8()? as usize;
    let _source_dtype = r.take(dtype_len)?; // informational only
    let input_dim = r.u32()? as usize;
    let output_dim = r.u32()? as usize;

    let normalizer = if r.u8()? == 1 {
        let dim = r.u32()? as usize;
        let mut means = Vec::with_capacity(dim);
        for _ in 0..dim {
            means.push(r.f64()?);
        }
        let mut stds = Vec::with_capacity(dim);
        for _ in 0..dim {
            stds.push(r.f64()?);
        }
        Some(Normalizer::from_stats(means, stds)?)
    } else {
        None
    };

    let layer_count = r.u32()? as usize;
    if layer_count == 0 || layer_count > 10_000 {
        return Err(KmlError::BadModelFile(format!(
            "implausible layer count {layer_count}"
        )));
    }
    let mut graph: Graph<S> = Graph::new();
    let mut prev = None;
    for _ in 0..layer_count {
        let kind = LayerKind::from_tag(r.u8()?)?;
        let layer: Box<dyn Layer<S>> = match kind {
            LayerKind::Linear => {
                let rows = r.u32()? as usize;
                let cols = r.u32()? as usize;
                if rows == 0 || cols == 0 || rows.saturating_mul(cols) > 100_000_000 {
                    return Err(KmlError::BadModelFile(format!(
                        "implausible linear layer {rows}x{cols}"
                    )));
                }
                let mut w = Vec::with_capacity(rows * cols);
                for _ in 0..rows * cols {
                    w.push(r.f64()?);
                }
                let mut b = Vec::with_capacity(cols);
                for _ in 0..cols {
                    b.push(r.f64()?);
                }
                Box::new(Linear::from_params(
                    Matrix::<S>::from_f64_vec(rows, cols, &w)?,
                    Matrix::<S>::from_f64_vec(1, cols, &b)?,
                )?)
            }
            LayerKind::Sigmoid => Box::new(ActivationLayer::new(Activation::Sigmoid)),
            LayerKind::Relu => Box::new(ActivationLayer::new(Activation::Relu)),
            LayerKind::Tanh => Box::new(ActivationLayer::new(Activation::Tanh)),
            LayerKind::Softmax => Box::new(SoftmaxLayer::new()),
        };
        prev = Some(match prev {
            None => graph.add_source(layer)?,
            Some(p) => graph.add_node(layer, p)?,
        });
    }
    graph.set_output(prev.expect("layer_count >= 1"))?;

    let body_end = r.pos;
    let stored = u64::from_le_bytes(
        r.take(8)?
            .try_into()
            .expect("take(8) returns exactly 8 bytes"),
    );
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(KmlError::BadModelFile(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    if r.pos != bytes.len() {
        return Err(KmlError::BadModelFile(format!(
            "{} trailing bytes after checksum",
            bytes.len() - r.pos
        )));
    }
    Model::from_graph(graph, input_dim, output_dim, normalizer)
}

/// Saves a model to `path` (encode + [`KmlFile`] write + sync).
///
/// # Errors
///
/// Propagates [`encode`] and file errors.
pub fn save<S: Scalar>(model: &Model<S>, path: impl AsRef<std::path::Path>) -> Result<()> {
    let bytes = encode(model)?;
    let mut f = KmlFile::create(path)?;
    f.write_all(&bytes)?;
    f.sync()?;
    Ok(())
}

/// Loads a model from `path`.
///
/// # Errors
///
/// Propagates file and [`decode`] errors.
pub fn load<S: Scalar>(path: impl AsRef<std::path::Path>) -> Result<Model<S>> {
    let mut f = KmlFile::open(path)?;
    let bytes = f.read_to_end_vec()?;
    decode(&bytes)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(KmlError::BadModelFile(format!(
                "truncated: wanted {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::fixed::Fix32;
    use crate::model::ModelBuilder;

    fn sample_model() -> Model<f64> {
        let mut m = ModelBuilder::readahead_paper_topology(5, 4)
            .seed(99)
            .build::<f64>()
            .unwrap();
        let data = Dataset::from_rows(
            &[vec![1.0, 2.0, 3.0, 4.0, 5.0], vec![5.0, 4.0, 3.0, 2.0, 1.0]],
            &[0, 1],
        )
        .unwrap();
        m.set_normalizer(crate::dataset::Normalizer::fit(data.features()).unwrap());
        m
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let mut model = sample_model();
        let bytes = encode(&model).unwrap();
        let mut loaded = decode::<f64>(&bytes).unwrap();
        for features in [
            [0.1, 0.2, 0.3, 0.4, 0.5],
            [5.0, -1.0, 2.0, 0.0, 3.0],
            [-2.0, -2.0, -2.0, -2.0, -2.0],
        ] {
            let a = model.infer(&features).unwrap();
            let b = loaded.infer(&features).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
        assert_eq!(model.layer_kinds(), loaded.layer_kinds());
        assert_eq!(model.input_dim(), loaded.input_dim());
        assert_eq!(model.output_dim(), loaded.output_dim());
    }

    #[test]
    fn cross_precision_deploy_f64_to_f32() {
        // The paper's flow: train in user space (f64), deploy in the kernel
        // at a smaller precision.
        let mut model = sample_model();
        let bytes = encode(&model).unwrap();
        let mut deployed = decode::<f32>(&bytes).unwrap();
        let features = [1.0, 0.5, -0.5, 2.0, 0.0];
        let a = model.infer(&features).unwrap();
        let b = deployed.infer(&features).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cross_precision_deploy_f64_to_fixed() {
        let mut model = sample_model();
        let bytes = encode(&model).unwrap();
        let mut deployed = decode::<Fix32>(&bytes).unwrap();
        let features = [1.0, 0.5, -0.5, 2.0, 0.0];
        // Classification decisions should survive quantization on a
        // comfortable margin input.
        let a = model.predict(&features).unwrap();
        let b = deployed.predict(&features).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let model = sample_model();
        let mut bytes = encode(&model).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            decode::<f64>(&bytes),
            Err(KmlError::BadModelFile(_))
        ));
    }

    #[test]
    fn flipped_parameter_byte_fails_checksum() {
        let model = sample_model();
        let mut bytes = encode(&model).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = decode::<f64>(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("checksum") || err.to_string().contains("bad"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_file_rejected() {
        let model = sample_model();
        let bytes = encode(&model).unwrap();
        for cut in [0, 4, 8, 20, bytes.len() - 1] {
            assert!(
                decode::<f64>(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let model = sample_model();
        let mut bytes = encode(&model).unwrap();
        bytes.push(0);
        assert!(decode::<f64>(&bytes).is_err());
    }

    #[test]
    fn unsupported_version_rejected() {
        let model = sample_model();
        let mut bytes = encode(&model).unwrap();
        bytes[8] = 9; // version field
        assert!(decode::<f64>(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let model = sample_model();
        let mut path = std::env::temp_dir();
        path.push(format!("kml-modelfile-{}.kml", std::process::id()));
        save(&model, &path).unwrap();
        let loaded = load::<f64>(&path).unwrap();
        assert_eq!(loaded.layer_kinds(), model.layer_kinds());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn model_without_normalizer_round_trips() {
        let model = ModelBuilder::new(3).linear(2).build::<f64>().unwrap();
        let bytes = encode(&model).unwrap();
        let loaded = decode::<f64>(&bytes).unwrap();
        assert!(loaded.normalizer().is_none());
    }
}
