//! Runtime-dispatched explicit-SIMD kernel backends.
//!
//! The scalar blocked kernels in [`crate::matrix`] define the arithmetic
//! contract: every GEMM output element is a single ascending-`k` chain of
//! `add(mul(..))` steps (never an FMA contraction), `Matrix::dot` is exactly
//! four stride-4 accumulator chains reduced in a fixed order, and the
//! activation lanes reproduce [`crate::math::sigmoid`] bit-for-bit per lane.
//! Any vectorization that keeps those chains intact — vectorizing across
//! *output columns* while walking `k` in ascending order with separate
//! multiply and add instructions — produces bit-identical results at any
//! lane width, because each output element still sees the exact same
//! sequence of IEEE operations. That is the invariant every kernel in this
//! module maintains, and `tests/kernel_parity.rs` enforces it against the
//! scalar reference for every arm the host CPU can run.
//!
//! Backends:
//! - **scalar** — the existing blocked kernels; always available, and the
//!   arithmetic ground truth. Forced with `KML_FORCE_SCALAR=1`.
//! - **avx2** (x86_64, AVX2+FMA) — 8×f32 / 4×f64 lanes. FMA is used *only*
//!   inside the Markstein constant-divisor division emulation of the
//!   sigmoid kernel, which returns bits identical to a hardware `vdivpd`
//!   (see [`x86`] module docs), never to contract a mul+add pair.
//! - **avx512** (x86_64, AVX-512F) — 16×f32 / 8×f64 lanes, same contract.
//! - **neon** (aarch64) — 4×f32 / 2×f64 lanes, same contract.
//!
//! Selection happens once per process (relaxed `OnceLock`), so the hot path
//! pays one predictable load+branch. `Fix32` never dispatches: its widening
//! integer arithmetic stays on the scalar path.
//!
//! The int8 (Q8) fleet-serving engine in [`crate::quant`] is *not* part of
//! this bit-exact family: it is a bounded-error path gated by decision
//! agreement, documented separately (DESIGN §10).

#[cfg(target_arch = "aarch64")]
mod neon;
pub(crate) mod q8;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// The kernel backend selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar blocked kernels (the arithmetic reference).
    Scalar,
    /// x86_64 AVX2 + FMA.
    Avx2,
    /// x86_64 AVX-512F.
    Avx512,
    /// aarch64 NEON.
    Neon,
}

impl KernelBackend {
    /// Short name for logs, `repro --json` schema lines, and benches.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Neon => "neon",
        }
    }

    /// Stable small integer for telemetry gauges
    /// (0 = scalar, 1 = avx2, 2 = avx512, 3 = neon).
    pub fn gauge_value(self) -> u64 {
        match self {
            KernelBackend::Scalar => 0,
            KernelBackend::Avx2 => 1,
            KernelBackend::Avx512 => 2,
            KernelBackend::Neon => 3,
        }
    }

    fn is_simd(self) -> bool {
        self != KernelBackend::Scalar
    }
}

static BACKEND: OnceLock<KernelBackend> = OnceLock::new();

/// The backend every f32/f64 kernel dispatches to, detected once per
/// process: `KML_FORCE_SCALAR=1` (or `true`) pins the scalar reference;
/// otherwise the widest supported instruction set wins.
pub fn kernel_backend() -> KernelBackend {
    *BACKEND.get_or_init(detect)
}

/// [`KernelBackend::name`] of the selected backend.
pub fn backend_name() -> &'static str {
    kernel_backend().name()
}

/// Whether the bounded-error int8 serving engine ([`crate::quant`]) runs
/// its vector fast path on the dispatched backend. `false` on scalar
/// dispatch (including `KML_FORCE_SCALAR=1`) and on NEON hosts — those
/// serve Q8 through the scalar reference engine instead.
pub fn q8_vector_active() -> bool {
    q8::active()
}

fn detect() -> KernelBackend {
    if std::env::var("KML_FORCE_SCALAR")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
    {
        return KernelBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx512f") {
            return KernelBackend::Avx512;
        }
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return KernelBackend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return KernelBackend::Neon;
        }
    }
    KernelBackend::Scalar
}

// ---------------------------------------------------------------------------
// Dispatch entry points (crate-internal; called from the `Scalar` hooks).
// Each returns `false` when the scalar path should run instead.
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($f32_512:path, $f32_256:path, $f32_neon:path, $args:tt) => {{
        match kernel_backend() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the backend was selected by runtime feature detection.
            KernelBackend::Avx512 => unsafe {
                $f32_512 $args;
                true
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            KernelBackend::Avx2 => unsafe {
                $f32_256 $args;
                true
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            KernelBackend::Neon => unsafe {
                $f32_neon $args;
                true
            },
            _ => false,
        }
    }};
}

pub(crate) fn matmul_f32(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
) -> bool {
    dispatch!(
        x86::matmul_f32_avx512,
        x86::matmul_f32_avx2,
        neon::matmul_f32,
        (a, b, c, m, kd, n)
    )
}

pub(crate) fn matmul_f64(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
) -> bool {
    dispatch!(
        x86::matmul_f64_avx512,
        x86::matmul_f64_avx2,
        neon::matmul_f64,
        (a, b, c, m, kd, n)
    )
}

pub(crate) fn transpose_matmul_f32(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    mm: usize,
    kd: usize,
    n: usize,
    cont: bool,
) -> bool {
    dispatch!(
        x86::transpose_matmul_f32_avx512,
        x86::transpose_matmul_f32_avx2,
        neon::transpose_matmul_f32,
        (a, b, c, mm, kd, n, cont)
    )
}

pub(crate) fn transpose_matmul_f64(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    mm: usize,
    kd: usize,
    n: usize,
    cont: bool,
) -> bool {
    dispatch!(
        x86::transpose_matmul_f64_avx512,
        x86::transpose_matmul_f64_avx2,
        neon::transpose_matmul_f64,
        (a, b, c, mm, kd, n, cont)
    )
}

pub(crate) fn matmul_transpose_f32(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    kd: usize,
) -> bool {
    if !kernel_backend().is_simd() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: every SIMD backend on x86_64 implies AVX2 (AVX-512 machines
    // report AVX2 too); the dot kernels only use AVX/AVX2 encodings.
    unsafe {
        x86::matmul_transpose_f32(a, b, c, m, n, kd);
        return true;
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: backend Neon was runtime-detected.
    unsafe {
        neon::matmul_transpose_f32(a, b, c, m, n, kd);
        return true;
    }
    #[allow(unreachable_code)]
    false
}

pub(crate) fn matmul_transpose_f64(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    kd: usize,
) -> bool {
    if !kernel_backend().is_simd() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: see `matmul_transpose_f32`.
    unsafe {
        x86::matmul_transpose_f64(a, b, c, m, n, kd);
        return true;
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: backend Neon was runtime-detected.
    unsafe {
        neon::matmul_transpose_f64(a, b, c, m, n, kd);
        return true;
    }
    #[allow(unreachable_code)]
    false
}

pub(crate) fn sigmoid_map_f32(input: &[f32], out: &mut [f32]) -> bool {
    dispatch!(
        x86::sigmoid_slice_f32_avx512,
        x86::sigmoid_slice_f32_avx2,
        neon::sigmoid_slice_f32,
        (input, out)
    )
}

pub(crate) fn sigmoid_map_f64(input: &[f64], out: &mut [f64]) -> bool {
    dispatch!(
        x86::sigmoid_slice_f64_avx512,
        x86::sigmoid_slice_f64_avx2,
        neon::sigmoid_slice_f64,
        (input, out)
    )
}

// ---------------------------------------------------------------------------
// Per-arm entry points for the parity suite. Each runs one *specific* ISA
// arm regardless of the dispatched backend, returning `false` when the host
// CPU lacks the feature so tests can skip that arm. Not public API.
// ---------------------------------------------------------------------------
#[doc(hidden)]
pub mod testing {
    /// Which per-ISA arms the parity suite can exercise on this host.
    pub fn available_arms() -> Vec<&'static str> {
        let mut arms = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                arms.push("avx2");
            }
            if std::is_x86_feature_detected!("avx512f") {
                arms.push("avx512");
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                arms.push("neon");
            }
        }
        arms
    }

    macro_rules! arm_fn {
        ($name:ident, $feat:expr, $inner:path,
         ($($arg:ident: $ty:ty),*)) => {
            pub fn $name($($arg: $ty),*) -> bool {
                if !$feat {
                    return false;
                }
                // SAFETY: guarded by the runtime feature check above.
                unsafe { $inner($($arg),*) };
                true
            }
        };
    }

    #[cfg(target_arch = "x86_64")]
    mod x86_arms {
        use super::super::x86;
        fn has_avx2() -> bool {
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
        }
        fn has_avx512() -> bool {
            std::is_x86_feature_detected!("avx512f")
        }

        arm_fn!(avx2_matmul_f32, has_avx2(), x86::matmul_f32_avx2,
            (a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize));
        arm_fn!(avx2_matmul_f64, has_avx2(), x86::matmul_f64_avx2,
            (a: &[f64], b: &[f64], c: &mut [f64], m: usize, kd: usize, n: usize));
        arm_fn!(avx512_matmul_f32, has_avx512(), x86::matmul_f32_avx512,
            (a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize));
        arm_fn!(avx512_matmul_f64, has_avx512(), x86::matmul_f64_avx512,
            (a: &[f64], b: &[f64], c: &mut [f64], m: usize, kd: usize, n: usize));
        arm_fn!(avx2_transpose_matmul_f32, has_avx2(), x86::transpose_matmul_f32_avx2,
            (a: &[f32], b: &[f32], c: &mut [f32], mm: usize, kd: usize, n: usize, cont: bool));
        arm_fn!(avx2_transpose_matmul_f64, has_avx2(), x86::transpose_matmul_f64_avx2,
            (a: &[f64], b: &[f64], c: &mut [f64], mm: usize, kd: usize, n: usize, cont: bool));
        arm_fn!(avx512_transpose_matmul_f32, has_avx512(), x86::transpose_matmul_f32_avx512,
            (a: &[f32], b: &[f32], c: &mut [f32], mm: usize, kd: usize, n: usize, cont: bool));
        arm_fn!(avx512_transpose_matmul_f64, has_avx512(), x86::transpose_matmul_f64_avx512,
            (a: &[f64], b: &[f64], c: &mut [f64], mm: usize, kd: usize, n: usize, cont: bool));
        arm_fn!(simd_matmul_transpose_f32, has_avx2(), x86::matmul_transpose_f32,
            (a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, kd: usize));
        arm_fn!(simd_matmul_transpose_f64, has_avx2(), x86::matmul_transpose_f64,
            (a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, kd: usize));
        arm_fn!(avx2_sigmoid_f32, has_avx2(), x86::sigmoid_slice_f32_avx2,
            (input: &[f32], out: &mut [f32]));
        arm_fn!(avx2_sigmoid_f64, has_avx2(), x86::sigmoid_slice_f64_avx2,
            (input: &[f64], out: &mut [f64]));
        arm_fn!(avx512_sigmoid_f32, has_avx512(), x86::sigmoid_slice_f32_avx512,
            (input: &[f32], out: &mut [f32]));
        arm_fn!(avx512_sigmoid_f64, has_avx512(), x86::sigmoid_slice_f64_avx512,
            (input: &[f64], out: &mut [f64]));
    }
    #[cfg(target_arch = "x86_64")]
    pub use x86_arms::*;

    #[cfg(target_arch = "aarch64")]
    mod neon_arms {
        use super::super::neon;
        fn has_neon() -> bool {
            std::arch::is_aarch64_feature_detected!("neon")
        }

        arm_fn!(neon_matmul_f32, has_neon(), neon::matmul_f32,
            (a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize));
        arm_fn!(neon_matmul_f64, has_neon(), neon::matmul_f64,
            (a: &[f64], b: &[f64], c: &mut [f64], m: usize, kd: usize, n: usize));
        arm_fn!(neon_transpose_matmul_f32, has_neon(), neon::transpose_matmul_f32,
            (a: &[f32], b: &[f32], c: &mut [f32], mm: usize, kd: usize, n: usize, cont: bool));
        arm_fn!(neon_transpose_matmul_f64, has_neon(), neon::transpose_matmul_f64,
            (a: &[f64], b: &[f64], c: &mut [f64], mm: usize, kd: usize, n: usize, cont: bool));
        arm_fn!(simd_matmul_transpose_f32, has_neon(), neon::matmul_transpose_f32,
            (a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, kd: usize));
        arm_fn!(simd_matmul_transpose_f64, has_neon(), neon::matmul_transpose_f64,
            (a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, kd: usize));
        arm_fn!(neon_sigmoid_f32, has_neon(), neon::sigmoid_slice_f32,
            (input: &[f32], out: &mut [f32]));
        arm_fn!(neon_sigmoid_f64, has_neon(), neon::sigmoid_slice_f64,
            (input: &[f64], out: &mut [f64]));
    }
    #[cfg(target_arch = "aarch64")]
    pub use neon_arms::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_stable_and_named() {
        let b = kernel_backend();
        assert_eq!(b, kernel_backend(), "dispatch must be one-time");
        assert!(["scalar", "avx2", "avx512", "neon"].contains(&b.name()));
        assert_eq!(backend_name(), b.name());
    }

    #[test]
    fn gauge_values_are_distinct() {
        let all = [
            KernelBackend::Scalar,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Neon,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.gauge_value(), b.gauge_value());
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
