//! x86_64 kernel arms: AVX2(+FMA) and AVX-512F.
//!
//! Every GEMM arm vectorizes across *output columns* (the `j`/`n` axis) and
//! walks the shared dimension `k` in ascending order with separate
//! `vmulp*`/`vaddp*` instructions, so each output element sees exactly the
//! scalar kernel's `add(mul(..))` chain — bit-identical at any lane width.
//! `matmul_transpose` instead mirrors `Matrix::dot`'s four stride-4
//! accumulator chains with one 4-lane vector (f64: ymm, f32: xmm) and the
//! scalar reduction order.
//!
//! The sigmoid arms evaluate `crate::math::sigmoid`'s exact operation
//! sequence lane-parallel. The seven constant-divisor divisions
//! (`x/LN2`, `r/3 … r/13`) use Markstein's two-step emulation — with a
//! correctly-rounded reciprocal `y = RN(1/c)`:
//!
//! ```text
//! q0 = RN(a·y);  rr = RN(a − c·q0)  (FMA, residual is exact);
//! q1 = RN(q0 + rr·y)
//! ```
//!
//! which returns bits identical to hardware `vdivpd` for the normal-range
//! inputs the easy path admits (validated exhaustively against `vdivpd`
//! over millions of values at both lane widths before landing). The final
//! `num/(1+e)` stays a real division. Blocks where any lane has
//! `|x| ≥ 700`, or is NaN, fall back to per-lane `crate::math::sigmoid`
//! (per-lane bits are identical on either path; the guard only picks the
//! faster one).
//!
//! AVX-512 arms deliberately require only `avx512f`: bitwise ops on floats
//! go through `_mm512_or_si512`/`_mm512_and_si512` with casts because the
//! `_pd` forms are AVX-512DQ.

#![allow(clippy::missing_safety_doc)]

use std::arch::x86_64::*;

const LN2: f64 = std::f64::consts::LN_2;

// Sliding masks for AVX2 ragged edges: loading at offset `lanes - rem`
// yields `rem` leading all-ones lanes. (AVX-512 uses mask registers.)
static MASK_E32: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];
static MASK_E64: [i64; 8] = [-1, -1, -1, -1, 0, 0, 0, 0];

// ---------------------------------------------------------------------------
// Masked load/store helpers (edge tiles with `rem ∈ 1..lanes` live columns).
// Inactive lanes load as zero and are never stored; vmaskmov / maskz loads
// do not fault on the masked-out tail.
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mload_f32_avx2(p: *const f32, rem: usize) -> __m256 {
    let mask = _mm256_loadu_si256(MASK_E32.as_ptr().add(8 - rem) as *const __m256i);
    _mm256_maskload_ps(p, mask)
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mstore_f32_avx2(p: *mut f32, rem: usize, v: __m256) {
    let mask = _mm256_loadu_si256(MASK_E32.as_ptr().add(8 - rem) as *const __m256i);
    _mm256_maskstore_ps(p, mask, v);
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mload_f64_avx2(p: *const f64, rem: usize) -> __m256d {
    let mask = _mm256_loadu_si256(MASK_E64.as_ptr().add(4 - rem) as *const __m256i);
    _mm256_maskload_pd(p, mask)
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mstore_f64_avx2(p: *mut f64, rem: usize, v: __m256d) {
    let mask = _mm256_loadu_si256(MASK_E64.as_ptr().add(4 - rem) as *const __m256i);
    _mm256_maskstore_pd(p, mask, v);
}

#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn mload_f32_avx512(p: *const f32, rem: usize) -> __m512 {
    _mm512_maskz_loadu_ps(((1u32 << rem) - 1) as __mmask16, p)
}

#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn mstore_f32_avx512(p: *mut f32, rem: usize, v: __m512) {
    _mm512_mask_storeu_ps(p, ((1u32 << rem) - 1) as __mmask16, v);
}

#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn mload_f64_avx512(p: *const f64, rem: usize) -> __m512d {
    _mm512_maskz_loadu_pd(((1u32 << rem) - 1) as __mmask8, p)
}

#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn mstore_f64_avx512(p: *mut f64, rem: usize, v: __m512d) {
    _mm512_mask_storeu_pd(p, ((1u32 << rem) - 1) as __mmask8, v);
}

// ---------------------------------------------------------------------------
// GEMM arms, stamped per ISA × element type.
//
// `matmul`:           C[m×n] = A[m×kd]·B[kd×n]    (chains start at zero)
// `transpose_matmul`: C[mm×n] = Aᵀ·B with A kd×mm (cont: chains continue
//                     from the existing C, the `_acc` variant's contract)
//
// Row blocks of 4 amortize each B-row vector load across four broadcast
// multiplies; the j loop runs 2-wide tiles, then 1-wide, then one masked
// edge tile. All of it lives inside a single `#[target_feature]` function
// so nothing crosses a non-inlinable feature boundary.
// ---------------------------------------------------------------------------

macro_rules! gemm_arm {
    (
        feat: $feat:literal, ty: $ty:ty, lanes: $L:expr,
        loadu: $loadu:ident, storeu: $storeu:ident, set1: $set1:ident,
        setzero: $setzero:ident, add: $add:ident, mul: $mul:ident,
        mload: $mload:ident, mstore: $mstore:ident,
        matmul: $matmul:ident, rows: $rows:ident,
        tmm: $tmm:ident, trows: $trows:ident,
    ) => {
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn $rows<const R: usize>(
            a: *const $ty,
            b: *const $ty,
            c: *mut $ty,
            i: usize,
            kd: usize,
            n: usize,
        ) {
            const L: usize = $L;
            let mut j = 0usize;
            while j + 2 * L <= n {
                let z = $setzero();
                let mut acc = [[z; 2]; R];
                for p in 0..kd {
                    let b0 = $loadu(b.add(p * n + j));
                    let b1 = $loadu(b.add(p * n + j + L));
                    for r in 0..R {
                        let av = $set1(*a.add((i + r) * kd + p));
                        acc[r][0] = $add(acc[r][0], $mul(av, b0));
                        acc[r][1] = $add(acc[r][1], $mul(av, b1));
                    }
                }
                for r in 0..R {
                    $storeu(c.add((i + r) * n + j), acc[r][0]);
                    $storeu(c.add((i + r) * n + j + L), acc[r][1]);
                }
                j += 2 * L;
            }
            while j + L <= n {
                let mut acc = [$setzero(); R];
                for p in 0..kd {
                    let b0 = $loadu(b.add(p * n + j));
                    for r in 0..R {
                        let av = $set1(*a.add((i + r) * kd + p));
                        acc[r] = $add(acc[r], $mul(av, b0));
                    }
                }
                for r in 0..R {
                    $storeu(c.add((i + r) * n + j), acc[r]);
                }
                j += L;
            }
            if j < n {
                let rem = n - j;
                let mut acc = [$setzero(); R];
                for p in 0..kd {
                    let b0 = $mload(b.add(p * n + j), rem);
                    for r in 0..R {
                        let av = $set1(*a.add((i + r) * kd + p));
                        acc[r] = $add(acc[r], $mul(av, b0));
                    }
                }
                for r in 0..R {
                    $mstore(c.add((i + r) * n + j), rem, acc[r]);
                }
            }
        }

        #[target_feature(enable = $feat)]
        pub(super) unsafe fn $matmul(
            a: &[$ty],
            b: &[$ty],
            c: &mut [$ty],
            m: usize,
            kd: usize,
            n: usize,
        ) {
            debug_assert!(a.len() >= m * kd && b.len() >= kd * n && c.len() >= m * n);
            let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
            let mut i = 0usize;
            while i + 4 <= m {
                $rows::<4>(ap, bp, cp, i, kd, n);
                i += 4;
            }
            while i < m {
                $rows::<1>(ap, bp, cp, i, kd, n);
                i += 1;
            }
        }

        #[inline]
        #[allow(clippy::too_many_arguments)]
        #[target_feature(enable = $feat)]
        unsafe fn $trows<const R: usize>(
            a: *const $ty,
            b: *const $ty,
            c: *mut $ty,
            i: usize,
            mm: usize,
            kd: usize,
            n: usize,
            cont: bool,
        ) {
            const L: usize = $L;
            let mut j = 0usize;
            while j + 2 * L <= n {
                let z = $setzero();
                let mut acc = [[z; 2]; R];
                if cont {
                    for r in 0..R {
                        acc[r][0] = $loadu(c.add((i + r) * n + j));
                        acc[r][1] = $loadu(c.add((i + r) * n + j + L));
                    }
                }
                for p in 0..kd {
                    let b0 = $loadu(b.add(p * n + j));
                    let b1 = $loadu(b.add(p * n + j + L));
                    for r in 0..R {
                        let av = $set1(*a.add(p * mm + i + r));
                        acc[r][0] = $add(acc[r][0], $mul(av, b0));
                        acc[r][1] = $add(acc[r][1], $mul(av, b1));
                    }
                }
                for r in 0..R {
                    $storeu(c.add((i + r) * n + j), acc[r][0]);
                    $storeu(c.add((i + r) * n + j + L), acc[r][1]);
                }
                j += 2 * L;
            }
            while j + L <= n {
                let mut acc = [$setzero(); R];
                if cont {
                    for r in 0..R {
                        acc[r] = $loadu(c.add((i + r) * n + j));
                    }
                }
                for p in 0..kd {
                    let b0 = $loadu(b.add(p * n + j));
                    for r in 0..R {
                        let av = $set1(*a.add(p * mm + i + r));
                        acc[r] = $add(acc[r], $mul(av, b0));
                    }
                }
                for r in 0..R {
                    $storeu(c.add((i + r) * n + j), acc[r]);
                }
                j += L;
            }
            if j < n {
                let rem = n - j;
                let mut acc = [$setzero(); R];
                if cont {
                    for r in 0..R {
                        acc[r] = $mload(c.add((i + r) * n + j), rem);
                    }
                }
                for p in 0..kd {
                    let b0 = $mload(b.add(p * n + j), rem);
                    for r in 0..R {
                        let av = $set1(*a.add(p * mm + i + r));
                        acc[r] = $add(acc[r], $mul(av, b0));
                    }
                }
                for r in 0..R {
                    $mstore(c.add((i + r) * n + j), rem, acc[r]);
                }
            }
        }

        #[target_feature(enable = $feat)]
        pub(super) unsafe fn $tmm(
            a: &[$ty],
            b: &[$ty],
            c: &mut [$ty],
            mm: usize,
            kd: usize,
            n: usize,
            cont: bool,
        ) {
            debug_assert!(a.len() >= kd * mm && b.len() >= kd * n && c.len() >= mm * n);
            let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
            let mut i = 0usize;
            while i + 4 <= mm {
                $trows::<4>(ap, bp, cp, i, mm, kd, n, cont);
                i += 4;
            }
            while i < mm {
                $trows::<1>(ap, bp, cp, i, mm, kd, n, cont);
                i += 1;
            }
        }
    };
}

gemm_arm! {
    feat: "avx2", ty: f32, lanes: 8,
    loadu: _mm256_loadu_ps, storeu: _mm256_storeu_ps, set1: _mm256_set1_ps,
    setzero: _mm256_setzero_ps, add: _mm256_add_ps, mul: _mm256_mul_ps,
    mload: mload_f32_avx2, mstore: mstore_f32_avx2,
    matmul: matmul_f32_avx2, rows: matmul_rows_f32_avx2,
    tmm: transpose_matmul_f32_avx2, trows: tmm_rows_f32_avx2,
}

gemm_arm! {
    feat: "avx2", ty: f64, lanes: 4,
    loadu: _mm256_loadu_pd, storeu: _mm256_storeu_pd, set1: _mm256_set1_pd,
    setzero: _mm256_setzero_pd, add: _mm256_add_pd, mul: _mm256_mul_pd,
    mload: mload_f64_avx2, mstore: mstore_f64_avx2,
    matmul: matmul_f64_avx2, rows: matmul_rows_f64_avx2,
    tmm: transpose_matmul_f64_avx2, trows: tmm_rows_f64_avx2,
}

gemm_arm! {
    feat: "avx512f", ty: f32, lanes: 16,
    loadu: _mm512_loadu_ps, storeu: _mm512_storeu_ps, set1: _mm512_set1_ps,
    setzero: _mm512_setzero_ps, add: _mm512_add_ps, mul: _mm512_mul_ps,
    mload: mload_f32_avx512, mstore: mstore_f32_avx512,
    matmul: matmul_f32_avx512, rows: matmul_rows_f32_avx512,
    tmm: transpose_matmul_f32_avx512, trows: tmm_rows_f32_avx512,
}

gemm_arm! {
    feat: "avx512f", ty: f64, lanes: 8,
    loadu: _mm512_loadu_pd, storeu: _mm512_storeu_pd, set1: _mm512_set1_pd,
    setzero: _mm512_setzero_pd, add: _mm512_add_pd, mul: _mm512_mul_pd,
    mload: mload_f64_avx512, mstore: mstore_f64_avx512,
    matmul: matmul_f64_avx512, rows: matmul_rows_f64_avx512,
    tmm: transpose_matmul_f64_avx512, trows: tmm_rows_f64_avx512,
}

// ---------------------------------------------------------------------------
// matmul_transpose: rows of A dotted with rows of B.
//
// `Matrix::dot` is four stride-4 accumulator chains (lane l takes indices
// ≡ l mod 4) reduced as ((l0+l1)+(l2+l3))+tail with a sequential scalar
// tail — exactly one 4-lane vector's worth, so a ymm (f64) / xmm (f32)
// accumulator with a scalar lane reduction reproduces it bit-for-bit.
// Wider vectors would change the chain assignment, so both the AVX2 and
// AVX-512 backends share these AVX-encoded kernels.
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn dot4_f64(a: *const f64, b: *const f64, kd: usize) -> f64 {
    let kd4 = kd & !3;
    let mut acc = _mm256_setzero_pd();
    let mut p = 0usize;
    while p < kd4 {
        acc = _mm256_add_pd(
            acc,
            _mm256_mul_pd(_mm256_loadu_pd(a.add(p)), _mm256_loadu_pd(b.add(p))),
        );
        p += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    for idx in kd4..kd {
        tail += *a.add(idx) * *b.add(idx);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn dot4_f32(a: *const f32, b: *const f32, kd: usize) -> f32 {
    let kd4 = kd & !3;
    let mut acc = _mm_setzero_ps();
    let mut p = 0usize;
    while p < kd4 {
        acc = _mm_add_ps(
            acc,
            _mm_mul_ps(_mm_loadu_ps(a.add(p)), _mm_loadu_ps(b.add(p))),
        );
        p += 4;
    }
    let mut lanes = [0.0f32; 4];
    _mm_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f32;
    for idx in kd4..kd {
        tail += *a.add(idx) * *b.add(idx);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

macro_rules! matmul_transpose_arm {
    ($name:ident, $ty:ty, $dot:ident) => {
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn $name(
            a: &[$ty],
            b: &[$ty],
            c: &mut [$ty],
            m: usize,
            n: usize,
            kd: usize,
        ) {
            debug_assert!(a.len() >= m * kd && b.len() >= n * kd && c.len() >= m * n);
            let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
            for i in 0..m {
                let arow = ap.add(i * kd);
                for j in 0..n {
                    *cp.add(i * n + j) = $dot(arow, bp.add(j * kd), kd);
                }
            }
        }
    };
}

matmul_transpose_arm!(matmul_transpose_f32, f32, dot4_f32);
matmul_transpose_arm!(matmul_transpose_f64, f64, dot4_f64);

// ---------------------------------------------------------------------------
// Sigmoid arms. See module docs for the Markstein division emulation.
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn div_const4(a: __m256d, c: f64, y: f64) -> __m256d {
    let yv = _mm256_set1_pd(y);
    let q0 = _mm256_mul_pd(a, yv);
    let rr = _mm256_fnmadd_pd(_mm256_set1_pd(c), q0, a);
    _mm256_fmadd_pd(rr, yv, q0)
}

#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn div_const8(a: __m512d, c: f64, y: f64) -> __m512d {
    let yv = _mm512_set1_pd(y);
    let q0 = _mm512_mul_pd(a, yv);
    let rr = _mm512_fnmadd_pd(_mm512_set1_pd(c), q0, a);
    _mm512_fmadd_pd(rr, yv, q0)
}

/// 4-lane `crate::math::sigmoid`, easy path only (all lanes `|x| < 700`).
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn sigmoid4_avx2(x: __m256d) -> __m256d {
    let neg = _mm256_or_pd(x, _mm256_set1_pd(-0.0)); // -|x|
    let q = div_const4(neg, LN2, 1.0 / LN2);
    // neg is -|x|: only -0.0 compares >= 0, matching scalar's x >= 0 branch.
    let ge0 = _mm256_cmp_pd(neg, _mm256_setzero_pd(), _CMP_GE_OQ);
    let half = _mm256_blendv_pd(_mm256_set1_pd(-0.5), _mm256_set1_pd(0.5), ge0);
    let k32 = _mm256_cvttpd_epi32(_mm256_add_pd(q, half)); // trunc == `as i64`
    let kf = _mm256_cvtepi32_pd(k32);
    // r = neg - kf·LN2 as separate mul+add (never fused).
    let r = _mm256_add_pd(neg, _mm256_mul_pd(kf, _mm256_set1_pd(-LN2)));
    macro_rules! dv {
        ($a:expr, $c:expr) => {
            div_const4($a, $c, 1.0 / $c)
        };
    }
    let r3 = dv!(r, 3.0);
    let r5 = dv!(r, 5.0);
    let r7 = dv!(r, 7.0);
    let r9 = dv!(r, 9.0);
    let r11 = dv!(r, 11.0);
    let r13 = dv!(r, 13.0);
    let one = _mm256_set1_pd(1.0);
    let mut term = r;
    let mut sum = _mm256_add_pd(one, term);
    macro_rules! step {
        ($f:expr) => {
            term = _mm256_mul_pd(term, $f);
            sum = _mm256_add_pd(sum, term);
        };
    }
    let half_c = _mm256_set1_pd(0.5);
    let quarter = _mm256_set1_pd(0.25);
    step!(_mm256_mul_pd(r, half_c));
    step!(r3);
    step!(_mm256_mul_pd(r, quarter));
    step!(r5);
    step!(_mm256_mul_pd(r3, half_c));
    step!(r7);
    step!(_mm256_mul_pd(r, _mm256_set1_pd(0.125)));
    step!(r9);
    step!(_mm256_mul_pd(r5, half_c));
    step!(r11);
    step!(_mm256_mul_pd(r3, quarter));
    step!(r13);
    // e = sum·2^k by exponent-field add (sum is a positive normal and k is
    // in range on the easy path — same argument as scalar scale_by_pow2).
    let k64 = _mm256_cvtepi32_epi64(k32);
    let bits = _mm256_castpd_si256(sum);
    let e = _mm256_castsi256_pd(_mm256_add_epi64(bits, _mm256_slli_epi64(k64, 52)));
    let xge0 = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ);
    let num = _mm256_blendv_pd(e, one, xge0);
    _mm256_div_pd(num, _mm256_add_pd(one, e))
}

/// 8-lane `crate::math::sigmoid`, easy path only (all lanes `|x| < 700`).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn sigmoid8_avx512(x: __m512d) -> __m512d {
    let sign = _mm512_set1_epi64(i64::MIN);
    let neg = _mm512_castsi512_pd(_mm512_or_si512(_mm512_castpd_si512(x), sign)); // -|x|
    let q = div_const8(neg, LN2, 1.0 / LN2);
    let ge0 = _mm512_cmp_pd_mask(neg, _mm512_setzero_pd(), _CMP_GE_OQ);
    let half = _mm512_mask_blend_pd(ge0, _mm512_set1_pd(-0.5), _mm512_set1_pd(0.5));
    let k32 = _mm512_cvttpd_epi32(_mm512_add_pd(q, half));
    let kf = _mm512_cvtepi32_pd(k32);
    let r = _mm512_add_pd(neg, _mm512_mul_pd(kf, _mm512_set1_pd(-LN2)));
    macro_rules! dv {
        ($a:expr, $c:expr) => {
            div_const8($a, $c, 1.0 / $c)
        };
    }
    let r3 = dv!(r, 3.0);
    let r5 = dv!(r, 5.0);
    let r7 = dv!(r, 7.0);
    let r9 = dv!(r, 9.0);
    let r11 = dv!(r, 11.0);
    let r13 = dv!(r, 13.0);
    let one = _mm512_set1_pd(1.0);
    let mut term = r;
    let mut sum = _mm512_add_pd(one, term);
    macro_rules! step {
        ($f:expr) => {
            term = _mm512_mul_pd(term, $f);
            sum = _mm512_add_pd(sum, term);
        };
    }
    let half_c = _mm512_set1_pd(0.5);
    let quarter = _mm512_set1_pd(0.25);
    step!(_mm512_mul_pd(r, half_c));
    step!(r3);
    step!(_mm512_mul_pd(r, quarter));
    step!(r5);
    step!(_mm512_mul_pd(r3, half_c));
    step!(r7);
    step!(_mm512_mul_pd(r, _mm512_set1_pd(0.125)));
    step!(r9);
    step!(_mm512_mul_pd(r5, half_c));
    step!(r11);
    step!(_mm512_mul_pd(r3, quarter));
    step!(r13);
    let k64 = _mm512_cvtepi32_epi64(k32);
    let bits = _mm512_castpd_si512(sum);
    let e = _mm512_castsi512_pd(_mm512_add_epi64(bits, _mm512_slli_epi64(k64, 52)));
    let xge0 = _mm512_cmp_pd_mask(x, _mm512_setzero_pd(), _CMP_GE_OQ);
    let num = _mm512_mask_blend_pd(xge0, e, one);
    _mm512_div_pd(num, _mm512_add_pd(one, e))
}

/// All four lanes strictly inside the easy band (NaN lanes fail the compare).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn easy4(x: __m256d) -> bool {
    let absx = _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
    let lt = _mm256_cmp_pd(absx, _mm256_set1_pd(700.0), _CMP_LT_OQ);
    _mm256_movemask_pd(lt) == 0xf
}

/// All eight lanes strictly inside the easy band (NaN lanes fail the compare).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn easy8(x: __m512d) -> bool {
    let absmask = _mm512_set1_epi64(i64::MAX);
    let absx = _mm512_castsi512_pd(_mm512_and_si512(_mm512_castpd_si512(x), absmask));
    _mm512_cmp_pd_mask(absx, _mm512_set1_pd(700.0), _CMP_LT_OQ) == 0xff
}

#[target_feature(enable = "avx2,fma")]
pub(super) unsafe fn sigmoid_slice_f64_avx2(input: &[f64], out: &mut [f64]) {
    debug_assert_eq!(input.len(), out.len());
    let n = input.len();
    let (ip, op) = (input.as_ptr(), out.as_mut_ptr());
    let mut i = 0usize;
    while i + 4 <= n {
        let x = _mm256_loadu_pd(ip.add(i));
        if easy4(x) {
            _mm256_storeu_pd(op.add(i), sigmoid4_avx2(x));
        } else {
            for l in 0..4 {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l));
            }
        }
        i += 4;
    }
    if i < n {
        let rem = n - i;
        let mut buf = [0.0f64; 4];
        buf[..rem].copy_from_slice(&input[i..]);
        let x = _mm256_loadu_pd(buf.as_ptr());
        if easy4(x) {
            _mm256_storeu_pd(buf.as_mut_ptr(), sigmoid4_avx2(x));
            out[i..].copy_from_slice(&buf[..rem]);
        } else {
            for l in 0..rem {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l));
            }
        }
    }
}

#[target_feature(enable = "avx512f")]
pub(super) unsafe fn sigmoid_slice_f64_avx512(input: &[f64], out: &mut [f64]) {
    debug_assert_eq!(input.len(), out.len());
    let n = input.len();
    let (ip, op) = (input.as_ptr(), out.as_mut_ptr());
    let mut i = 0usize;
    while i + 8 <= n {
        let x = _mm512_loadu_pd(ip.add(i));
        if easy8(x) {
            _mm512_storeu_pd(op.add(i), sigmoid8_avx512(x));
        } else {
            for l in 0..8 {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l));
            }
        }
        i += 8;
    }
    if i < n {
        let rem = n - i;
        let mut buf = [0.0f64; 8];
        buf[..rem].copy_from_slice(&input[i..]);
        let x = _mm512_loadu_pd(buf.as_ptr());
        if easy8(x) {
            _mm512_storeu_pd(buf.as_mut_ptr(), sigmoid8_avx512(x));
            out[i..].copy_from_slice(&buf[..rem]);
        } else {
            for l in 0..rem {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l));
            }
        }
    }
}

// The f32 activation contract is widen → f64 sigmoid → narrow-by-`as`;
// `vcvtps2pd` is exact and `vcvtpd2ps` rounds to nearest like `as f32`.

#[target_feature(enable = "avx2,fma")]
pub(super) unsafe fn sigmoid_slice_f32_avx2(input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    let n = input.len();
    let (ip, op) = (input.as_ptr(), out.as_mut_ptr());
    let mut i = 0usize;
    while i + 4 <= n {
        let x = _mm256_cvtps_pd(_mm_loadu_ps(ip.add(i)));
        if easy4(x) {
            _mm_storeu_ps(op.add(i), _mm256_cvtpd_ps(sigmoid4_avx2(x)));
        } else {
            for l in 0..4 {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l) as f64) as f32;
            }
        }
        i += 4;
    }
    if i < n {
        let rem = n - i;
        let mut buf = [0.0f32; 4];
        buf[..rem].copy_from_slice(&input[i..]);
        let x = _mm256_cvtps_pd(_mm_loadu_ps(buf.as_ptr()));
        if easy4(x) {
            _mm_storeu_ps(buf.as_mut_ptr(), _mm256_cvtpd_ps(sigmoid4_avx2(x)));
            out[i..].copy_from_slice(&buf[..rem]);
        } else {
            for l in 0..rem {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l) as f64) as f32;
            }
        }
    }
}

#[target_feature(enable = "avx512f")]
pub(super) unsafe fn sigmoid_slice_f32_avx512(input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    let n = input.len();
    let (ip, op) = (input.as_ptr(), out.as_mut_ptr());
    let mut i = 0usize;
    while i + 8 <= n {
        let x = _mm512_cvtps_pd(_mm256_loadu_ps(ip.add(i)));
        if easy8(x) {
            _mm256_storeu_ps(op.add(i), _mm512_cvtpd_ps(sigmoid8_avx512(x)));
        } else {
            for l in 0..8 {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l) as f64) as f32;
            }
        }
        i += 8;
    }
    if i < n {
        let rem = n - i;
        let mut buf = [0.0f32; 8];
        buf[..rem].copy_from_slice(&input[i..]);
        let x = _mm512_cvtps_pd(_mm256_loadu_ps(buf.as_ptr()));
        if easy8(x) {
            _mm256_storeu_ps(buf.as_mut_ptr(), _mm512_cvtpd_ps(sigmoid8_avx512(x)));
            out[i..].copy_from_slice(&buf[..rem]);
        } else {
            for l in 0..rem {
                *op.add(i + l) = crate::math::sigmoid(*ip.add(i + l) as f64) as f32;
            }
        }
    }
}
