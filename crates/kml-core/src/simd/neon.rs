//! aarch64 NEON kernel arms.
//!
//! Same bit-exactness contract as the x86 arms (see [`super::x86`] module
//! docs): vectorize across output columns, walk `k` ascending with separate
//! multiply and add, mirror `Matrix::dot`'s four stride-4 chains exactly.
//! This arm favours being obviously correct over squeezing the last cycle:
//! column tails run the scalar chain directly (no masked loads), and the
//! sigmoid uses real `vdivq_f64` divisions everywhere instead of the
//! Markstein emulation the x86 arms use — hardware division is trivially
//! bit-exact and this keeps the only hand-written aarch64 float path free
//! of correctness cleverness that can't be exhaustively validated in CI
//! until an aarch64 runner exists. The parity suite exercises every kernel
//! here on any NEON host.

#![allow(clippy::missing_safety_doc)]

use std::arch::aarch64::*;

const LN2: f64 = std::f64::consts::LN_2;

// ---------------------------------------------------------------------------
// GEMM arms: C[m×n] = A[m×kd]·B[kd×n] and the Aᵀ·B variant.
// f32 uses 4-lane tiles, f64 2-lane; `rem = n % lanes` columns fall back to
// the scalar ascending-k chain, which is the same arithmetic per element.
// ---------------------------------------------------------------------------

macro_rules! neon_gemm {
    (
        ty: $ty:ty, lanes: $L:expr,
        ld: $ld:ident, st: $st:ident, dup: $dup:ident,
        add: $add:ident, mul: $mul:ident,
        matmul: $matmul:ident, tmm: $tmm:ident,
    ) => {
        #[target_feature(enable = "neon")]
        pub(super) unsafe fn $matmul(
            a: &[$ty],
            b: &[$ty],
            c: &mut [$ty],
            m: usize,
            kd: usize,
            n: usize,
        ) {
            debug_assert!(a.len() >= m * kd && b.len() >= kd * n && c.len() >= m * n);
            const L: usize = $L;
            let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
            for i in 0..m {
                let mut j = 0usize;
                while j + L <= n {
                    let mut acc = $dup(0.0);
                    for p in 0..kd {
                        let av = $dup(*ap.add(i * kd + p));
                        acc = $add(acc, $mul(av, $ld(bp.add(p * n + j))));
                    }
                    $st(cp.add(i * n + j), acc);
                    j += L;
                }
                while j < n {
                    let mut s = 0.0;
                    for p in 0..kd {
                        s += *ap.add(i * kd + p) * *bp.add(p * n + j);
                    }
                    *cp.add(i * n + j) = s;
                    j += 1;
                }
            }
        }

        #[target_feature(enable = "neon")]
        pub(super) unsafe fn $tmm(
            a: &[$ty],
            b: &[$ty],
            c: &mut [$ty],
            mm: usize,
            kd: usize,
            n: usize,
            cont: bool,
        ) {
            debug_assert!(a.len() >= kd * mm && b.len() >= kd * n && c.len() >= mm * n);
            const L: usize = $L;
            let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
            for i in 0..mm {
                let mut j = 0usize;
                while j + L <= n {
                    let mut acc = if cont {
                        $ld(cp.add(i * n + j))
                    } else {
                        $dup(0.0)
                    };
                    for p in 0..kd {
                        let av = $dup(*ap.add(p * mm + i));
                        acc = $add(acc, $mul(av, $ld(bp.add(p * n + j))));
                    }
                    $st(cp.add(i * n + j), acc);
                    j += L;
                }
                while j < n {
                    let mut s = if cont { *cp.add(i * n + j) } else { 0.0 };
                    for p in 0..kd {
                        s += *ap.add(p * mm + i) * *bp.add(p * n + j);
                    }
                    *cp.add(i * n + j) = s;
                    j += 1;
                }
            }
        }
    };
}

neon_gemm! {
    ty: f32, lanes: 4,
    ld: vld1q_f32, st: vst1q_f32, dup: vdupq_n_f32,
    add: vaddq_f32, mul: vmulq_f32,
    matmul: matmul_f32, tmm: transpose_matmul_f32,
}

neon_gemm! {
    ty: f64, lanes: 2,
    ld: vld1q_f64, st: vst1q_f64, dup: vdupq_n_f64,
    add: vaddq_f64, mul: vmulq_f64,
    matmul: matmul_f64, tmm: transpose_matmul_f64,
}

// ---------------------------------------------------------------------------
// matmul_transpose: `Matrix::dot`'s four stride-4 chains. f32 keeps all
// four chains in one float32x4; f64 splits them across two float64x2
// (lanes {0,1} and {2,3}), then both reduce in the scalar order
// ((l0+l1)+(l2+l3))+tail.
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "neon")]
unsafe fn dot4_f32(a: *const f32, b: *const f32, kd: usize) -> f32 {
    let kd4 = kd & !3;
    let mut acc = vdupq_n_f32(0.0);
    let mut p = 0usize;
    while p < kd4 {
        acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(a.add(p)), vld1q_f32(b.add(p))));
        p += 4;
    }
    let mut tail = 0.0f32;
    for idx in kd4..kd {
        tail += *a.add(idx) * *b.add(idx);
    }
    ((vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 1))
        + (vgetq_lane_f32(acc, 2) + vgetq_lane_f32(acc, 3)))
        + tail
}

#[inline]
#[target_feature(enable = "neon")]
unsafe fn dot4_f64(a: *const f64, b: *const f64, kd: usize) -> f64 {
    let kd4 = kd & !3;
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    let mut p = 0usize;
    while p < kd4 {
        acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a.add(p)), vld1q_f64(b.add(p))));
        acc23 = vaddq_f64(
            acc23,
            vmulq_f64(vld1q_f64(a.add(p + 2)), vld1q_f64(b.add(p + 2))),
        );
        p += 4;
    }
    let mut tail = 0.0f64;
    for idx in kd4..kd {
        tail += *a.add(idx) * *b.add(idx);
    }
    ((vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1))
        + (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1)))
        + tail
}

macro_rules! neon_matmul_transpose {
    ($name:ident, $ty:ty, $dot:ident) => {
        #[target_feature(enable = "neon")]
        pub(super) unsafe fn $name(
            a: &[$ty],
            b: &[$ty],
            c: &mut [$ty],
            m: usize,
            n: usize,
            kd: usize,
        ) {
            debug_assert!(a.len() >= m * kd && b.len() >= n * kd && c.len() >= m * n);
            let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
            for i in 0..m {
                let arow = ap.add(i * kd);
                for j in 0..n {
                    *cp.add(i * n + j) = $dot(arow, bp.add(j * kd), kd);
                }
            }
        }
    };
}

neon_matmul_transpose!(matmul_transpose_f32, f32, dot4_f32);
neon_matmul_transpose!(matmul_transpose_f64, f64, dot4_f64);

// ---------------------------------------------------------------------------
// Sigmoid: lane-parallel `crate::math::sigmoid` on the easy band
// (|x| < 700), real divisions throughout, per-lane scalar fallback for
// hard blocks — identical structure to the scalar sigmoid4/sigmoid16 path.
// ---------------------------------------------------------------------------

/// 2-lane `crate::math::sigmoid`, easy path only (both lanes `|x| < 700`).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn sigmoid2(x: float64x2_t) -> float64x2_t {
    let sign = vdupq_n_s64(i64::MIN);
    let neg = vreinterpretq_f64_s64(vorrq_s64(vreinterpretq_s64_f64(x), sign)); // -|x|
    let q = vdivq_f64(neg, vdupq_n_f64(LN2));
    let ge0 = vcgezq_f64(neg);
    let half = vbslq_f64(ge0, vdupq_n_f64(0.5), vdupq_n_f64(-0.5));
    let k = vcvtq_s64_f64(vaddq_f64(q, half)); // FCVTZS truncates like `as i64`
    let kf = vcvtq_f64_s64(k);
    // r = neg - kf·LN2 as separate mul+add (never fused).
    let r = vaddq_f64(neg, vmulq_f64(kf, vdupq_n_f64(-LN2)));
    let r3 = vdivq_f64(r, vdupq_n_f64(3.0));
    let r5 = vdivq_f64(r, vdupq_n_f64(5.0));
    let r7 = vdivq_f64(r, vdupq_n_f64(7.0));
    let r9 = vdivq_f64(r, vdupq_n_f64(9.0));
    let r11 = vdivq_f64(r, vdupq_n_f64(11.0));
    let r13 = vdivq_f64(r, vdupq_n_f64(13.0));
    let one = vdupq_n_f64(1.0);
    let mut term = r;
    let mut sum = vaddq_f64(one, term);
    macro_rules! step {
        ($f:expr) => {
            term = vmulq_f64(term, $f);
            sum = vaddq_f64(sum, term);
        };
    }
    let half_c = vdupq_n_f64(0.5);
    let quarter = vdupq_n_f64(0.25);
    step!(vmulq_f64(r, half_c));
    step!(r3);
    step!(vmulq_f64(r, quarter));
    step!(r5);
    step!(vmulq_f64(r3, half_c));
    step!(r7);
    step!(vmulq_f64(r, vdupq_n_f64(0.125)));
    step!(r9);
    step!(vmulq_f64(r5, half_c));
    step!(r11);
    step!(vmulq_f64(r3, quarter));
    step!(r13);
    // e = sum·2^k by exponent-field add (sum positive normal, k in range).
    let bits = vreinterpretq_s64_f64(sum);
    let e = vreinterpretq_f64_s64(vaddq_s64(bits, vshlq_n_s64::<52>(k)));
    let xge0 = vcgezq_f64(x);
    let num = vbslq_f64(xge0, one, e);
    vdivq_f64(num, vaddq_f64(one, e))
}

/// Both lanes strictly inside the easy band (NaN lanes fail the compare).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn easy2(x: float64x2_t) -> bool {
    let lt = vcltq_f64(vabsq_f64(x), vdupq_n_f64(700.0));
    vgetq_lane_u64(lt, 0) != 0 && vgetq_lane_u64(lt, 1) != 0
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn sigmoid_slice_f64(input: &[f64], out: &mut [f64]) {
    debug_assert_eq!(input.len(), out.len());
    let n = input.len();
    let (ip, op) = (input.as_ptr(), out.as_mut_ptr());
    let mut i = 0usize;
    while i + 2 <= n {
        let x = vld1q_f64(ip.add(i));
        if easy2(x) {
            vst1q_f64(op.add(i), sigmoid2(x));
        } else {
            *op.add(i) = crate::math::sigmoid(*ip.add(i));
            *op.add(i + 1) = crate::math::sigmoid(*ip.add(i + 1));
        }
        i += 2;
    }
    if i < n {
        *op.add(i) = crate::math::sigmoid(*ip.add(i));
    }
}

// f32 contract: widen → f64 sigmoid → narrow by `as f32` (FCVTN rounds to
// nearest, matching the scalar cast).
#[target_feature(enable = "neon")]
pub(super) unsafe fn sigmoid_slice_f32(input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    let n = input.len();
    let (ip, op) = (input.as_ptr(), out.as_mut_ptr());
    let mut i = 0usize;
    while i + 2 <= n {
        let x = vcvt_f64_f32(vld1_f32(ip.add(i)));
        if easy2(x) {
            vst1_f32(op.add(i), vcvt_f32_f64(sigmoid2(x)));
        } else {
            *op.add(i) = crate::math::sigmoid(*ip.add(i) as f64) as f32;
            *op.add(i + 1) = crate::math::sigmoid(*ip.add(i + 1) as f64) as f32;
        }
        i += 2;
    }
    if i < n {
        *op.add(i) = crate::math::sigmoid(*ip.add(i) as f64) as f32;
    }
}
