//! AVX2 fast path for the Q8 serving engine ([`crate::quant::Q8Engine`]).
//!
//! Unlike the f32/f64 kernels in this module's siblings, this makes **no
//! bit-exactness claim** — the Q8 engine's contract is bounded error
//! (≥99.5% decision agreement with the exact f32 model, gated in
//! `kml-fleet`), so the vector path is free to reorder arithmetic and to
//! substitute numerically-equivalent steps. It stays aligned with the
//! scalar engine where it matters: the same round-to-nearest-even
//! activation rounding (`vcvtps2dq` under the default MXCSR mode *is*
//! `round_ties_even`), the same per-row symmetric scales for
//! dynamic-range rows, and a sigmoid that stays inside the same absolute
//! error budget ([`crate::quant::Q8_SIGMOID_MAX_ERR`]) as the scalar
//! engine's piecewise-linear table (see [`sigmoid_scaled`]).
//!
//! The whole layer chain runs inside **one** `#[target_feature]` function
//! — at ~2 GHz a 100 ns inference is ~200 cycles, so per-kernel call
//! boundaries and redundant buffer passes are what kill the budget, not
//! arithmetic. Two engine-specific fusions:
//!
//! - **Fixed-scale sigmoid quantization.** A sigmoid's range is statically
//!   `[0, 1]`, so when the next layer is linear the activation scale is
//!   pinned at `1/127` and the sigmoid evaluates `σ·127` directly,
//!   rounding straight to `i16` — the separate amax scan + quantize pass
//!   disappears. Dynamic amax quantization remains for the input row and
//!   for `Relu` activations (unbounded range).
//! - **Pair broadcasts are plain `i32` loads.** Quantized activations are
//!   `i16`; the `(x₀, x₁)` pair a `vpmaddwd` step needs is exactly the
//!   little-endian `i32` at byte offset `2·p`, so building the broadcast
//!   costs one unaligned load + `vpbroadcastd`.
//!
//! Weight layout (prepared by [`crate::quant::Q8Linear`]): for input pair
//! `p` and 8-output vector `v`, 16 `i16` lanes hold
//! `[w[2p][8v+0], w[2p+1][8v+0], w[2p][8v+1], …]`, zero-padded, so one
//! `madd` accumulates two inputs into eight `i32` outputs with no masking.
//! Per-output scales/biases are zero-padded to the 8-lane boundary
//! (padding lanes compute `0·acc + 0` and stay zero).
//!
//! Non-finite activations do not propagate the way the scalar engine's
//! do (clamps land NaN lanes on a boundary knot) — acceptable under the
//! bounded-error contract; the closed loops that care run the bit-exact
//! f32 path.

use crate::quant::Q8EngineLayer;

/// Whether the Q8 vector path is usable on the dispatched backend (AVX2 or
/// AVX-512 hosts; the kernels themselves only need avx2+fma).
#[inline]
pub(crate) fn active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        matches!(
            crate::simd::kernel_backend(),
            crate::simd::KernelBackend::Avx2 | crate::simd::KernelBackend::Avx512
        )
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Runs the whole quantized layer chain over the engine's scratch buffers.
/// On entry `a[..pad8(input_dim)]` holds the f32 input row, zero-padded;
/// on success the final activations are in `a[..output_dim]`.
///
/// Returns `false` (computing nothing) unless [`active`].
#[allow(unused_variables)]
pub(crate) fn infer_chain(
    layers: &[Q8EngineLayer],
    a: &mut Vec<f32>,
    b: &mut Vec<f32>,
    xq: &mut [i16],
    input_dim: usize,
) -> bool {
    if !active() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `active()` verified avx2+fma are dispatched on this CPU;
        // buffer lengths are the engine's padded invariant (asserted below).
        unsafe { infer_chain_avx2(layers, a, b, xq, input_dim) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline]
fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn infer_chain_avx2(
    layers: &[Q8EngineLayer],
    a: &mut Vec<f32>,
    b: &mut Vec<f32>,
    xq: &mut [i16],
    input_dim: usize,
) {
    // Narrow chains (every layer ≤ 16 wide — all the fleet serving
    // topologies) run fully register-resident: activations live in two
    // ymm registers and quantized codes in one, with no scratch-buffer
    // round-trips between stages. The single row is latency-bound, so the
    // ~6-cycle store-to-load forwarding per stage transition is a real
    // fraction of the budget.
    if layers.iter().all(|l| match l {
        Q8EngineLayer::Linear(q) => q.in_dim <= 16 && q.out_dim <= 16,
        _ => true,
    }) {
        infer_chain_reg(layers, a, input_dim);
        return;
    }
    let mut width = input_dim;
    // `quantized` tracks whether (`xq`, `sx`) or `a` holds the current
    // activations; the chain always ends un-quantized (a linear layer or
    // an unfused activation), leaving the result in `a`.
    let mut sx = 0.0f32;
    let mut quantized = false;
    for (li, layer) in layers.iter().enumerate() {
        match layer {
            Q8EngineLayer::Linear(q) => {
                debug_assert_eq!(width, q.in_dim);
                debug_assert!(a.len() >= pad8(width) && b.len() >= q.outv8 * 8);
                debug_assert!(xq.len() >= pad8(width) && xq.len() >= q.npairs * 2);
                if !quantized {
                    sx = quantize_dyn(&a[..pad8(width)], xq);
                }
                gemv(
                    &q.wp,
                    xq,
                    q.npairs,
                    q.outv8,
                    sx,
                    &q.swp,
                    &q.biasp,
                    &mut b[..q.outv8 * 8],
                );
                // Padding lanes computed `0·acc + 0`, so `b`'s zero
                // invariant holds through `pad8(out_dim) == outv8·8`.
                width = q.out_dim;
                quantized = false;
                std::mem::swap(a, b);
            }
            Q8EngineLayer::Sigmoid => {
                debug_assert!(!quantized);
                if matches!(layers.get(li + 1), Some(Q8EngineLayer::Linear(_))) {
                    // Fused σ + fixed-scale quantization: range [0,1] pins
                    // sx at 1/127. Padding lanes quantize σ(0)·127 → 64,
                    // which is harmless: their weights are zero-padded.
                    sigmoid_to_q(&a[..pad8(width)], xq);
                    sx = 1.0 / 127.0;
                    quantized = true;
                } else {
                    sigmoid_f32(&mut a[..pad8(width)]);
                }
            }
            Q8EngineLayer::Relu => {
                debug_assert!(!quantized);
                relu_f32(&mut a[..pad8(width)]);
            }
        }
    }
}

/// The register-resident variant of [`infer_chain_avx2`] for chains whose
/// widths never exceed 16: activations stay in two `ymm` registers
/// (`y0`/`y1`), quantized codes in one (16 `i16` lanes, so `i32` lane `p`
/// *is* the `vpmaddwd` pair broadcast source — extracted with `vpermd`,
/// never through memory). `a` supplies the padded input row and receives
/// the final activations; nothing else touches the scratch buffers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn infer_chain_reg(layers: &[Q8EngineLayer], a: &mut [f32], input_dim: usize) {
    use std::arch::x86_64::*;
    let mut y0 = _mm256_loadu_ps(a.as_ptr());
    // Lanes 8..16 of the scratch row may be stale from a previous call
    // when the input itself is ≤ 8 wide; a hidden layer may still widen
    // into them, so y1 starts explicitly zero in that case.
    let mut y1 = if input_dim > 8 {
        _mm256_loadu_ps(a.as_ptr().add(8))
    } else {
        _mm256_setzero_ps()
    };
    let mut codes = _mm256_setzero_si256();
    let mut sx = 0.0f32;
    let mut quantized = false;
    for (li, layer) in layers.iter().enumerate() {
        match layer {
            Q8EngineLayer::Linear(q) => {
                if !quantized {
                    let (c, s) = quantize_reg(y0, y1);
                    codes = c;
                    sx = s;
                }
                let (a0, a1) = gemv_reg(q, codes, sx);
                y0 = a0;
                y1 = a1;
                quantized = false;
            }
            Q8EngineLayer::Sigmoid => {
                if matches!(layers.get(li + 1), Some(Q8EngineLayer::Linear(_))) {
                    let q0 = _mm256_cvtps_epi32(sigmoid_scaled(y0, 127.0));
                    let q1 = _mm256_cvtps_epi32(sigmoid_scaled(y1, 127.0));
                    codes = pack_codes(q0, q1);
                    sx = 1.0 / 127.0;
                    quantized = true;
                } else {
                    y0 = sigmoid_scaled(y0, 1.0);
                    y1 = sigmoid_scaled(y1, 1.0);
                }
            }
            Q8EngineLayer::Relu => {
                let zero = _mm256_setzero_ps();
                y0 = _mm256_and_ps(y0, _mm256_cmp_ps::<_CMP_GT_OQ>(y0, zero));
                y1 = _mm256_and_ps(y1, _mm256_cmp_ps::<_CMP_GT_OQ>(y1, zero));
            }
        }
    }
    _mm256_storeu_ps(a.as_mut_ptr(), y0);
    if a.len() >= 16 {
        _mm256_storeu_ps(a.as_mut_ptr().add(8), y1);
    }
}

/// Runs **two** independent rows through a narrow quantized chain with
/// their latency chains software-pipelined: the rows' instruction streams
/// are interleaved (plain `[T; 2]` arrays, unrolled by the compiler), so
/// while row 0's sigmoid waits on its FMA chain the out-of-order core
/// retires row 1's — a single narrow row is pure latency (one ~250-µop
/// call barely fills a quarter of the ROB), so pairing is where the
/// serving tier's batched ticks win back real throughput.
///
/// `stage` holds row 0 at `[0..16]` and row 1 at `[16..32]` (both padded,
/// pads zero through `pad8(input_dim)`); results are written back to the
/// same slots. Returns `false` (computing nothing) unless the backend is
/// active and the chain is register-narrow (`stride == 16`, every layer
/// ≤ 16 wide) — the caller then falls back to two single-row passes.
#[allow(unused_variables)]
pub(crate) fn infer_chain2(
    layers: &[Q8EngineLayer],
    stage: &mut [f32],
    input_dim: usize,
    stride: usize,
) -> bool {
    if !active() || stride != 16 || input_dim > 16 || stage.len() < 32 {
        return false;
    }
    if !layers.iter().all(|l| match l {
        Q8EngineLayer::Linear(q) => q.in_dim <= 16 && q.out_dim <= 16,
        _ => true,
    }) {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `active()` verified avx2+fma; lengths checked above.
        unsafe { infer_chain2_avx2(layers, stage, input_dim) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn infer_chain2_avx2(layers: &[Q8EngineLayer], stage: &mut [f32], input_dim: usize) {
    use std::arch::x86_64::*;
    let base = stage.as_mut_ptr();
    let mut y0 = [_mm256_loadu_ps(base), _mm256_loadu_ps(base.add(16))];
    // Same stale-lane rule as the single-row chain: lanes 8..16 of each
    // row slot may hold a previous call's activations when the input is
    // ≤ 8 wide.
    let mut y1 = if input_dim > 8 {
        [_mm256_loadu_ps(base.add(8)), _mm256_loadu_ps(base.add(24))]
    } else {
        [_mm256_setzero_ps(); 2]
    };
    let mut codes = [_mm256_setzero_si256(); 2];
    let mut sx = [0.0f32; 2];
    let mut quantized = false;
    for (li, layer) in layers.iter().enumerate() {
        match layer {
            Q8EngineLayer::Linear(q) => {
                if !quantized {
                    for r in 0..2 {
                        let (c, s) = quantize_reg(y0[r], y1[r]);
                        codes[r] = c;
                        sx[r] = s;
                    }
                }
                for r in 0..2 {
                    let (a0, a1) = gemv_reg(q, codes[r], sx[r]);
                    y0[r] = a0;
                    y1[r] = a1;
                }
                quantized = false;
            }
            Q8EngineLayer::Sigmoid => {
                if matches!(layers.get(li + 1), Some(Q8EngineLayer::Linear(_))) {
                    for r in 0..2 {
                        let q0 = _mm256_cvtps_epi32(sigmoid_scaled(y0[r], 127.0));
                        let q1 = _mm256_cvtps_epi32(sigmoid_scaled(y1[r], 127.0));
                        codes[r] = pack_codes(q0, q1);
                        sx[r] = 1.0 / 127.0;
                    }
                    quantized = true;
                } else {
                    for r in 0..2 {
                        y0[r] = sigmoid_scaled(y0[r], 1.0);
                        y1[r] = sigmoid_scaled(y1[r], 1.0);
                    }
                }
            }
            Q8EngineLayer::Relu => {
                let zero = _mm256_setzero_ps();
                for r in 0..2 {
                    y0[r] = _mm256_and_ps(y0[r], _mm256_cmp_ps::<_CMP_GT_OQ>(y0[r], zero));
                    y1[r] = _mm256_and_ps(y1[r], _mm256_cmp_ps::<_CMP_GT_OQ>(y1[r], zero));
                }
            }
        }
    }
    for r in 0..2 {
        _mm256_storeu_ps(base.add(r * 16), y0[r]);
        _mm256_storeu_ps(base.add(r * 16 + 8), y1[r]);
    }
}

/// One register-resident GEMV step shared by the single-row and paired
/// chains: codes (16 `i16` lanes) × interleaved-pair weights → up to 16
/// f32 outputs in two vectors. Padding outputs compute `0·acc + 0`, so
/// the zero invariant survives in `y1` when the layer is ≤ 8 wide.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn gemv_reg(
    q: &crate::quant::Q8Linear,
    codes: std::arch::x86_64::__m256i,
    sx: f32,
) -> (std::arch::x86_64::__m256, std::arch::x86_64::__m256) {
    use std::arch::x86_64::*;
    debug_assert!(q.npairs <= 8 && q.outv8 <= 2);
    let w = q.wp.as_ptr();
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    if q.outv8 == 1 {
        for p in 0..q.npairs {
            let xb = _mm256_permutevar8x32_epi32(codes, _mm256_set1_epi32(p as i32));
            let wv = _mm256_loadu_si256(w.add(p * 16) as *const __m256i);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wv, xb));
        }
    } else {
        for p in 0..q.npairs {
            let xb = _mm256_permutevar8x32_epi32(codes, _mm256_set1_epi32(p as i32));
            let base = w.add(p * 32);
            let wv0 = _mm256_loadu_si256(base as *const __m256i);
            let wv1 = _mm256_loadu_si256(base.add(16) as *const __m256i);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wv0, xb));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(wv1, xb));
        }
    }
    let sxv = _mm256_set1_ps(sx);
    let y0 = _mm256_fmadd_ps(
        _mm256_cvtepi32_ps(acc0),
        _mm256_mul_ps(_mm256_loadu_ps(q.swp.as_ptr()), sxv),
        _mm256_loadu_ps(q.biasp.as_ptr()),
    );
    let y1 = if q.outv8 == 2 {
        _mm256_fmadd_ps(
            _mm256_cvtepi32_ps(acc1),
            _mm256_mul_ps(_mm256_loadu_ps(q.swp.as_ptr().add(8)), sxv),
            _mm256_loadu_ps(q.biasp.as_ptr().add(8)),
        )
    } else {
        _mm256_setzero_ps()
    };
    (y0, y1)
}

/// Narrows two `i32×8` code vectors into one ordered `i16×16` register:
/// saturating pack, then a cross-lane quarter shuffle to restore
/// `[q0[0..8], q1[0..8]]` order.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn pack_codes(
    q0: std::arch::x86_64::__m256i,
    q1: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    _mm256_permute4x64_epi64(_mm256_packs_epi32(q0, q1), 0b11_01_10_00)
}

/// Register form of [`quantize_dyn`] over 16 lanes held in two vectors.
/// The reciprocal comes from `rcpss` (|rel err| ≤ 1.5·2⁻¹² — at most
/// ~0.05 of a code, absorbed by the ±0.5 rounding bound and far inside
/// the engine's error budget); the returned scale is the exact
/// `amax/127`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn quantize_reg(
    y0: std::arch::x86_64::__m256,
    y1: std::arch::x86_64::__m256,
) -> (std::arch::x86_64::__m256i, f32) {
    use std::arch::x86_64::*;
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let m = _mm256_max_ps(_mm256_and_ps(y0, absmask), _mm256_and_ps(y1, absmask));
    let hi = _mm256_extractf128_ps(m, 1);
    let mut m4 = _mm_max_ps(_mm256_castps256_ps128(m), hi);
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    let amax = _mm_cvtss_f32(m4);
    let (sx, inv) = if amax == 0.0 {
        (1.0, 1.0)
    } else {
        // Even with the reciprocal's overestimate, |y·inv| ≤ 127.047,
        // which still rounds to code 127 — no overflow past ±127.
        (amax * (1.0 / 127.0), _mm_cvtss_f32(_mm_rcp_ss(m4)) * 127.0)
    };
    let invv = _mm256_set1_ps(inv);
    let q0 = _mm256_cvtps_epi32(_mm256_mul_ps(y0, invv));
    let q1 = _mm256_cvtps_epi32(_mm256_mul_ps(y1, invv));
    (pack_codes(q0, q1), sx)
}

/// Dynamic-range symmetric quantization: per-row `sx = amax/127` (1.0 for
/// an all-zero row), round-to-nearest-even. `x.len()` is a multiple of 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn quantize_dyn(x: &[f32], xq: &mut [i16]) -> f32 {
    use std::arch::x86_64::*;
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let mut mx = _mm256_setzero_ps();
    for c in 0..x.len() / 8 {
        let v = _mm256_loadu_ps(x.as_ptr().add(c * 8));
        mx = _mm256_max_ps(mx, _mm256_and_ps(v, absmask));
    }
    let hi = _mm256_extractf128_ps(mx, 1);
    let mut m4 = _mm_max_ps(_mm256_castps256_ps128(mx), hi);
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    let amax = _mm_cvtss_f32(m4);
    // One division on the critical path (`inv` gates every code); the
    // returned scale is the cheap reciprocal-free product.
    let (sx, invs) = if amax == 0.0 {
        (1.0, 1.0)
    } else {
        (amax * (1.0 / 127.0), 127.0 / amax)
    };
    let inv = _mm256_set1_ps(invs);
    for c in 0..x.len() / 8 {
        let v = _mm256_mul_ps(_mm256_loadu_ps(x.as_ptr().add(c * 8)), inv);
        // vcvtps2dq rounds to nearest-even; |v| ≤ 127 by construction of
        // sx, so the i32 → i16 saturation in packs never engages on
        // finite inputs.
        store_i32x8_as_i16(xq.as_mut_ptr().add(c * 8), _mm256_cvtps_epi32(v));
    }
    sx
}

/// `out[8v+l] = f32(Σ_p madd(wp, x)) · (sx·sw) + bias` — the vpmaddwd
/// GEMV over the interleaved-pair weight layout.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn gemv(
    wp: &[i16],
    xq: &[i16],
    npairs: usize,
    outv8: usize,
    sx: f32,
    sw: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert!(wp.len() >= npairs * outv8 * 16);
    debug_assert!(sw.len() >= outv8 * 8 && bias.len() >= outv8 * 8 && out.len() >= outv8 * 8);
    let w = wp.as_ptr();
    let xi = xq.as_ptr();
    // Up to 4 output vectors per pass covers every fleet topology (≤32
    // outputs); wider layers take further passes over the same xq.
    let mut v0 = 0usize;
    while v0 < outv8 {
        let nv = (outv8 - v0).min(4);
        let mut acc = [_mm256_setzero_si256(); 4];
        for p in 0..npairs {
            // The (x₀, x₁) i16 pair *is* the little-endian i32 at 2p.
            let xb = _mm256_set1_epi32((xi.add(2 * p) as *const i32).read_unaligned());
            let base = w.add((p * outv8 + v0) * 16);
            for (v, a) in acc.iter_mut().enumerate().take(nv) {
                let wv = _mm256_loadu_si256(base.add(v * 16) as *const __m256i);
                *a = _mm256_add_epi32(*a, _mm256_madd_epi16(wv, xb));
            }
        }
        let sxv = _mm256_set1_ps(sx);
        for (v, a) in acc.iter().enumerate().take(nv) {
            let o = (v0 + v) * 8;
            let swv = _mm256_mul_ps(_mm256_loadu_ps(sw.as_ptr().add(o)), sxv);
            let bv = _mm256_loadu_ps(bias.as_ptr().add(o));
            let y = _mm256_fmadd_ps(_mm256_cvtepi32_ps(*a), swv, bv);
            _mm256_storeu_ps(out.as_mut_ptr().add(o), y);
        }
        v0 += nv;
    }
}

/// Gather-free vector sigmoid: `σ(x)·scale = scale / (1 + 2^(−x·log₂e))`,
/// with `2^u` split as `2^⌊u⌉ · 2^f` — an exponent-field splice and a
/// degree-3 Chebyshev polynomial for `2^f`, `f ∈ [−0.5, 0.5]`.
///
/// On the serving chain's tiny rows a single row is latency-bound, and a
/// `vgatherdps`-based table interpolation keeps two ~20-cycle gathers on
/// the critical path per 8 lanes; this straight-line version is pure
/// FMA/convert latency. Error budget: the polynomial's relative error is
/// < 1.0e-4 (the `1/(1+z)` map contracts it to < 2.5e-5 absolute) and the
/// `rcpps` reciprocal adds ≤ 1.5·2⁻¹² ≈ 3.7e-4 relative, for a total
/// absolute sigmoid error < 3.95e-4 — inside the same
/// `Q8_SIGMOID_MAX_ERR` budget the scalar engine's piecewise-linear table
/// documents (the two paths differ numerically, which is fine: the Q8
/// contract is bounded error, not bit-exactness).
///
/// Inputs clamp to `[−8, 8]` first, mirroring the scalar table's
/// saturation; the clamp's operand order sends NaN lanes to −8 (σ ≈ 0).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn sigmoid_scaled(v: std::arch::x86_64::__m256, scale: f32) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    // max(x, -8) yields its *second* operand on a NaN lane: NaN → −8.
    let xc = _mm256_min_ps(_mm256_max_ps(v, _mm256_set1_ps(-8.0)), _mm256_set1_ps(8.0));
    // u = −x·log₂e ∈ [−11.55, 11.55]; z = 2^u = e^(−x).
    let u = _mm256_mul_ps(xc, _mm256_set1_ps(-std::f32::consts::LOG2_E));
    let k = _mm256_cvtps_epi32(u); // round nearest-even: ⌊u⌉
    let f = _mm256_sub_ps(u, _mm256_cvtepi32_ps(k));
    // 2^f, f ∈ [−0.5, 0.5]: degree-3 Chebyshev fit, rel err < 1.0e-4.
    let p = _mm256_fmadd_ps(
        _mm256_fmadd_ps(
            _mm256_fmadd_ps(
                _mm256_set1_ps(5.583_828_3e-2),
                f,
                _mm256_set1_ps(2.426_394_8e-1),
            ),
            f,
            _mm256_set1_ps(6.931_367_3e-1),
        ),
        f,
        _mm256_set1_ps(9.999_245_6e-1),
    );
    // 2^k by exponent splice (k ∈ [−12, 12] keeps the biased field valid).
    let e2k = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        k,
        _mm256_set1_epi32(127),
    )));
    let z = _mm256_mul_ps(p, e2k);
    // rcpps instead of a full divide: |rel err| ≤ 1.5·2⁻¹² ≈ 3.7e-4,
    // which together with the polynomial keeps the total sigmoid error
    // under `Q8_SIGMOID_MAX_ERR` while shaving the divider latency.
    let r = _mm256_rcp_ps(_mm256_add_ps(z, _mm256_set1_ps(1.0)));
    _mm256_mul_ps(r, _mm256_set1_ps(scale))
}

/// In-place f32 sigmoid (for a sigmoid that is the chain's last layer or
/// feeds a non-linear successor).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn sigmoid_f32(x: &mut [f32]) {
    use std::arch::x86_64::*;
    for c in 0..x.len() / 8 {
        let p = x.as_mut_ptr().add(c * 8);
        let r = sigmoid_scaled(_mm256_loadu_ps(p), 1.0);
        _mm256_storeu_ps(p, r);
    }
}

/// Fused sigmoid + fixed-scale quantization: evaluates `σ·127` directly
/// and rounds straight to `i16` codes (scale 1/127).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn sigmoid_to_q(x: &[f32], xq: &mut [i16]) {
    use std::arch::x86_64::*;
    for c in 0..x.len() / 8 {
        let r = sigmoid_scaled(_mm256_loadu_ps(x.as_ptr().add(c * 8)), 127.0);
        store_i32x8_as_i16(xq.as_mut_ptr().add(c * 8), _mm256_cvtps_epi32(r));
    }
}

/// `if !(x > 0) { 0 }` over full lanes (padding zeros stay zero; NaN → 0,
/// matching the scalar engine).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn relu_f32(x: &mut [f32]) {
    use std::arch::x86_64::*;
    let zero = _mm256_setzero_ps();
    for c in 0..x.len() / 8 {
        let p = x.as_mut_ptr().add(c * 8);
        let v = _mm256_loadu_ps(p);
        let keep = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
        _mm256_storeu_ps(p, _mm256_and_ps(v, keep));
    }
}

/// Narrows 8 `i32` lanes to 8 contiguous `i16`s (saturating pack +
/// cross-lane reorder).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn store_i32x8_as_i16(dst: *mut i16, q: std::arch::x86_64::__m256i) {
    use std::arch::x86_64::*;
    let packed = _mm256_packs_epi32(q, q);
    let ordered = _mm256_permute4x64_epi64(packed, 0b00_00_10_00);
    _mm_storeu_si128(dst as *mut __m128i, _mm256_castsi256_si128(ordered));
}
