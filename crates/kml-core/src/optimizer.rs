//! Stochastic gradient descent with momentum (paper §2, §4).
//!
//! "Once gradients are computed, KML optimizes the neural network's
//! parameters using Stochastic Gradient Descent." The readahead model uses
//! lr = 0.01 and momentum = 0.99 (§4); [`Sgd::paper_defaults`] encodes that
//! configuration.

use crate::layers::ParamGrad;
use crate::scalar::Scalar;
use crate::{KmlError, Result};

/// SGD with classical (heavy-ball) momentum:
///
/// `v ← μ·v − η·g` ; `w ← w + v`
///
/// Velocity buffers are allocated lazily per parameter slot and reused across
/// steps; slot order must stay stable across calls (it does for a fixed
/// model, since layers enumerate parameters deterministically).
///
/// # Example
///
/// ```
/// use kml_core::optimizer::Sgd;
///
/// let sgd = Sgd::paper_defaults();
/// assert_eq!(sgd.learning_rate(), 0.01);
/// assert_eq!(sgd.momentum(), 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f64,
    momentum: f64,
    velocities: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and momentum.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            learning_rate,
            momentum,
            velocities: Vec::new(),
        }
    }

    /// The configuration of the paper's readahead model: lr 0.01, momentum 0.99.
    pub fn paper_defaults() -> Self {
        Sgd::new(0.01, 0.99)
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The configured momentum coefficient.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }

    /// Clears all velocity state (e.g. between cross-validation folds).
    pub fn reset(&mut self) {
        self.velocities.clear();
    }

    /// Applies one update to every parameter slot.
    ///
    /// # Errors
    ///
    /// Propagates shape errors if a gradient's shape stopped matching its
    /// parameter (which indicates a corrupted training loop).
    pub fn step<S: Scalar>(&mut self, slots: &mut [ParamGrad<'_, S>]) -> Result<()> {
        for (i, slot) in slots.iter_mut().enumerate() {
            self.apply(i, slot)?;
        }
        Ok(())
    }

    /// Applies one update to a single parameter slot, identified by its
    /// stable position in the model's slot order. Used by the visitor-based
    /// training path, which never materializes a slot `Vec`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors if the gradient's shape stopped matching its
    /// parameter (which indicates a corrupted training loop).
    pub fn apply<S: Scalar>(&mut self, slot: usize, pg: &mut ParamGrad<'_, S>) -> Result<()> {
        // Grow velocity storage on first sight of each slot.
        if slot == self.velocities.len() {
            self.velocities.push(vec![0.0; pg.grad.len()]);
        }
        if pg.param.shape() != pg.grad.shape() {
            return Err(KmlError::ShapeMismatch {
                op: "axpy",
                lhs: pg.param.shape(),
                rhs: pg.grad.shape(),
            });
        }
        let vel = &mut self.velocities[slot];
        // In-place fused update: no temporary update vector or delta
        // matrix, so steady-state training performs zero allocations here.
        let grad = pg.grad.as_slice();
        for ((p, &g), v) in pg.param.as_mut_slice().iter_mut().zip(grad).zip(vel) {
            *v = self.momentum * *v - self.learning_rate * g.to_f64();
            *p = p.add(S::from_f64(*v));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::loss::{Loss, MseLoss, TargetRef};
    use crate::matrix::Matrix;
    use crate::KmlRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_panics() {
        let _ = Sgd::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_one_panics() {
        let _ = Sgd::new(0.1, 1.0);
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut w = Matrix::from_rows(&[vec![1.0_f64, -1.0]]).unwrap();
        let g = Matrix::from_rows(&[vec![0.5, -0.5]]).unwrap();
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut [ParamGrad {
            param: &mut w,
            grad: &g,
        }])
        .unwrap();
        assert_eq!(w.as_slice(), &[0.95, -0.95]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut w = Matrix::from_rows(&[vec![0.0_f64]]).unwrap();
        let g = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let mut sgd = Sgd::new(0.1, 0.5);
        // step 1: v = -0.1, w = -0.1
        // step 2: v = -0.15, w = -0.25
        sgd.step(&mut [ParamGrad {
            param: &mut w,
            grad: &g,
        }])
        .unwrap();
        sgd.step(&mut [ParamGrad {
            param: &mut w,
            grad: &g,
        }])
        .unwrap();
        assert!((w.get(0, 0) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_velocity() {
        let mut w = Matrix::from_rows(&[vec![0.0_f64]]).unwrap();
        let g = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let mut sgd = Sgd::new(0.1, 0.9);
        sgd.step(&mut [ParamGrad {
            param: &mut w,
            grad: &g,
        }])
        .unwrap();
        sgd.reset();
        let before = w.get(0, 0);
        sgd.step(&mut [ParamGrad {
            param: &mut w,
            grad: &g,
        }])
        .unwrap();
        // With cleared velocity the step is exactly -lr*g again.
        assert!((w.get(0, 0) - (before - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn sgd_drives_linear_regression_to_target() {
        // Fit y = 2x with a single 1x1 linear layer.
        let mut rng = KmlRng::seed_from_u64(5);
        let mut layer = Linear::<f64>::new(1, 1, &mut rng);
        let mut sgd = Sgd::new(0.02, 0.8);
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
        for _ in 0..500 {
            for &x in &xs {
                let input = Matrix::row_vector(&[x]);
                let pred = layer.forward(&input).unwrap();
                let target = [2.0 * x];
                let grad = MseLoss.grad(&pred, TargetRef::Values(&target)).unwrap();
                layer.backward(&grad).unwrap();
                sgd.step(&mut layer.param_grads()).unwrap();
            }
        }
        let w = layer.weights().get(0, 0);
        let b = layer.bias().get(0, 0);
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
        assert!(b.abs() < 0.05, "b = {b}");
    }

    #[test]
    fn paper_defaults_match_section_four() {
        let sgd = Sgd::paper_defaults();
        assert_eq!(sgd.learning_rate(), 0.01);
        assert_eq!(sgd.momentum(), 0.99);
    }
}
