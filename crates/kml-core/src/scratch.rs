//! Reusable scratch buffers for the allocation-free inference/training path.
//!
//! The paper's runtime is garbage-free in steady state: the readahead model
//! uses a fixed 676 B of transient memory per inference (§4), carved out of
//! buffers sized once at initialization. [`ScratchArena`] is that discipline
//! in Rust: a set of indexed [`Matrix`] slots whose element buffers are
//! allocated the first time a shape is seen and then reused verbatim on
//! every subsequent forward/backward pass. The arena's high-water mark is
//! the *measured* analogue of the paper's scratch-bytes claim (in contrast
//! to [`crate::model::Model::inference_scratch_bytes`], which derives the
//! same quantity analytically from the topology).

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// An indexed pool of reusable matrix buffers.
///
/// Slots are addressed by stable indices (the computation graph assigns one
/// per node, plus a few for gradient staging). Acquiring a slot never
/// shrinks its underlying buffer, so after a warm-up pass with the largest
/// batch shape the arena performs **zero heap allocations**.
///
/// # Example
///
/// ```
/// use kml_core::scratch::ScratchArena;
///
/// let mut arena: ScratchArena<f32> = ScratchArena::new();
/// arena.ensure_slots(2);
/// arena.slot_mut(0).ensure_shape(1, 15);
/// arena.slot_mut(1).ensure_shape(1, 10);
/// assert_eq!(arena.refresh_high_water(), (15 + 10) * 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ScratchArena<S: Scalar> {
    slots: Vec<Matrix<S>>,
    high_water_bytes: usize,
}

impl<S: Scalar> ScratchArena<S> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ScratchArena {
            slots: Vec::new(),
            high_water_bytes: 0,
        }
    }

    /// Grows the arena to at least `n` slots (new slots are 0×0 and own no
    /// element storage until first reshaped).
    pub fn ensure_slots(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(Matrix::zeros(0, 0));
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Shared view of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (call [`ScratchArena::ensure_slots`]).
    pub fn slot(&self, i: usize) -> &Matrix<S> {
        &self.slots[i]
    }

    /// Mutable view of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (call [`ScratchArena::ensure_slots`]).
    pub fn slot_mut(&mut self, i: usize) -> &mut Matrix<S> {
        &mut self.slots[i]
    }

    /// Splits out `(&slots[src], &mut slots[dst])` for the forward pass,
    /// where a node reads its producer's activation and writes its own.
    ///
    /// # Panics
    ///
    /// Panics unless `src < dst < len`.
    pub fn read_write_pair(&mut self, src: usize, dst: usize) -> (&Matrix<S>, &mut Matrix<S>) {
        assert!(src < dst, "read slot must precede write slot");
        let (lo, hi) = self.slots.split_at_mut(dst);
        (&lo[src], &mut hi[0])
    }

    /// Splits out `(&mut slots[dst], &slots[src])` for the backward pass,
    /// where a node reads its own gradient and writes its producer's.
    ///
    /// # Panics
    ///
    /// Panics unless `dst < src < len`.
    pub fn write_read_pair(&mut self, dst: usize, src: usize) -> (&mut Matrix<S>, &Matrix<S>) {
        assert!(dst < src, "write slot must precede read slot");
        let (lo, hi) = self.slots.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    }

    /// Bytes of element storage currently held across all slots.
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(Matrix::storage_bytes).sum()
    }

    /// Folds the current footprint into the high-water mark and returns the
    /// updated mark. Call once per pass; the arithmetic is branch-light so
    /// it does not disturb the hot path it measures.
    pub fn refresh_high_water(&mut self) -> usize {
        let now = self.bytes();
        if now > self.high_water_bytes {
            self.high_water_bytes = now;
        }
        self.high_water_bytes
    }

    /// Largest total footprint ever observed by [`refresh_high_water`].
    ///
    /// [`refresh_high_water`]: ScratchArena::refresh_high_water
    pub fn high_water_bytes(&self) -> usize {
        self.high_water_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fix32;

    #[test]
    fn slots_grow_monotonically() {
        let mut a: ScratchArena<f64> = ScratchArena::new();
        assert!(a.is_empty());
        a.ensure_slots(3);
        a.ensure_slots(1); // never shrinks
        assert_eq!(a.len(), 3);
        assert_eq!(a.slot(0).shape(), (0, 0));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut a: ScratchArena<f32> = ScratchArena::new();
        a.ensure_slots(1);
        a.slot_mut(0).ensure_shape(4, 4);
        assert_eq!(a.refresh_high_water(), 64);
        a.slot_mut(0).ensure_shape(1, 1);
        // Buffer logically shrank, but the peak stays.
        assert_eq!(a.refresh_high_water(), 64);
        assert_eq!(a.bytes(), 4);
        assert_eq!(a.high_water_bytes(), 64);
    }

    #[test]
    fn pair_accessors_split_disjoint_slots() {
        let mut a: ScratchArena<Fix32> = ScratchArena::new();
        a.ensure_slots(3);
        a.slot_mut(0).ensure_shape(1, 2);
        let (src, dst) = a.read_write_pair(0, 2);
        assert_eq!(src.shape(), (1, 2));
        dst.ensure_shape(1, 5);
        let (gdst, gsrc) = a.write_read_pair(0, 2);
        assert_eq!(gsrc.shape(), (1, 5));
        gdst.ensure_shape(2, 2);
        assert_eq!(a.slot(0).shape(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "read slot must precede")]
    fn read_write_pair_rejects_bad_order() {
        let mut a: ScratchArena<f32> = ScratchArena::new();
        a.ensure_slots(2);
        let _ = a.read_write_pair(1, 1);
    }
}
