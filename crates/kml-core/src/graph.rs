//! The computation DAG (paper §2 "Inference and training").
//!
//! KML performs inference by "creating a computation directed acyclic graph
//! (DAG) of the individual layers", traversing it forward for inference, and
//! backward in reverse topological order for reverse-mode automatic
//! differentiation. The paper's prototype trains chain graphs only; this
//! implementation additionally supports **fan-out** (one layer's output
//! consumed by several downstream layers, gradients summed on the way back),
//! which is the first step toward the arbitrary-DAG support the paper lists
//! as future work. Multi-*input* layers (joins) remain unsupported.

use crate::layers::{Layer, ParamGrad};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::scratch::ScratchArena;
use crate::{KmlError, Result};

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

struct Node<S: Scalar> {
    layer: Box<dyn Layer<S>>,
    input: Option<NodeId>,
}

impl<S: Scalar> std::fmt::Debug for Node<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("kind", &self.layer.kind())
            .field("input", &self.input)
            .finish()
    }
}

/// A computation DAG of single-input layers with fan-out support.
///
/// Nodes are appended in topological order by construction: a node's input
/// must already exist, so forward traversal is a simple scan and backward a
/// reverse scan with gradient accumulation at fan-out points.
///
/// # Example
///
/// ```
/// use kml_core::graph::Graph;
/// use kml_core::layers::{Activation, ActivationLayer, Linear};
/// use kml_core::matrix::Matrix;
/// use kml_core::{KmlRng, prelude::SeedableRng};
///
/// # fn main() -> kml_core::Result<()> {
/// let mut rng = KmlRng::seed_from_u64(1);
/// let mut g: Graph<f64> = Graph::new();
/// let a = g.add_source(Box::new(Linear::new(3, 4, &mut rng)))?;
/// let b = g.add_node(Box::new(ActivationLayer::new(Activation::Sigmoid)), a)?;
/// g.set_output(b)?;
/// let y = g.forward(&Matrix::row_vector(&[1.0, 2.0, 3.0]))?;
/// assert_eq!(y.shape(), (1, 4));
/// # Ok(())
/// # }
/// ```
pub struct Graph<S: Scalar> {
    nodes: Vec<Node<S>>,
    output: Option<NodeId>,
    /// Per-node activation buffers (slot `i` holds node `i`'s output),
    /// sized on the first forward pass and reused allocation-free after.
    acts: ScratchArena<S>,
    /// Per-node gradient buffers: slots `0..n` mirror the nodes, slot `n`
    /// holds the graph-input gradient, slot `n+1` stages fan-out sums.
    grads: ScratchArena<S>,
    /// Which gradient slots were produced during the current backward scan.
    grad_set: Vec<bool>,
}

impl<S: Scalar> std::fmt::Debug for Graph<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes)
            .field("output", &self.output)
            .finish()
    }
}

impl<S: Scalar> Graph<S> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            output: None,
            acts: ScratchArena::new(),
            grads: ScratchArena::new(),
            grad_set: Vec::new(),
        }
    }

    /// Adds a node fed directly by the graph input.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if a source already exists —
    /// the graph has a single external input, like KML's chain prototype.
    pub fn add_source(&mut self, layer: Box<dyn Layer<S>>) -> Result<NodeId> {
        if self.nodes.iter().any(|n| n.input.is_none()) {
            return Err(KmlError::InvalidConfig(
                "graph already has a source node".into(),
            ));
        }
        self.nodes.push(Node { layer, input: None });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Adds a node consuming the output of `input`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if `input` does not exist.
    pub fn add_node(&mut self, layer: Box<dyn Layer<S>>, input: NodeId) -> Result<NodeId> {
        if input.0 >= self.nodes.len() {
            return Err(KmlError::InvalidConfig(format!(
                "input node {} does not exist",
                input.0
            )));
        }
        self.nodes.push(Node {
            layer,
            input: Some(input),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Declares which node's output the graph returns.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if `node` does not exist.
    pub fn set_output(&mut self, node: NodeId) -> Result<()> {
        if node.0 >= self.nodes.len() {
            return Err(KmlError::InvalidConfig(format!(
                "output node {} does not exist",
                node.0
            )));
        }
        self.output = Some(node);
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the graph is a pure chain (every node consumed exactly once) —
    /// the only shape the paper's prototype trains.
    pub fn is_chain(&self) -> bool {
        let mut consumers = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            if let Some(i) = n.input {
                consumers[i.0] += 1;
            }
        }
        // Exactly one sink (the output) and no fan-out.
        consumers.iter().filter(|&&c| c == 0).count() == 1 && consumers.iter().all(|&c| c <= 1)
    }

    /// Forward propagation: feeds `input` to the source node and returns the
    /// output node's activation (cloned out of the internal scratch arena).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if the graph is empty or no output
    /// was declared, plus any shape error from the layers.
    pub fn forward(&mut self, input: &Matrix<S>) -> Result<Matrix<S>> {
        Ok(self.forward_in_place(input)?.clone())
    }

    /// Forward propagation through arena-backed activation buffers. After a
    /// warm-up pass with a given batch shape, subsequent calls perform
    /// **zero heap allocations**; the returned reference points into the
    /// arena slot of the output node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::forward`].
    pub fn forward_in_place(&mut self, input: &Matrix<S>) -> Result<&Matrix<S>> {
        let output = self
            .output
            .ok_or_else(|| KmlError::InvalidConfig("graph has no output node declared".into()))?;
        self.acts.ensure_slots(self.nodes.len());
        // Nodes are appended in topological order, so a plain scan visits
        // every producer before its consumers (src slot index < node index).
        for i in 0..self.nodes.len() {
            match self.nodes[i].input {
                None => {
                    let out = self.acts.slot_mut(i);
                    self.nodes[i].layer.forward_into(input, out)?;
                }
                Some(src) => {
                    let (fed, out) = self.acts.read_write_pair(src.0, i);
                    self.nodes[i].layer.forward_into(fed, out)?;
                }
            }
        }
        self.acts.refresh_high_water();
        Ok(self.acts.slot(output.0))
    }

    /// Backward propagation from `grad_output` (∂L/∂output of the graph);
    /// parameter gradients are left inside the layers for the optimizer.
    /// Returns ∂L/∂input of the graph.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if called before [`Graph::forward`].
    pub fn backward(&mut self, grad_output: &Matrix<S>) -> Result<Matrix<S>> {
        Ok(self.backward_in_place(grad_output)?.clone())
    }

    /// Backward propagation through arena-backed gradient buffers —
    /// allocation-free in steady state, like [`Graph::forward_in_place`].
    /// The returned reference points into the arena slot holding ∂L/∂input.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::backward`].
    pub fn backward_in_place(&mut self, grad_output: &Matrix<S>) -> Result<&Matrix<S>> {
        let output = self
            .output
            .ok_or_else(|| KmlError::InvalidConfig("graph has no output node declared".into()))?;
        let n = self.nodes.len();
        self.grads.ensure_slots(n + 2);
        self.grad_set.clear();
        self.grad_set.resize(n + 1, false);
        self.grads.slot_mut(output.0).copy_from(grad_output);
        self.grad_set[output.0] = true;

        for i in (0..n).rev() {
            if !self.grad_set[i] {
                continue; // node not on a path to the output
            }
            match self.nodes[i].input {
                // Fan-out point: a consumer already wrote this producer's
                // slot, so stage into the spare slot and accumulate.
                Some(src) if self.grad_set[src.0] => {
                    let (gout, staged) = self.grads.read_write_pair(i, n + 1);
                    self.nodes[i].layer.backward_into(gout, staged)?;
                    let (acc, staged) = self.grads.write_read_pair(src.0, n + 1);
                    acc.axpy_in_place(staged, S::ONE)?;
                }
                Some(src) => {
                    let (gin, gout) = self.grads.write_read_pair(src.0, i);
                    self.nodes[i].layer.backward_into(gout, gin)?;
                    self.grad_set[src.0] = true;
                }
                // The single source node writes the graph-input gradient.
                None => {
                    let (gout, gin) = self.grads.read_write_pair(i, n);
                    self.nodes[i].layer.backward_into(gout, gin)?;
                    self.grad_set[n] = true;
                }
            }
        }
        self.grads.refresh_high_water();
        if !self.grad_set[n] {
            return Err(KmlError::InvalidConfig(
                "backward called before forward".into(),
            ));
        }
        Ok(self.grads.slot(n))
    }

    /// High-water mark of the forward/backward scratch arenas in bytes —
    /// the measured analogue of the paper's 676 B inference-scratch claim
    /// (compare [`crate::model::Model::inference_scratch_bytes`], which is
    /// derived analytically from the topology).
    pub fn scratch_high_water_bytes(&self) -> usize {
        self.acts.high_water_bytes() + self.grads.high_water_bytes()
    }

    /// Bytes of forward-state scratch held inside the layers themselves
    /// (cached activations and derivative staging buffers).
    pub fn layer_scratch_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.layer.scratch_bytes()).sum()
    }

    /// All parameter/gradient slots across the graph, in node order.
    pub fn param_grads(&mut self) -> Vec<ParamGrad<'_, S>> {
        self.nodes
            .iter_mut()
            .flat_map(|n| n.layer.param_grads())
            .collect()
    }

    /// Visits every parameter/gradient slot in [`Graph::param_grads`] order
    /// without building a `Vec` — the allocation-free optimizer path the
    /// training loop drives.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    pub fn visit_param_grads(
        &mut self,
        f: &mut dyn FnMut(ParamGrad<'_, S>) -> Result<()>,
    ) -> Result<()> {
        for n in &mut self.nodes {
            n.layer.visit_param_grads(f)?;
        }
        Ok(())
    }

    /// Deep-copies topology and layer parameters for a data-parallel
    /// training worker (fresh arenas, no gradient state), or `None` if any
    /// layer cannot be row-sharded (see [`Layer::clone_box`]).
    pub fn clone_for_workers(&self) -> Option<Graph<S>> {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            nodes.push(Node {
                layer: n.layer.clone_box()?,
                input: n.input,
            });
        }
        Some(Graph {
            nodes,
            output: self.output,
            acts: ScratchArena::new(),
            grads: ScratchArena::new(),
            grad_set: Vec::new(),
        })
    }

    /// Zeroes every layer's parameter-gradient accumulators ahead of
    /// [`Graph::accumulate_param_grads_from`] calls.
    pub fn reset_param_grads(&mut self) {
        for n in &mut self.nodes {
            n.layer.reset_param_grads();
        }
    }

    /// Accumulates parameter gradients from a worker `replica` that ran
    /// `forward_in_place(replica_input)` + `backward_in_place` on one row
    /// shard. Shards must be fed in ascending row order; each layer's
    /// accumulator chains then reproduce the full-batch gradient
    /// bit-for-bit (see [`Layer::accumulate_param_grads`]).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if `replica` has a different
    /// node count, plus any shape error from the layers.
    pub fn accumulate_param_grads_from(
        &mut self,
        replica: &Graph<S>,
        replica_input: &Matrix<S>,
    ) -> Result<()> {
        if replica.nodes.len() != self.nodes.len() {
            return Err(KmlError::InvalidConfig(
                "gradient replica does not match graph topology".into(),
            ));
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !replica.grad_set.get(i).copied().unwrap_or(false) {
                continue; // node not on a path to the output
            }
            let input = match replica.nodes[i].input {
                None => replica_input,
                Some(src) => replica.acts.slot(src.0),
            };
            node.layer
                .accumulate_param_grads(input, replica.grads.slot(i))?;
        }
        Ok(())
    }

    /// The output node's activation from the latest
    /// [`Graph::forward_in_place`] pass.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if no output is declared or no
    /// forward pass has run yet.
    pub fn output_activation(&self) -> Result<&Matrix<S>> {
        let output = self
            .output
            .ok_or_else(|| KmlError::InvalidConfig("graph has no output node declared".into()))?;
        if output.0 >= self.acts.len() {
            return Err(KmlError::InvalidConfig(
                "output activation requested before any forward pass".into(),
            ));
        }
        Ok(self.acts.slot(output.0))
    }

    /// Immutable access to the layers in topological order.
    pub fn layers(&self) -> impl Iterator<Item = &dyn Layer<S>> {
        self.nodes.iter().map(|n| n.layer.as_ref())
    }

    /// Mutable access to the layers in topological order.
    pub fn layers_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn Layer<S>>> {
        self.nodes.iter_mut().map(|n| &mut n.layer)
    }

    /// Total bytes of parameter storage across all layers.
    pub fn param_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.layer.param_bytes()).sum()
    }
}

impl<S: Scalar> Default for Graph<S> {
    fn default() -> Self {
        Graph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationLayer, Linear};
    use crate::KmlRng;
    use rand::SeedableRng;

    fn rng() -> KmlRng {
        KmlRng::seed_from_u64(11)
    }

    fn chain_graph() -> Graph<f64> {
        let mut rng = rng();
        let mut g = Graph::new();
        let a = g.add_source(Box::new(Linear::new(2, 3, &mut rng))).unwrap();
        let b = g
            .add_node(Box::new(ActivationLayer::new(Activation::Sigmoid)), a)
            .unwrap();
        let c = g
            .add_node(Box::new(Linear::new(3, 2, &mut rng)), b)
            .unwrap();
        g.set_output(c).unwrap();
        g
    }

    #[test]
    fn chain_forward_produces_expected_shape() {
        let mut g = chain_graph();
        let y = g
            .forward(&Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 0.5]]).unwrap())
            .unwrap();
        assert_eq!(y.shape(), (2, 2));
        assert!(g.is_chain());
    }

    #[test]
    fn backward_needs_forward_first() {
        let mut g = chain_graph();
        // Without a forward pass the layers have no cached activations.
        assert!(g.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn two_sources_rejected() {
        let mut rng = rng();
        let mut g: Graph<f64> = Graph::new();
        g.add_source(Box::new(Linear::new(2, 2, &mut rng))).unwrap();
        assert!(g.add_source(Box::new(Linear::new(2, 2, &mut rng))).is_err());
    }

    #[test]
    fn dangling_references_rejected() {
        let mut rng = rng();
        let mut g: Graph<f64> = Graph::new();
        let a = g.add_source(Box::new(Linear::new(2, 2, &mut rng))).unwrap();
        assert!(g
            .add_node(Box::new(Linear::new(2, 2, &mut rng)), NodeId(99))
            .is_err());
        assert!(g.set_output(NodeId(99)).is_err());
        g.set_output(a).unwrap();
    }

    #[test]
    fn forward_without_output_declared_is_error() {
        let mut rng = rng();
        let mut g: Graph<f64> = Graph::new();
        g.add_source(Box::new(Linear::new(2, 2, &mut rng))).unwrap();
        assert!(g.forward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn fan_out_graph_is_not_chain_and_sums_gradients() {
        // x -> lin -> {sig, relu consumed nowhere}: make both consumed by
        // building y = sig(h) where h also feeds relu -> output? A single
        // output graph: h -> sigmoid -> out, h -> relu (dead end). The relu
        // branch is dead (not on output path) and must not contribute.
        let mut rng = rng();
        let mut g: Graph<f64> = Graph::new();
        let h = g.add_source(Box::new(Linear::new(2, 2, &mut rng))).unwrap();
        let s = g
            .add_node(Box::new(ActivationLayer::new(Activation::Sigmoid)), h)
            .unwrap();
        let _dead = g
            .add_node(Box::new(ActivationLayer::new(Activation::Relu)), h)
            .unwrap();
        g.set_output(s).unwrap();
        assert!(!g.is_chain());

        let x = Matrix::from_rows(&[vec![0.3, -0.7]]).unwrap();
        let y = g.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 2));
        let gin = g
            .backward(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap())
            .unwrap();
        assert_eq!(gin.shape(), (1, 2));
        assert!(gin.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn graph_gradient_matches_finite_difference_end_to_end() {
        let mut g = chain_graph();
        let x = Matrix::from_rows(&[vec![0.4, -0.9]]).unwrap();
        let coeff = Matrix::from_rows(&[vec![1.0, -0.5]]).unwrap();
        g.forward(&x).unwrap();
        let gin = g.backward(&coeff).unwrap();

        let eps = 1e-6;
        for c in 0..2 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let lp: f64 = g
                .forward(&xp)
                .unwrap()
                .hadamard(&coeff)
                .unwrap()
                .as_slice()
                .iter()
                .sum();
            let lm: f64 = g
                .forward(&xm)
                .unwrap()
                .hadamard(&coeff)
                .unwrap()
                .as_slice()
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gin.get(0, c)).abs() < 1e-5,
                "input grad {c}: numeric {numeric}, analytic {}",
                gin.get(0, c)
            );
        }
    }

    #[test]
    fn param_grads_cover_all_linear_slots() {
        let mut g = chain_graph();
        g.forward(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap())
            .unwrap();
        g.backward(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap())
            .unwrap();
        // Two linear layers × (weights, bias) = 4 slots.
        assert_eq!(g.param_grads().len(), 4);
    }

    #[test]
    fn param_bytes_sums_layers() {
        let g = chain_graph();
        // (2*3 + 3) + (3*2 + 2) = 17 f64 params.
        assert_eq!(g.param_bytes(), 17 * 8);
    }
}
