//! CART decision trees (paper §4: "KML currently supports neural networks
//! and decision trees").
//!
//! The paper's readahead decision tree is the comparison model that the
//! neural network beats (55%/26% vs 82.5%/37.3% average improvement). This
//! is a standard CART classifier: greedy binary splits on continuous
//! features chosen by Gini impurity, with depth and minimum-samples
//! stopping rules.

use crate::dataset::Dataset;
use crate::{KmlError, Result};

/// Hyper-parameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer samples than this.
    pub min_samples_split: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 8,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained CART classifier.
///
/// # Example
///
/// ```
/// use kml_core::dtree::{DecisionTree, DecisionTreeConfig};
/// use kml_core::dataset::Dataset;
///
/// # fn main() -> kml_core::Result<()> {
/// let data = Dataset::from_rows(
///     &[vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
///     &[0, 0, 1, 1],
/// )?;
/// let tree = DecisionTree::fit(&data, DecisionTreeConfig::default())?;
/// assert_eq!(tree.predict(&[0.5])?, 0);
/// assert_eq!(tree.predict(&[10.5])?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    feature_dim: usize,
    num_classes: usize,
}

impl DecisionTree {
    /// Trains a tree on the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] for an empty dataset.
    pub fn fit(data: &Dataset, config: DecisionTreeConfig) -> Result<Self> {
        if data.is_empty() {
            return Err(KmlError::BadDataset("cannot fit tree on no samples".into()));
        }
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            feature_dim: data.feature_dim(),
            num_classes: data.num_classes(),
        };
        let all: Vec<usize> = (0..data.len()).collect();
        tree.grow(data, &all, 0, config);
        Ok(tree)
    }

    /// Predicted class for a feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] on dimension mismatch.
    pub fn predict(&self, features: &[f64]) -> Result<usize> {
        if features.len() != self.feature_dim {
            return Err(KmlError::ShapeMismatch {
                op: "tree predict",
                lhs: (1, features.len()),
                rhs: (1, self.feature_dim),
            });
        }
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { class } => return Ok(*class),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Classification accuracy on a dataset.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64> {
        let mut correct = 0;
        for i in 0..data.len() {
            let (f, y) = data.sample(i);
            if self.predict(f)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len().max(1) as f64)
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the deepest leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Approximate in-memory footprint of the tree in bytes (for the
    /// framework-overhead comparison in the paper's §5, where the Markov
    /// alternative consumed 94 MB vs KML's < 4 KB).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
    }

    /// Serializes the tree to the KML binary format (magic `KMLDTREE`).
    ///
    /// Trees deploy through files just like networks (§3.3): train in user
    /// space, load in the kernel module.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"KMLDTREE");
        buf.extend_from_slice(&1u32.to_le_bytes()); // version
        buf.extend_from_slice(&(self.feature_dim as u32).to_le_bytes());
        buf.extend_from_slice(&(self.num_classes as u32).to_le_bytes());
        buf.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for node in &self.nodes {
            match node {
                Node::Leaf { class } => {
                    buf.push(0);
                    buf.extend_from_slice(&(*class as u32).to_le_bytes());
                    buf.extend_from_slice(&[0u8; 16]); // pad to fixed width
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    buf.push(1);
                    buf.extend_from_slice(&(*feature as u32).to_le_bytes());
                    buf.extend_from_slice(&threshold.to_le_bytes());
                    buf.extend_from_slice(&(*left as u32).to_le_bytes());
                    buf.extend_from_slice(&(*right as u32).to_le_bytes());
                }
            }
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Deserializes a tree from the KML binary format.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadModelFile`] for truncated/corrupt data or
    /// structurally invalid trees (dangling child indices, bad classes).
    pub fn decode(bytes: &[u8]) -> Result<DecisionTree> {
        const HEADER: usize = 8 + 4 + 4 + 4 + 4;
        const NODE_BYTES: usize = 21;
        if bytes.len() < HEADER + 8 {
            return Err(KmlError::BadModelFile("tree file too short".into()));
        }
        if &bytes[..8] != b"KMLDTREE" {
            return Err(KmlError::BadModelFile("bad tree magic".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != 1 {
            return Err(KmlError::BadModelFile(format!(
                "unsupported tree version {version}"
            )));
        }
        let feature_dim = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let num_classes = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let count = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
        if bytes.len() != HEADER + count * NODE_BYTES + 8 {
            return Err(KmlError::BadModelFile(format!(
                "tree file length {} does not match {count} nodes",
                bytes.len()
            )));
        }
        if count == 0 {
            return Err(KmlError::BadModelFile("tree with no nodes".into()));
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        let computed = fnv1a(&bytes[..body_end]);
        if stored != computed {
            return Err(KmlError::BadModelFile(format!(
                "tree checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
        let mut nodes = Vec::with_capacity(count);
        let mut pos = HEADER;
        for _ in 0..count {
            let tag = bytes[pos];
            let node = match tag {
                0 => {
                    let class =
                        u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes"))
                            as usize;
                    if class >= num_classes {
                        return Err(KmlError::BadModelFile(format!(
                            "leaf class {class} out of range for {num_classes} classes"
                        )));
                    }
                    Node::Leaf { class }
                }
                1 => {
                    let feature =
                        u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes"))
                            as usize;
                    let threshold =
                        f64::from_le_bytes(bytes[pos + 5..pos + 13].try_into().expect("8 bytes"));
                    let left =
                        u32::from_le_bytes(bytes[pos + 13..pos + 17].try_into().expect("4 bytes"))
                            as usize;
                    let right =
                        u32::from_le_bytes(bytes[pos + 17..pos + 21].try_into().expect("4 bytes"))
                            as usize;
                    if feature >= feature_dim || left >= count || right >= count {
                        return Err(KmlError::BadModelFile(
                            "split node references out of range".into(),
                        ));
                    }
                    if !threshold.is_finite() {
                        return Err(KmlError::BadModelFile(
                            "split threshold is not finite".into(),
                        ));
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    }
                }
                other => {
                    return Err(KmlError::BadModelFile(format!(
                        "unknown tree node tag {other}"
                    )))
                }
            };
            nodes.push(node);
            pos += NODE_BYTES;
        }
        let tree = DecisionTree {
            nodes,
            feature_dim,
            num_classes,
        };
        // Reject cyclic/non-tree structures: every predict must terminate.
        tree.check_acyclic()?;
        Ok(tree)
    }

    /// Saves the tree to `path` in the KML binary format.
    ///
    /// # Errors
    ///
    /// Propagates platform I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        use kml_platform::fileops::KmlFile;
        let mut f = KmlFile::create(path)?;
        f.write_all(&self.encode())?;
        f.sync()?;
        Ok(())
    }

    /// Loads a tree from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and decoding failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<DecisionTree> {
        use kml_platform::fileops::KmlFile;
        let mut f = KmlFile::open(path)?;
        let bytes = f.read_to_end_vec()?;
        DecisionTree::decode(&bytes)
    }

    /// Verifies the node graph is a DAG reachable from the root with no
    /// cycles (a malicious file could otherwise hang `predict`).
    fn check_acyclic(&self) -> Result<()> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if visited[i] {
                return Err(KmlError::BadModelFile(
                    "tree nodes form a cycle or diamond".into(),
                ));
            }
            visited[i] = true;
            if let Node::Split { left, right, .. } = &self.nodes[i] {
                stack.push(*left);
                stack.push(*right);
            }
        }
        Ok(())
    }

    /// Grows a subtree over `indices`, returns its node id.
    fn grow(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        depth: usize,
        config: DecisionTreeConfig,
    ) -> usize {
        let majority = self.majority_class(data, indices);
        let stop = depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || self.is_pure(data, indices);
        if stop {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        let Some((feature, threshold)) = self.best_split(data, indices) else {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| data.sample(i).0[feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        // Reserve this node's slot before recursing so children get later ids.
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority }); // placeholder
        let left = self.grow(data, &left_idx, depth + 1, config);
        let right = self.grow(data, &right_idx, depth + 1, config);
        self.nodes[id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }

    fn majority_class(&self, data: &Dataset, indices: &[usize]) -> usize {
        let mut counts = vec![0usize; self.num_classes];
        for &i in indices {
            counts[data.sample(i).1] += 1;
        }
        // Ties break toward the lowest class index (deterministic).
        let mut best = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        best
    }

    fn is_pure(&self, data: &Dataset, indices: &[usize]) -> bool {
        let first = data.sample(indices[0]).1;
        indices.iter().all(|&i| data.sample(i).1 == first)
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let mut g = 1.0;
        for &c in counts {
            let p = c as f64 / total as f64;
            g -= p * p;
        }
        g
    }

    /// Finds the (feature, threshold) minimizing weighted Gini impurity,
    /// scanning candidate thresholds at midpoints between sorted values.
    fn best_split(&self, data: &Dataset, indices: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        for feature in 0..self.feature_dim {
            let mut vals: Vec<(f64, usize)> = indices
                .iter()
                .map(|&i| {
                    let (f, y) = data.sample(i);
                    (f[feature], y)
                })
                .collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

            let total = vals.len();
            let mut right_counts = vec![0usize; self.num_classes];
            for &(_, y) in &vals {
                right_counts[y] += 1;
            }
            let mut left_counts = vec![0usize; self.num_classes];
            for k in 0..total - 1 {
                let (v, y) = vals[k];
                left_counts[y] += 1;
                right_counts[y] -= 1;
                let next_v = vals[k + 1].0;
                if v == next_v {
                    continue; // cannot split between equal values
                }
                let n_left = k + 1;
                let n_right = total - n_left;
                let g = (n_left as f64 * Self::gini(&left_counts, n_left)
                    + n_right as f64 * Self::gini(&right_counts, n_right))
                    / total as f64;
                let threshold = (v + next_v) / 2.0;
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    best = Some((feature, threshold, g));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KmlRng;
    use rand::{Rng, SeedableRng};

    fn quadrant_data(n: usize, seed: u64) -> Dataset {
        // 4 classes, one per quadrant: trivially separable by two splits.
        let mut rng = KmlRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let class = match (x > 0.0, y > 0.0) {
                (false, false) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (true, true) => 3,
            };
            rows.push(vec![x, y]);
            labels.push(class);
        }
        Dataset::from_rows(&rows, &labels).unwrap()
    }

    #[test]
    fn tree_separates_quadrants_perfectly() {
        let data = quadrant_data(400, 1);
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        assert!(tree.accuracy(&data).unwrap() > 0.99);
        assert_eq!(tree.predict(&[-0.5, -0.5]).unwrap(), 0);
        assert_eq!(tree.predict(&[0.5, -0.5]).unwrap(), 1);
        assert_eq!(tree.predict(&[-0.5, 0.5]).unwrap(), 2);
        assert_eq!(tree.predict(&[0.5, 0.5]).unwrap(), 3);
    }

    #[test]
    fn tree_generalizes_to_held_out_data() {
        let train = quadrant_data(400, 2);
        let test = quadrant_data(200, 3);
        let tree = DecisionTree::fit(&train, DecisionTreeConfig::default()).unwrap();
        assert!(tree.accuracy(&test).unwrap() > 0.95);
    }

    #[test]
    fn max_depth_zero_gives_majority_leaf() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]], &[1, 1, 0]).unwrap();
        let tree = DecisionTree::fit(
            &data,
            DecisionTreeConfig {
                max_depth: 0,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        // Majority class is 1 regardless of input.
        assert_eq!(tree.predict(&[0.0]).unwrap(), 1);
        assert_eq!(tree.predict(&[2.0]).unwrap(), 1);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = quadrant_data(300, 4);
        let tree = DecisionTree::fit(
            &data,
            DecisionTreeConfig {
                max_depth: 3,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]], &[0, 0, 0]).unwrap();
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn identical_features_cannot_split() {
        // All feature values equal, labels mixed: must produce a single leaf.
        let data = Dataset::from_rows(&[vec![5.0], vec![5.0], vec![5.0], vec![5.0]], &[0, 1, 0, 1])
            .unwrap();
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[5.0]).unwrap(), 0);
    }

    #[test]
    fn predict_validates_dimension() {
        let data = quadrant_data(50, 6);
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        assert!(tree.predict(&[1.0]).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = Dataset::from_rows(&[vec![0.0]], &[0]).unwrap();
        let single = DecisionTree::fit(&data, DecisionTreeConfig::default());
        assert!(single.is_ok());
    }

    #[test]
    fn memory_footprint_is_small() {
        let data = quadrant_data(400, 7);
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        // The §5 comparison point: far under the 94 MB Markov model, and in
        // the same "few KB" class as the neural network.
        assert!(tree.memory_bytes() < 64 * 1024);
    }

    #[test]
    fn tree_file_round_trip_preserves_predictions() {
        let data = quadrant_data(300, 11);
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        let decoded = DecisionTree::decode(&tree.encode()).unwrap();
        for i in 0..data.len() {
            let (f, _) = data.sample(i);
            assert_eq!(tree.predict(f).unwrap(), decoded.predict(f).unwrap());
        }
        assert_eq!(decoded.node_count(), tree.node_count());
    }

    #[test]
    fn tree_file_corruption_rejected() {
        let data = quadrant_data(100, 12);
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        let good = tree.encode();
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0xff;
        assert!(DecisionTree::decode(&bad).is_err());
        for cut in [0, 8, 20, good.len() - 1] {
            assert!(DecisionTree::decode(&good[..cut]).is_err());
        }
    }

    #[test]
    fn cyclic_tree_files_rejected() {
        // Hand-craft a 2-node file where the split points at itself.
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0, 1]).unwrap();
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        let mut bytes = tree.encode();
        // Patch the root split's left child to 0 (itself), fix checksum.
        if tree.node_count() >= 2 {
            let header = 8 + 4 + 4 + 4 + 4;
            bytes[header + 13..header + 17].copy_from_slice(&0u32.to_le_bytes());
            let body_end = bytes.len() - 8;
            let sum = super::fnv1a(&bytes[..body_end]);
            let end = bytes.len();
            bytes[end - 8..].copy_from_slice(&sum.to_le_bytes());
            let err = DecisionTree::decode(&bytes).unwrap_err();
            assert!(err.to_string().contains("cycle"), "got: {err}");
        }
    }

    #[test]
    fn tree_save_load_files() {
        let data = quadrant_data(100, 13);
        let tree = DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap();
        let path = std::env::temp_dir().join(format!("kml-dtree-{}.kml", std::process::id()));
        tree.save(&path).unwrap();
        let loaded = DecisionTree::load(&path).unwrap();
        assert_eq!(loaded.node_count(), tree.node_count());
        std::fs::remove_file(path).unwrap();
    }
}
