//! Differentiable layer components (paper §2 "Layer and loss functions").
//!
//! Each layer implements forward propagation (inference) and backward
//! propagation (training); the paper's extensibility recipe — "(i) building
//! and initializing the layer, (ii) forward propagation, (iii) backward
//! propagation" — maps onto the three required members of [`Layer`].
//! Layers cache whatever forward state their backward pass needs, exactly
//! like the original C implementation.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{KmlError, KmlRng, Result};

/// Discriminates layer types for model files and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Fully connected (weights + bias).
    Linear,
    /// Element-wise sigmoid.
    Sigmoid,
    /// Element-wise rectified linear unit.
    Relu,
    /// Element-wise hyperbolic tangent.
    Tanh,
    /// Row-wise softmax.
    Softmax,
}

impl LayerKind {
    /// Stable numeric tag used in the KML model-file format.
    pub fn tag(self) -> u8 {
        match self {
            LayerKind::Linear => 1,
            LayerKind::Sigmoid => 2,
            LayerKind::Relu => 3,
            LayerKind::Tanh => 4,
            LayerKind::Softmax => 5,
        }
    }

    /// Inverse of [`LayerKind::tag`].
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadModelFile`] for unknown tags.
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            1 => LayerKind::Linear,
            2 => LayerKind::Sigmoid,
            3 => LayerKind::Relu,
            4 => LayerKind::Tanh,
            5 => LayerKind::Softmax,
            other => return Err(KmlError::BadModelFile(format!("unknown layer tag {other}"))),
        })
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LayerKind::Linear => "linear",
            LayerKind::Sigmoid => "sigmoid",
            LayerKind::Relu => "relu",
            LayerKind::Tanh => "tanh",
            LayerKind::Softmax => "softmax",
        };
        f.write_str(name)
    }
}

/// A mutable parameter together with its most recent gradient, handed to the
/// optimizer one slot at a time.
#[derive(Debug)]
pub struct ParamGrad<'a, S: Scalar> {
    /// The parameter matrix to update in place.
    pub param: &'a mut Matrix<S>,
    /// The gradient computed by the latest backward pass (same shape).
    pub grad: &'a Matrix<S>,
}

/// A differentiable component of a KML computation graph.
///
/// Implementations cache forward state internally, so `backward` must always
/// be preceded by a `forward` on the same instance (the chain discipline the
/// paper's serial training thread enforces).
pub trait Layer<S: Scalar>: std::fmt::Debug + Send + Sync {
    /// Which kind of layer this is (drives serialization).
    fn kind(&self) -> LayerKind;

    /// Forward propagation: consumes a `batch × in_dim` activation matrix,
    /// produces `batch × out_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if `input` does not match the
    /// layer's expected input width.
    fn forward(&mut self, input: &Matrix<S>) -> Result<Matrix<S>>;

    /// Backward propagation: consumes `∂L/∂output`, updates any internal
    /// parameter gradients, and returns `∂L/∂input`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if called before `forward`, or
    /// [`KmlError::ShapeMismatch`] if `grad_out` has the wrong shape.
    fn backward(&mut self, grad_out: &Matrix<S>) -> Result<Matrix<S>>;

    /// Forward propagation into a caller-provided scratch buffer (`out` is
    /// reshaped as needed). The default falls back to the allocating
    /// [`Layer::forward`]; the built-in layers override this with a
    /// zero-allocation implementation, which is the path
    /// [`crate::graph::Graph::forward_in_place`] drives.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::forward`].
    fn forward_into(&mut self, input: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        let y = self.forward(input)?;
        out.copy_from(&y);
        Ok(())
    }

    /// Backward propagation into a caller-provided scratch buffer for
    /// `∂L/∂input`. Default falls back to the allocating [`Layer::backward`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::backward`].
    fn backward_into(&mut self, grad_out: &Matrix<S>, grad_in: &mut Matrix<S>) -> Result<()> {
        let g = self.backward(grad_out)?;
        grad_in.copy_from(&g);
        Ok(())
    }

    /// Bytes of forward-state scratch this layer keeps resident between
    /// passes (cached activations, derivative staging) — counted into the
    /// measured scratch footprint alongside the graph's arena.
    fn scratch_bytes(&self) -> usize {
        0
    }

    /// Parameter/gradient slots for the optimizer (empty for activations).
    fn param_grads(&mut self) -> Vec<ParamGrad<'_, S>> {
        Vec::new()
    }

    /// Visits each parameter/gradient slot in [`Layer::param_grads`] order
    /// without building a `Vec` — the allocation-free path the training
    /// loop drives. The default delegates to `param_grads()` (allocating
    /// but correct) so external layer implementations keep updating.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    fn visit_param_grads(
        &mut self,
        f: &mut dyn FnMut(ParamGrad<'_, S>) -> Result<()>,
    ) -> Result<()> {
        for pg in self.param_grads() {
            f(pg)?;
        }
        Ok(())
    }

    /// Deep-copies this layer for a data-parallel training worker, or
    /// `None` if the layer cannot be row-sharded (the recurrent layers
    /// carry cross-row sequence state). Any `None` in a graph makes
    /// `Model::train_batch` keep the serial path.
    fn clone_box(&self) -> Option<Box<dyn Layer<S>>> {
        None
    }

    /// Zeroes the parameter-gradient accumulators so that subsequent
    /// [`Layer::accumulate_param_grads`] calls start fresh chains.
    fn reset_param_grads(&mut self) {}

    /// Accumulates parameter gradients from a worker replica's forward
    /// input and output gradient, **continuing** the accumulator chains
    /// already in the gradient buffers. Feeding row shards in ascending
    /// order reproduces the full-batch gradient bit-for-bit (the kernels
    /// walk rows in ascending order with exact partial store/reload).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if the shard shapes do not
    /// match the layer's gradient buffers.
    fn accumulate_param_grads(&mut self, input: &Matrix<S>, grad_out: &Matrix<S>) -> Result<()> {
        let _ = (input, grad_out);
        Ok(())
    }

    /// Read-only views of the parameters, in slot order (for serialization).
    fn params(&self) -> Vec<&Matrix<S>> {
        Vec::new()
    }

    /// Overwrites parameters from slices in slot order (for deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadModelFile`] on slot-count or shape mismatch.
    fn load_params(&mut self, params: &[Matrix<S>]) -> Result<()> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(KmlError::BadModelFile(format!(
                "layer {} takes no parameters but {} were supplied",
                self.kind(),
                params.len()
            )))
        }
    }

    /// Output width given an input width (`None` if incompatible).
    fn output_dim(&self, input_dim: usize) -> Option<usize>;

    /// Bytes of parameter storage (for §4 memory accounting).
    fn param_bytes(&self) -> usize {
        self.params().iter().map(|p| p.storage_bytes()).sum()
    }
}

/// Fully connected layer: `y = x·W + b` with `W: in×out`, `b: 1×out`.
///
/// The forward input is cached in a persistent buffer (not a fresh clone per
/// call), so steady-state forward/backward passes allocate nothing.
#[derive(Debug, Clone)]
pub struct Linear<S: Scalar> {
    weights: Matrix<S>,
    bias: Matrix<S>,
    grad_w: Matrix<S>,
    grad_b: Matrix<S>,
    cached_input: Matrix<S>,
    has_input: bool,
}

impl<S: Scalar> Linear<S> {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut KmlRng) -> Self {
        Linear {
            weights: Matrix::xavier_uniform(in_dim, out_dim, rng),
            bias: Matrix::zeros(1, out_dim),
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
            cached_input: Matrix::zeros(0, 0),
            has_input: false,
        }
    }

    /// Creates a layer from explicit parameters (used by model loading).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] unless `bias` is `1 × weights.cols()`.
    pub fn from_params(weights: Matrix<S>, bias: Matrix<S>) -> Result<Self> {
        if bias.rows() != 1 || bias.cols() != weights.cols() {
            return Err(KmlError::InvalidConfig(format!(
                "bias {}x{} does not match weights {}x{}",
                bias.rows(),
                bias.cols(),
                weights.rows(),
                weights.cols()
            )));
        }
        let (in_dim, out_dim) = weights.shape();
        Ok(Linear {
            weights,
            bias,
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
            cached_input: Matrix::zeros(0, 0),
            has_input: false,
        })
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix<S> {
        &self.weights
    }

    /// The bias row vector.
    pub fn bias(&self) -> &Matrix<S> {
        &self.bias
    }
}

impl<S: Scalar> Layer<S> for Linear<S> {
    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn forward(&mut self, input: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Matrix<S>) -> Result<Matrix<S>> {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in)?;
        Ok(grad_in)
    }

    fn forward_into(&mut self, input: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        input.matmul_into(&self.weights, out)?;
        out.add_row_broadcast_in_place(&self.bias)?;
        self.cached_input.copy_from(input);
        self.has_input = true;
        Ok(())
    }

    fn backward_into(&mut self, grad_out: &Matrix<S>, grad_in: &mut Matrix<S>) -> Result<()> {
        if !self.has_input {
            return Err(KmlError::InvalidConfig(
                "backward called before forward on linear layer".into(),
            ));
        }
        // dW = xᵀ · dy ; db = column sums of dy ; dx = dy · Wᵀ
        self.cached_input
            .transpose_matmul_into(grad_out, &mut self.grad_w)?;
        grad_out.sum_rows_into(&mut self.grad_b);
        grad_out.matmul_transpose_into(&self.weights, grad_in)
    }

    fn scratch_bytes(&self) -> usize {
        self.cached_input.storage_bytes()
    }

    fn param_grads(&mut self) -> Vec<ParamGrad<'_, S>> {
        vec![
            ParamGrad {
                param: &mut self.weights,
                grad: &self.grad_w,
            },
            ParamGrad {
                param: &mut self.bias,
                grad: &self.grad_b,
            },
        ]
    }

    fn visit_param_grads(
        &mut self,
        f: &mut dyn FnMut(ParamGrad<'_, S>) -> Result<()>,
    ) -> Result<()> {
        f(ParamGrad {
            param: &mut self.weights,
            grad: &self.grad_w,
        })?;
        f(ParamGrad {
            param: &mut self.bias,
            grad: &self.grad_b,
        })
    }

    fn clone_box(&self) -> Option<Box<dyn Layer<S>>> {
        Some(Box::new(self.clone()))
    }

    fn reset_param_grads(&mut self) {
        self.grad_w.fill(S::ZERO);
        self.grad_b.fill(S::ZERO);
    }

    fn accumulate_param_grads(&mut self, input: &Matrix<S>, grad_out: &Matrix<S>) -> Result<()> {
        input.transpose_matmul_acc_into(grad_out, &mut self.grad_w)?;
        grad_out.sum_rows_acc_into(&mut self.grad_b)
    }

    fn params(&self) -> Vec<&Matrix<S>> {
        vec![&self.weights, &self.bias]
    }

    fn load_params(&mut self, params: &[Matrix<S>]) -> Result<()> {
        if params.len() != 2 {
            return Err(KmlError::BadModelFile(format!(
                "linear layer expects 2 parameters, got {}",
                params.len()
            )));
        }
        if params[0].shape() != self.weights.shape() || params[1].shape() != self.bias.shape() {
            return Err(KmlError::BadModelFile(
                "linear layer parameter shapes do not match".into(),
            ));
        }
        self.weights = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn output_dim(&self, input_dim: usize) -> Option<usize> {
        (input_dim == self.in_dim()).then_some(self.out_dim())
    }
}

/// Which element-wise nonlinearity an [`ActivationLayer`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Logistic sigmoid — the activation the paper's readahead model uses.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

/// Element-wise activation layer (sigmoid / ReLU / tanh).
///
/// The backward-pass operand (output for sigmoid/tanh, input for ReLU) is
/// kept in a persistent buffer reused across passes, plus a staging buffer
/// for the derivative — no allocation in steady state.
#[derive(Debug, Clone)]
pub struct ActivationLayer<S: Scalar> {
    activation: Activation,
    cache: Matrix<S>,
    deriv: Matrix<S>,
    has_cache: bool,
}

impl<S: Scalar> ActivationLayer<S> {
    /// Creates an activation layer.
    pub fn new(activation: Activation) -> Self {
        ActivationLayer {
            activation,
            cache: Matrix::zeros(0, 0),
            deriv: Matrix::zeros(0, 0),
            has_cache: false,
        }
    }

    /// Which nonlinearity this layer applies.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl<S: Scalar> Layer<S> for ActivationLayer<S> {
    fn kind(&self) -> LayerKind {
        match self.activation {
            Activation::Sigmoid => LayerKind::Sigmoid,
            Activation::Relu => LayerKind::Relu,
            Activation::Tanh => LayerKind::Tanh,
        }
    }

    fn forward(&mut self, input: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Matrix<S>) -> Result<Matrix<S>> {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in)?;
        Ok(grad_in)
    }

    fn forward_into(&mut self, input: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        match self.activation {
            Activation::Sigmoid => input.sigmoid_into(out),
            Activation::Relu => input.map_into(out, Scalar::relu),
            Activation::Tanh => input.map_into(out, Scalar::tanh),
        }
        // ReLU differentiates from its input, sigmoid/tanh from their output.
        if self.activation == Activation::Relu {
            self.cache.copy_from(input);
        } else {
            self.cache.copy_from(out);
        }
        self.has_cache = true;
        Ok(())
    }

    fn backward_into(&mut self, grad_out: &Matrix<S>, grad_in: &mut Matrix<S>) -> Result<()> {
        if !self.has_cache {
            let name = match self.activation {
                Activation::Sigmoid => "sigmoid",
                Activation::Relu => "relu",
                Activation::Tanh => "tanh",
            };
            return Err(KmlError::InvalidConfig(format!(
                "backward before forward on {name}"
            )));
        }
        match self.activation {
            // σ' = σ(1-σ), from the cached output.
            Activation::Sigmoid => self
                .cache
                .map_into(&mut self.deriv, |v| v.mul(S::ONE.sub(v))),
            // tanh' = 1 - tanh², from the cached output.
            Activation::Tanh => self
                .cache
                .map_into(&mut self.deriv, |v| S::ONE.sub(v.mul(v))),
            // relu' = 1 for x > 0 else 0, from the cached input.
            Activation::Relu => {
                self.cache.map_into(
                    &mut self.deriv,
                    |v| if v > S::ZERO { S::ONE } else { S::ZERO },
                )
            }
        }
        grad_out.hadamard_into(&self.deriv, grad_in)
    }

    fn scratch_bytes(&self) -> usize {
        self.cache.storage_bytes() + self.deriv.storage_bytes()
    }

    fn clone_box(&self) -> Option<Box<dyn Layer<S>>> {
        Some(Box::new(self.clone()))
    }

    fn output_dim(&self, input_dim: usize) -> Option<usize> {
        Some(input_dim)
    }
}

/// Row-wise softmax layer.
///
/// Usually the final [`crate::loss::CrossEntropyLoss`] fuses softmax with the
/// loss for numerical stability; this standalone layer exists for inference
/// pipelines that want calibrated probabilities out of the graph.
#[derive(Debug, Clone)]
pub struct SoftmaxLayer<S: Scalar> {
    cached_output: Matrix<S>,
    has_output: bool,
    row_buf: Vec<f64>,
}

impl<S: Scalar> Default for SoftmaxLayer<S> {
    fn default() -> Self {
        SoftmaxLayer::new()
    }
}

impl<S: Scalar> SoftmaxLayer<S> {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        SoftmaxLayer {
            cached_output: Matrix::zeros(0, 0),
            has_output: false,
            row_buf: Vec::new(),
        }
    }
}

impl<S: Scalar> Layer<S> for SoftmaxLayer<S> {
    fn kind(&self) -> LayerKind {
        LayerKind::Softmax
    }

    fn forward(&mut self, input: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Matrix<S>) -> Result<Matrix<S>> {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in)?;
        Ok(grad_in)
    }

    fn forward_into(&mut self, input: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        let (rows, cols) = input.shape();
        out.ensure_shape(rows, cols);
        for r in 0..rows {
            self.row_buf.clear();
            self.row_buf.extend(input.row(r).iter().map(|v| v.to_f64()));
            crate::math::softmax_in_place(&mut self.row_buf);
            for (o, v) in out.row_mut(r).iter_mut().zip(&self.row_buf) {
                *o = S::from_f64(*v);
            }
        }
        self.cached_output.copy_from(out);
        self.has_output = true;
        Ok(())
    }

    fn backward_into(&mut self, grad_out: &Matrix<S>, grad_in: &mut Matrix<S>) -> Result<()> {
        if !self.has_output {
            return Err(KmlError::InvalidConfig(
                "backward before forward on softmax".into(),
            ));
        }
        let s = &self.cached_output;
        if s.shape() != grad_out.shape() {
            return Err(KmlError::ShapeMismatch {
                op: "softmax backward",
                lhs: s.shape(),
                rhs: grad_out.shape(),
            });
        }
        // Jacobian-vector product per row: dx = s ⊙ (dy − (dy·s)·1)
        grad_in.ensure_shape(s.rows(), s.cols());
        for r in 0..s.rows() {
            let srow = s.row(r);
            let gyrow = grad_out.row(r);
            let dot: f64 = srow
                .iter()
                .zip(gyrow)
                .map(|(&a, &b)| a.to_f64() * b.to_f64())
                .sum();
            for ((g, &sv), &gy) in grad_in.row_mut(r).iter_mut().zip(srow).zip(gyrow) {
                *g = S::from_f64(sv.to_f64() * (gy.to_f64() - dot));
            }
        }
        Ok(())
    }

    fn scratch_bytes(&self) -> usize {
        self.cached_output.storage_bytes() + self.row_buf.capacity() * std::mem::size_of::<f64>()
    }

    fn clone_box(&self) -> Option<Box<dyn Layer<S>>> {
        Some(Box::new(self.clone()))
    }

    fn output_dim(&self, input_dim: usize) -> Option<usize> {
        Some(input_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> KmlRng {
        KmlRng::seed_from_u64(42)
    }

    /// Numerically checks `backward` of `layer` against finite differences of
    /// a scalar objective `L = sum(forward(x) ⊙ coeff)`.
    fn check_input_gradient(layer: &mut dyn Layer<f64>, x: &Matrix<f64>) {
        let y = layer.forward(x).unwrap();
        // Arbitrary fixed coefficients make L sensitive to every output.
        let coeff = Matrix::from_f64_vec(
            y.rows(),
            y.cols(),
            &(0..y.len())
                .map(|i| 0.3 + 0.1 * i as f64)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let grad_in = layer.backward(&coeff).unwrap();

        let eps = 1e-6;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lp: f64 = layer
                    .forward(&xp)
                    .unwrap()
                    .hadamard(&coeff)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .sum();
                let lm: f64 = layer
                    .forward(&xm)
                    .unwrap()
                    .hadamard(&coeff)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .sum();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad_in.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "grad mismatch at ({r},{c}): numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn linear_forward_matches_manual() {
        let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let mut layer = Linear::from_params(w, b).unwrap();
        let x = Matrix::row_vector(&[1.0, 1.0]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn linear_input_gradient_is_correct() {
        let mut layer = Linear::<f64>::new(3, 4, &mut rng());
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.25, -0.75]]).unwrap();
        check_input_gradient(&mut layer, &x);
    }

    #[test]
    fn linear_weight_gradient_is_correct() {
        let mut layer = Linear::<f64>::new(2, 2, &mut rng());
        let x = Matrix::from_rows(&[vec![0.7, -0.3], vec![0.2, 0.9]]).unwrap();
        let y = layer.forward(&x).unwrap();
        let coeff = Matrix::from_f64_vec(y.rows(), y.cols(), &[1.0, 0.5, -0.25, 2.0]).unwrap();
        layer.backward(&coeff).unwrap();
        let analytic = layer.grad_w.clone();

        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let orig = layer.weights.get(r, c);
                layer.weights.set(r, c, orig + eps);
                let lp: f64 = layer
                    .forward(&x)
                    .unwrap()
                    .hadamard(&coeff)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .sum();
                layer.weights.set(r, c, orig - eps);
                let lm: f64 = layer
                    .forward(&x)
                    .unwrap()
                    .hadamard(&coeff)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .sum();
                layer.weights.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-5,
                    "dW({r},{c}): numeric {numeric}, analytic {}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn sigmoid_gradient_is_correct() {
        let mut layer = ActivationLayer::<f64>::new(Activation::Sigmoid);
        let x = Matrix::from_rows(&[vec![-2.0, 0.0, 3.0]]).unwrap();
        check_input_gradient(&mut layer, &x);
    }

    #[test]
    fn tanh_gradient_is_correct() {
        let mut layer = ActivationLayer::<f64>::new(Activation::Tanh);
        let x = Matrix::from_rows(&[vec![-1.0, 0.5, 2.0]]).unwrap();
        check_input_gradient(&mut layer, &x);
    }

    #[test]
    fn relu_gradient_is_correct_away_from_kink() {
        let mut layer = ActivationLayer::<f64>::new(Activation::Relu);
        let x = Matrix::from_rows(&[vec![-2.0, 0.5, 3.0, -0.25]]).unwrap();
        check_input_gradient(&mut layer, &x);
    }

    #[test]
    fn softmax_gradient_is_correct() {
        let mut layer = SoftmaxLayer::<f64>::new();
        let x = Matrix::from_rows(&[vec![0.1, -0.7, 1.3]]).unwrap();
        check_input_gradient(&mut layer, &x);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut layer = SoftmaxLayer::<f64>::new();
        let x = Matrix::from_rows(&[vec![5.0, 1.0, 1.0], vec![-3.0, 0.0, 3.0]]).unwrap();
        let y = layer.forward(&x).unwrap();
        for r in 0..2 {
            let sum: f64 = y.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
        assert_eq!(y.argmax_row(0), 0);
        assert_eq!(y.argmax_row(1), 2);
    }

    #[test]
    fn backward_before_forward_is_an_error() {
        let mut layer = Linear::<f64>::new(2, 2, &mut rng());
        let g = Matrix::zeros(1, 2);
        assert!(matches!(
            layer.backward(&g),
            Err(KmlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn linear_rejects_mismatched_bias() {
        let w = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(1, 2);
        assert!(Linear::from_params(w, b).is_err());
    }

    #[test]
    fn layer_kind_tags_round_trip() {
        for kind in [
            LayerKind::Linear,
            LayerKind::Sigmoid,
            LayerKind::Relu,
            LayerKind::Tanh,
            LayerKind::Softmax,
        ] {
            assert_eq!(LayerKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(LayerKind::from_tag(99).is_err());
    }

    #[test]
    fn param_bytes_counts_weights_and_bias() {
        let layer = Linear::<f32>::new(5, 10, &mut rng());
        assert_eq!(layer.param_bytes(), (5 * 10 + 10) * 4);
    }

    #[test]
    fn load_params_validates_shape() {
        let mut layer = Linear::<f64>::new(2, 2, &mut rng());
        let bad = vec![Matrix::zeros(3, 3), Matrix::zeros(1, 3)];
        assert!(layer.load_params(&bad).is_err());
        let good = vec![Matrix::identity(2), Matrix::zeros(1, 2)];
        layer.load_params(&good).unwrap();
        assert_eq!(layer.weights(), &Matrix::identity(2));
    }
}
