//! From-scratch math approximations (paper §2 "Math and matrix operations").
//!
//! The kernel offers no `libm`, so KML "implemented must-have functions such
//! as logarithm, softmax, and logistic from scratch using approximation
//! algorithms". This module is that layer: every transcendental used by the
//! library is computed here with classic range-reduction + polynomial /
//! iterative schemes, using only `f64` arithmetic primitives (`+ - * /`) and
//! integer bit manipulation. Accuracy targets are documented per function and
//! locked in by tests against `std` implementations.

/// Natural exponential via range reduction and an order-11 Taylor core.
///
/// Reduces `x = k·ln2 + r` with `|r| ≤ ln2/2`, evaluates the Taylor series of
/// `e^r` (converges fast on the reduced range), and reassembles with an exact
/// power-of-two scale. Relative error < 1e-13 on `[-700, 700]`.
///
/// # Example
///
/// ```
/// let y = kml_core::math::exp(1.0);
/// assert!((y - std::f64::consts::E).abs() < 1e-12);
/// ```
#[inline]
pub fn exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    // Overflow / underflow clamps for f64.
    if x > 709.78 {
        return f64::INFINITY;
    }
    if x < -745.0 {
        return 0.0;
    }
    const LN2: f64 = std::f64::consts::LN_2;
    // x = k*ln2 + r. The k computation must stay a division: multiplying
    // by a precomputed 1/ln2 can flip k near half-integer quotients.
    let k = (x / LN2 + if x >= 0.0 { 0.5 } else { -0.5 }) as i64;
    let r = x - (k as f64) * LN2;
    // Taylor series e^r = sum r^n / n! for |r| <= ln2/2 ≈ 0.347, evaluated
    // with term_n = term_{n-1} · (r/n) exactly like the original loop — but
    // only six of the thirteen r/n quotients need a real division. The rest
    // are exact power-of-two scalings of those (r/2 = r·½, r/6 = (r/3)·½,
    // r/12 = (r/3)·¼, …): |r/n| stays far from subnormals, so scaling by
    // ½/¼/⅛ commutes with rounding and each product is bit-identical to the
    // divided form. r/9 keeps its own division — (r/3)/3 would round twice.
    // The six divisions are independent, so they pipeline instead of
    // serializing on the divider the way the loop-carried r/n chain did.
    let r3 = r / 3.0;
    let r5 = r / 5.0;
    let r7 = r / 7.0;
    let r9 = r / 9.0;
    let r11 = r / 11.0;
    let r13 = r / 13.0;
    let mut term = r;
    let mut sum = 1.0 + term;
    term *= r * 0.5;
    sum += term;
    term *= r3;
    sum += term;
    term *= r * 0.25;
    sum += term;
    term *= r5;
    sum += term;
    term *= r3 * 0.5;
    sum += term;
    term *= r7;
    sum += term;
    term *= r * 0.125;
    sum += term;
    term *= r9;
    sum += term;
    term *= r5 * 0.5;
    sum += term;
    term *= r11;
    sum += term;
    term *= r3 * 0.25;
    sum += term;
    term *= r13;
    sum += term;
    scale_by_pow2(sum, k as i32)
}

/// Multiplies `x` by `2^k` exactly using exponent-field manipulation.
fn scale_by_pow2(x: f64, k: i32) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let bits = x.to_bits();
    let exp_bits = ((bits >> 52) & 0x7ff) as i64;
    let new_exp = exp_bits + k as i64;
    if new_exp <= 0 {
        // Subnormal territory: fall back to repeated halving (rare, cold path).
        let mut y = x;
        for _ in 0..(-k) {
            y *= 0.5;
        }
        return y;
    }
    if new_exp >= 0x7ff {
        return if x > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    f64::from_bits((bits & !(0x7ffu64 << 52)) | ((new_exp as u64) << 52))
}

/// Natural logarithm via exponent extraction and the `atanh` series.
///
/// Writes `x = m·2^e` with `m ∈ [√½, √2)`, then `ln m = 2·atanh((m-1)/(m+1))`
/// evaluated as an odd polynomial. Relative error < 1e-14 for normal inputs.
///
/// Returns NaN for negative inputs and `-inf` for zero, matching `f64::ln`.
///
/// # Example
///
/// ```
/// assert!((kml_core::math::ln(10.0) - 10.0_f64.ln()).abs() < 1e-13);
/// ```
pub fn ln(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x.is_infinite() {
        return f64::INFINITY;
    }
    let bits = x.to_bits();
    let mut exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut mant = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if exp == -1023 {
        // Subnormal: normalize by scaling up.
        let y = x * scale_by_pow2(1.0, 60);
        return ln(y) - 60.0 * std::f64::consts::LN_2;
    }
    // Bring mantissa into [sqrt(1/2), sqrt(2)) for fast series convergence.
    const SQRT2: f64 = std::f64::consts::SQRT_2;
    if mant > SQRT2 {
        mant *= 0.5;
        exp += 1;
    }
    let t = (mant - 1.0) / (mant + 1.0);
    let t2 = t * t;
    // 2*atanh(t) = 2t (1 + t²/3 + t⁴/5 + ...)
    let mut sum = 0.0f64;
    let mut power = 1.0f64;
    for n in 0..13 {
        sum += power / (2 * n + 1) as f64;
        power *= t2;
    }
    2.0 * t * sum + (exp as f64) * std::f64::consts::LN_2
}

/// Logistic sigmoid `1/(1+e^{-x})`, numerically stable on both tails.
///
/// # Example
///
/// ```
/// assert_eq!(kml_core::math::sigmoid(0.0), 0.5);
/// assert!(kml_core::math::sigmoid(40.0) > 0.999999);
/// ```
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    // One exp of -|x| replaces the classic two-sided branch: for x ≥ 0 the
    // argument is -x and for x < 0 it is x, exactly the operand each branch
    // used, so the result is bit-identical. The payoff is predictability —
    // exp's internal sign test always sees a non-positive argument, so in a
    // loop over mixed-sign activations every branch is static and several
    // elements' Taylor chains stay in flight at once.
    let e = exp(-x.abs());
    let num = if x >= 0.0 { 1.0 } else { e };
    num / (1.0 + e)
}

/// Four-lane sigmoid, bit-identical to [`sigmoid`] per lane.
///
/// The straight-line core repeats [`exp`]'s arithmetic op-for-op across four
/// independent lanes, which the SLP vectorizer turns into packed SSE2
/// arithmetic — crucially one packed divide per `r/n` quotient instead of
/// four serialized scalar divides (the divider, not the multiply chain, is
/// what bounds the scalar path). Any lane outside `(-700, 700)` — the
/// clamps, NaN, the subnormal band — sends the whole quad down the scalar
/// function, so every special case keeps its exact scalar bits.
#[inline]
pub fn sigmoid4(x: [f64; 4]) -> [f64; 4] {
    let mut easy = true;
    for &xi in &x {
        // Comparison is false for NaN, so NaN lanes also fall back.
        easy &= xi.abs() < 700.0;
    }
    if !easy {
        return [sigmoid(x[0]), sigmoid(x[1]), sigmoid(x[2]), sigmoid(x[3])];
    }
    sigmoid_core(&x)
}

/// Sixteen-lane sigmoid, bit-identical to [`sigmoid`] per lane.
///
/// Four independent quad-chains in flight at once: the Taylor recurrence in
/// [`exp_core`] is latency-bound at four lanes (each `term` update waits on
/// the previous one), so widening to sixteen keeps the multiplier and
/// divider pipelines full and roughly halves the per-element cost. Only
/// long activation slices can use this width — a single-row inference over
/// a 10- or 15-unit layer never reaches 16 contiguous elements, which is
/// exactly why batched serving pulls ahead of per-row serving on the same
/// arithmetic. Any hard lane (|x| ≥ 700, NaN) demotes the whole block to
/// [`sigmoid4`], preserving scalar special-case bits.
#[inline]
pub fn sigmoid16(x: &[f64; 16]) -> [f64; 16] {
    let mut easy = true;
    for &xi in x {
        easy &= xi.abs() < 700.0;
    }
    if !easy {
        let mut out = [0.0f64; 16];
        for (o4, i4) in out.chunks_exact_mut(4).zip(x.chunks_exact(4)) {
            o4.copy_from_slice(&sigmoid4([i4[0], i4[1], i4[2], i4[3]]));
        }
        return out;
    }
    sigmoid_core(x)
}

/// Lane-generic easy-path core: σ(x) = num / (1 + e) with `e = exp(-|x|)`,
/// exactly as in [`sigmoid`]. Caller guarantees every lane is in
/// `(-700, 700)`.
#[inline]
fn sigmoid_core<const N: usize>(x: &[f64; N]) -> [f64; N] {
    let mut neg = [0.0f64; N];
    for i in 0..N {
        neg[i] = -x[i].abs();
    }
    let e = exp_core(neg);
    let mut out = [0.0f64; N];
    for i in 0..N {
        let num = if x[i] >= 0.0 { 1.0 } else { e[i] };
        out[i] = num / (1.0 + e[i]);
    }
    out
}

/// Element-wise [`sigmoid`] of `xs` into `out`: sixteen lanes at a time
/// while the slice lasts, then four, then scalar.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sigmoid_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "sigmoid_slice length mismatch");
    let mut oc16 = out.chunks_exact_mut(16);
    let mut ic16 = xs.chunks_exact(16);
    for (o16, i16) in (&mut oc16).zip(&mut ic16) {
        o16.copy_from_slice(&sigmoid16(i16.try_into().expect("exact chunk")));
    }
    let mut oc = oc16.into_remainder().chunks_exact_mut(4);
    let mut ic = ic16.remainder().chunks_exact(4);
    for (o4, i4) in (&mut oc).zip(&mut ic) {
        o4.copy_from_slice(&sigmoid4([i4[0], i4[1], i4[2], i4[3]]));
    }
    for (o, &v) in oc.into_remainder().iter_mut().zip(ic.remainder()) {
        *o = sigmoid(v);
    }
}

/// Lane-generic [`exp`] core. Caller guarantees every lane is in
/// `(-700, 700)` so none of the scalar function's clamp or subnormal
/// branches can fire; on that range each lane reproduces `exp` bit-for-bit
/// at any width (the per-lane op sequence never depends on `N`). Four
/// lanes saturate SSE2 register width; sixteen keep four independent
/// Taylor chains in flight so the multiplier pipeline stays full.
#[inline]
fn exp_core<const N: usize>(x: [f64; N]) -> [f64; N] {
    #[inline(always)]
    fn vdiv<const N: usize>(a: [f64; N], d: f64) -> [f64; N] {
        let mut o = [0.0f64; N];
        for i in 0..N {
            o[i] = a[i] / d;
        }
        o
    }
    #[inline(always)]
    fn vmuls<const N: usize>(a: [f64; N], s: f64) -> [f64; N] {
        let mut o = [0.0f64; N];
        for i in 0..N {
            o[i] = a[i] * s;
        }
        o
    }
    #[inline(always)]
    fn vmul<const N: usize>(a: [f64; N], b: [f64; N]) -> [f64; N] {
        let mut o = [0.0f64; N];
        for i in 0..N {
            o[i] = a[i] * b[i];
        }
        o
    }
    #[inline(always)]
    fn vadd<const N: usize>(a: [f64; N], b: [f64; N]) -> [f64; N] {
        let mut o = [0.0f64; N];
        for i in 0..N {
            o[i] = a[i] + b[i];
        }
        o
    }
    const LN2: f64 = std::f64::consts::LN_2;
    // Same reduction as [`exp`]: the quotient stays a division, the ±0.5
    // rounding bias a select. (`x - kf·LN2` equals `x + kf·(-LN2)` exactly —
    // IEEE sign flips are exact — so the fused form below keeps `r`'s bits.)
    let q = vdiv(x, LN2);
    let mut k = [0i64; N];
    let mut kf = [0.0f64; N];
    for i in 0..N {
        let half = if x[i] >= 0.0 { 0.5 } else { -0.5 };
        k[i] = (q[i] + half) as i64;
        kf[i] = k[i] as f64;
    }
    let r = vadd(x, vmuls(kf, -LN2));
    // The [`exp`] Taylor chain, lane-parallel: identical term/sum updates in
    // identical order, so each lane's rounding matches the scalar walk.
    let r3 = vdiv(r, 3.0);
    let r5 = vdiv(r, 5.0);
    let r7 = vdiv(r, 7.0);
    let r9 = vdiv(r, 9.0);
    let r11 = vdiv(r, 11.0);
    let r13 = vdiv(r, 13.0);
    let mut term = r;
    let mut sum = vadd([1.0; N], term);
    term = vmul(term, vmuls(r, 0.5));
    sum = vadd(sum, term);
    term = vmul(term, r3);
    sum = vadd(sum, term);
    term = vmul(term, vmuls(r, 0.25));
    sum = vadd(sum, term);
    term = vmul(term, r5);
    sum = vadd(sum, term);
    term = vmul(term, vmuls(r3, 0.5));
    sum = vadd(sum, term);
    term = vmul(term, r7);
    sum = vadd(sum, term);
    term = vmul(term, vmuls(r, 0.125));
    sum = vadd(sum, term);
    term = vmul(term, r9);
    sum = vadd(sum, term);
    term = vmul(term, vmuls(r5, 0.5));
    sum = vadd(sum, term);
    term = vmul(term, r11);
    sum = vadd(sum, term);
    term = vmul(term, vmuls(r3, 0.25));
    sum = vadd(sum, term);
    term = vmul(term, r13);
    sum = vadd(sum, term);
    // In-range scale_by_pow2: `sum` is never zero and the shifted exponent
    // stays inside (0, 0x7ff), so the bit splice needs no branches.
    let mut out = [0.0f64; N];
    for i in 0..N {
        let bits = sum[i].to_bits();
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let new_exp = (exp_bits + k[i]) as u64;
        out[i] = f64::from_bits((bits & !(0x7ffu64 << 52)) | (new_exp << 52));
    }
    out
}

/// Hyperbolic tangent via the stable identity `tanh(x) = 2σ(2x) − 1`.
///
/// # Example
///
/// ```
/// assert!((kml_core::math::tanh(0.5) - 0.5_f64.tanh()).abs() < 1e-12);
/// ```
#[inline]
pub fn tanh(x: f64) -> f64 {
    2.0 * sigmoid(2.0 * x) - 1.0
}

/// Square root by Newton–Raphson on a bit-level initial guess.
///
/// Returns NaN for negative inputs. Relative error < 1e-15.
///
/// # Example
///
/// ```
/// assert!((kml_core::math::sqrt(2.0) - std::f64::consts::SQRT_2).abs() < 1e-14);
/// ```
pub fn sqrt(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 || x.is_infinite() {
        return x;
    }
    // Initial guess: halve the exponent (classic bit hack for doubles).
    let guess = f64::from_bits((x.to_bits() >> 1) + (1023u64 << 51));
    let mut y = guess;
    for _ in 0..5 {
        y = 0.5 * (y + x / y);
    }
    y
}

/// In-place softmax over `v` with max-subtraction for numerical stability.
///
/// After the call `v` sums to 1 (within FP error) and every element is in
/// `(0, 1]`. Empty slices are left untouched.
///
/// # Example
///
/// ```
/// let mut v = [1.0, 2.0, 3.0];
/// kml_core::math::softmax_in_place(&mut v);
/// let sum: f64 = v.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-12);
/// assert!(v[2] > v[1] && v[1] > v[0]);
/// ```
pub fn softmax_in_place(v: &mut [f64]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = exp(*x - max);
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// `log(softmax(v))[i]` computed stably (used by cross-entropy).
///
/// # Panics
///
/// Panics if `i >= v.len()` or `v` is empty.
pub fn log_softmax_at(v: &[f64], i: usize) -> f64 {
    assert!(!v.is_empty(), "log_softmax_at on empty slice");
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for &x in v {
        sum += exp(x - max);
    }
    (v[i] - max) - ln(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exp_matches_std_on_grid() {
        let mut x = -30.0;
        while x <= 30.0 {
            let got = exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-12, "exp({x}): got {got}, want {want}, rel {rel}");
            x += 0.37;
        }
    }

    #[test]
    fn exp_extremes() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(1000.0), f64::INFINITY);
        assert_eq!(exp(-1000.0), 0.0);
        assert!(exp(f64::NAN).is_nan());
    }

    #[test]
    fn ln_matches_std_on_grid() {
        for &x in &[
            1e-8,
            1e-3,
            0.5,
            1.0,
            2.0,
            std::f64::consts::E,
            10.0,
            12345.678,
            1e12,
        ] {
            let got = ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() < 1e-12 * want.abs().max(1.0),
                "ln({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn ln_edge_cases() {
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert_eq!(ln(1.0), 0.0);
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        // Subnormal input.
        let tiny = f64::MIN_POSITIVE / 8.0;
        assert!((ln(tiny) - tiny.ln()).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        for &x in &[-50.0, -5.0, -0.1, 0.0, 0.1, 5.0, 50.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!(
                (s + sigmoid(-x) - 1.0).abs() < 1e-12,
                "sigmoid symmetry at {x}"
            );
        }
    }

    #[test]
    fn sigmoid4_bit_identical_to_scalar_everywhere() {
        // Dense sweep across the vector range plus every special band:
        // clamps, the subnormal window (-745, -708), NaN, signed zero.
        let mut xs = vec![
            -750.0,
            -745.1,
            -710.0,
            -708.5,
            -700.0001,
            -699.9,
            0.0,
            -0.0,
            699.9,
            700.1,
            709.9,
            750.0,
            f64::NAN,
            1e-300,
            -1e-300,
        ];
        for i in 0..4000 {
            xs.push((i as f64) * 0.37 - 740.0);
        }
        while !xs.len().is_multiple_of(4) {
            xs.push(0.1);
        }
        let mut out = vec![0.0f64; xs.len()];
        sigmoid_slice(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            let want = sigmoid(x);
            assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "sigmoid4({x}): got {got:?}, want {want:?}"
            );
        }
    }

    #[test]
    fn sigmoid_slice_handles_remainder_lanes() {
        // Lengths crossing both the 16-lane and 4-lane chunk boundaries.
        for len in 0..40 {
            let xs: Vec<f64> = (0..len).map(|i| i as f64 * 0.7 - 2.0).collect();
            let mut out = vec![0.0f64; len];
            sigmoid_slice(&xs, &mut out);
            for (&x, &got) in xs.iter().zip(&out) {
                assert_eq!(got.to_bits(), sigmoid(x).to_bits());
            }
        }
    }

    #[test]
    fn sigmoid16_bit_identical_to_scalar_everywhere() {
        // Same sweep policy as the sigmoid4 test, taken 16 lanes at a time,
        // with hard lanes (clamps, NaN, subnormal band) planted at varying
        // positions so the whole-block demotion path is exercised too.
        let mut xs: Vec<f64> = (0..4000).map(|i| (i as f64) * 0.37 - 740.0).collect();
        let specials = [
            -750.0,
            -745.1,
            -710.0,
            -700.0001,
            0.0,
            -0.0,
            699.9,
            700.1,
            750.0,
            f64::NAN,
            1e-300,
        ];
        for (i, &s) in specials.iter().enumerate() {
            xs[i * 17 + i] = s; // stride 17 ≠ 16 → every lane index hit
        }
        for block in xs.chunks_exact(16) {
            let got = sigmoid16(block.try_into().unwrap());
            for (&x, &g) in block.iter().zip(&got) {
                let want = sigmoid(x);
                assert!(
                    g.to_bits() == want.to_bits() || (g.is_nan() && want.is_nan()),
                    "sigmoid16({x}): got {g:?}, want {want:?}"
                );
            }
        }
    }

    #[test]
    fn tanh_matches_std() {
        let mut x = -5.0;
        while x <= 5.0 {
            assert!((tanh(x) - x.tanh()).abs() < 1e-11, "tanh({x})");
            x += 0.19;
        }
    }

    #[test]
    fn sqrt_matches_std() {
        for &x in &[0.0, 1e-12, 0.25, 1.0, 2.0, 3.0, 1e6, 1e300] {
            let got = sqrt(x);
            let want = x.sqrt();
            if want == 0.0 {
                assert_eq!(got, 0.0);
            } else {
                assert!(((got - want) / want).abs() < 1e-14, "sqrt({x})");
            }
        }
        assert!(sqrt(-1.0).is_nan());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = vec![-2.0, 0.0, 3.0, 3.0];
        softmax_in_place(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
        assert!((v[2] - v[3]).abs() < 1e-12);
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let mut v = vec![1000.0, 1001.0, 999.0];
        softmax_in_place(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let v = vec![0.3, -1.2, 2.5];
        let mut s = v.clone();
        softmax_in_place(&mut s);
        for (i, &si) in s.iter().enumerate() {
            assert!((log_softmax_at(&v, i) - ln(si)).abs() < 1e-10);
        }
    }

    proptest! {
        #[test]
        fn prop_exp_ln_inverse(x in 1e-6f64..1e6) {
            let y = ln(exp(ln(x)).max(f64::MIN_POSITIVE));
            prop_assert!((y - ln(x)).abs() < 1e-9 * ln(x).abs().max(1.0));
        }

        #[test]
        fn prop_exp_positive(x in -700.0f64..700.0) {
            prop_assert!(exp(x) > 0.0);
        }

        #[test]
        fn prop_sigmoid_monotone(a in -100.0f64..100.0, d in 1e-6f64..10.0) {
            prop_assert!(sigmoid(a + d) >= sigmoid(a));
        }

        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-50.0f64..50.0, 1..16)) {
            let mut s = v.clone();
            softmax_in_place(&mut s);
            let sum: f64 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }

        #[test]
        fn prop_sqrt_squares_back(x in 1e-12f64..1e12) {
            let r = sqrt(x);
            prop_assert!(((r * r - x) / x).abs() < 1e-12);
        }
    }
}
