//! # kml-core — the KML machine-learning library
//!
//! From-scratch ML library reproducing §2 of *"A Machine Learning Framework
//! to Improve Storage System Performance"* (HotStorage '21). The original is
//! written so the **same code** runs in the Linux kernel and in user space;
//! this crate keeps that discipline by using only [`kml_platform`] wrappers
//! for memory, threads, files and by implementing every math primitive
//! (logarithm, exponential, sigmoid, softmax, ...) from scratch with
//! approximation algorithms — no `libm`-style shortcuts on the hot paths.
//!
//! ## Components (paper §2)
//!
//! - [`math`] — approximation algorithms for `exp`, `ln`, `sigmoid`,
//!   `softmax`, `tanh`, `sqrt`.
//! - [`matrix`] — dense row-major [`matrix::Matrix`] over any [`scalar::Scalar`]:
//!   `f32`, `f64`, and [`fixed::Fix32`] (Q16.16 fixed point), mirroring KML's
//!   *integer, floating-point, and double precision* matrix support (§3.1).
//! - [`layers`] — differentiable components (linear, sigmoid, ReLU, tanh,
//!   softmax) each implementing forward and backward propagation.
//! - [`loss`] — cross-entropy, mean-squared-error, and binary cross-entropy
//!   loss functions with gradients.
//! - [`graph`] — the computation DAG traversed for inference and reverse-mode
//!   automatic differentiation (back-propagation).
//! - [`scratch`] — the [`scratch::ScratchArena`] of reusable buffers behind
//!   the allocation-free steady-state inference/training hot path.
//! - [`optimizer`] — stochastic gradient descent with momentum.
//! - [`model`] — the high-level sequential model: build, train, infer,
//!   save/load in the KML binary model-file format ([`modelfile`]).
//! - [`dtree`] — CART decision trees (the paper's second model family).
//! - [`recurrent`] — Elman RNNs and LSTMs with full BPTT (the paper's §6
//!   future work, implemented).
//! - [`quant`] — post-training int8 quantization for inference (the §3.1
//!   compact-representation option), including the bounded-error Q8
//!   serving engine used by the fleet tier.
//! - [`simd`] — runtime-dispatched AVX2/AVX-512/NEON kernel backends,
//!   bit-identical to the scalar blocked kernels (`KML_FORCE_SCALAR=1`
//!   pins the scalar reference).
//! - [`dataset`] / [`validate`] — in-memory datasets, Z-score normalization,
//!   k-fold cross-validation.
//!
//! ## Quickstart
//!
//! ```
//! use kml_core::prelude::*;
//!
//! // 2-class toy problem: classify points by sign of x0 + x1.
//! let mut rng = KmlRng::seed_from_u64(7);
//! let mut xs = Vec::new();
//! let mut ys = Vec::new();
//! for _ in 0..200 {
//!     let a: f64 = rng.gen_range(-1.0..1.0);
//!     let b: f64 = rng.gen_range(-1.0..1.0);
//!     xs.push(vec![a, b]);
//!     ys.push(usize::from(a + b > 0.0));
//! }
//! let data = Dataset::from_rows(&xs, &ys).unwrap();
//!
//! let mut model = ModelBuilder::new(2)
//!     .linear(8)
//!     .sigmoid()
//!     .linear(2)
//!     .build::<f64>()
//!     .unwrap();
//! let mut sgd = Sgd::new(0.5, 0.9);
//! for _ in 0..300 {
//!     model.train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng).unwrap();
//! }
//! let acc = model.accuracy(&data).unwrap();
//! assert!(acc > 0.95, "accuracy was {acc}");
//! ```

pub mod dataset;
pub mod dtree;
pub mod fixed;
pub mod graph;
pub mod layers;
pub mod loss;
pub mod math;
pub mod matrix;
pub mod model;
pub mod modelfile;
pub mod optimizer;
pub mod quant;
pub mod recurrent;
pub mod scalar;
pub mod scratch;
pub mod simd;
pub mod validate;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::dtree::{DecisionTree, DecisionTreeConfig};
    pub use crate::layers::{Activation, Layer};
    pub use crate::loss::{BceLoss, CrossEntropyLoss, Loss, MseLoss};
    pub use crate::matrix::Matrix;
    pub use crate::model::{Model, ModelBuilder};
    pub use crate::optimizer::Sgd;
    pub use crate::scalar::Scalar;
    pub use crate::validate::{accuracy, k_fold_cross_validate};
    pub use crate::{KmlError, KmlRng};
    pub use rand::{Rng, SeedableRng};
}

/// The deterministic RNG used across the library (seedable for reproducible
/// experiments, as all paper experiments are scripted with fixed seeds).
pub type KmlRng = rand::rngs::StdRng;

/// Errors produced by kml-core.
#[derive(Debug, Clone, PartialEq)]
pub enum KmlError {
    /// Operand shapes are incompatible (e.g. matmul of `m×k` with `j×n`, `k != j`).
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left operand shape `(rows, cols)`.
        lhs: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A model or layer was configured inconsistently.
    InvalidConfig(String),
    /// The model file is corrupt or has an unsupported version.
    BadModelFile(String),
    /// The dataset is unusable (empty, ragged rows, label out of range...).
    BadDataset(String),
    /// An underlying platform operation failed.
    Platform(kml_platform::PlatformError),
}

impl std::fmt::Display for KmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmlError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            KmlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            KmlError::BadModelFile(msg) => write!(f, "bad model file: {msg}"),
            KmlError::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
            KmlError::Platform(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl std::error::Error for KmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KmlError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kml_platform::PlatformError> for KmlError {
    fn from(e: kml_platform::PlatformError) -> Self {
        KmlError::Platform(e)
    }
}

/// Result alias for kml-core operations.
pub type Result<T> = std::result::Result<T, KmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_mentions_shapes() {
        let e = KmlError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn platform_errors_convert() {
        let p = kml_platform::PlatformError::File("x".into());
        let e: KmlError = p.into();
        assert!(matches!(e, KmlError::Platform(_)));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KmlError>();
    }
}
