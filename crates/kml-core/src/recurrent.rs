//! Recurrent networks — the paper's §6 future work, implemented.
//!
//! "We also plan to support arbitrary computation DAGs (e.g., Recurrent
//! Neural Networks (RNNs)) and Long Short-Term Memory (LSTM)." This module
//! adds both as sequence classifiers: an Elman [`Rnn`] and an [`Lstm`],
//! each processing a `T × in_dim` sequence one timestep at a time and
//! emitting class logits from the final hidden state through a linear
//! head. Training is truncated-free full back-propagation through time
//! (BPTT) with the same SGD optimizer the feed-forward models use.
//!
//! In KML terms these enable *sequence-native* workload classification:
//! instead of hand-windowed summary features, the raw per-tracepoint
//! offset-delta stream is the input (see `seq_features` in the readahead
//! crate's tests and the `rnn_workloads` example).

use crate::layers::ParamGrad;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{KmlError, KmlRng, Result};

/// Elman recurrent network with a linear classification head:
///
/// `h_t = tanh(x_t·Wx + h_{t−1}·Wh + b)` ; `logits = h_T·Wo + bo`
#[derive(Debug, Clone)]
pub struct Rnn<S: Scalar> {
    wx: Matrix<S>,
    wh: Matrix<S>,
    b: Matrix<S>,
    wo: Matrix<S>,
    bo: Matrix<S>,
    grad_wx: Matrix<S>,
    grad_wh: Matrix<S>,
    grad_b: Matrix<S>,
    grad_wo: Matrix<S>,
    grad_bo: Matrix<S>,
    /// Cached per-step values from the last forward pass (for BPTT). The
    /// per-timestep buffers are grown once to the longest sequence seen and
    /// then reused, so steady-state training allocates nothing here.
    cache: RnnCache<S>,
    scratch: RnnScratch<S>,
}

#[derive(Debug, Clone)]
struct RnnCache<S: Scalar> {
    inputs: Vec<Matrix<S>>,
    hiddens: Vec<Matrix<S>>, // h_0 (zeros) .. h_T
    /// Timesteps valid from the last forward pass (0 = no forward yet).
    steps: usize,
}

/// Reusable intermediates for [`Rnn::forward`] / [`Rnn::backward`].
#[derive(Debug, Clone)]
struct RnnScratch<S: Scalar> {
    z: Matrix<S>,
    zh: Matrix<S>,
    dh: Matrix<S>,
    dz: Matrix<S>,
    tanh_deriv: Matrix<S>,
    tmp_wx: Matrix<S>,
    tmp_wh: Matrix<S>,
    tmp_b: Matrix<S>,
}

impl<S: Scalar> RnnScratch<S> {
    fn new() -> Self {
        RnnScratch {
            z: Matrix::zeros(0, 0),
            zh: Matrix::zeros(0, 0),
            dh: Matrix::zeros(0, 0),
            dz: Matrix::zeros(0, 0),
            tanh_deriv: Matrix::zeros(0, 0),
            tmp_wx: Matrix::zeros(0, 0),
            tmp_wh: Matrix::zeros(0, 0),
            tmp_b: Matrix::zeros(0, 0),
        }
    }
}

impl<S: Scalar> Rnn<S> {
    /// Creates a network with Xavier-initialized parameters.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, rng: &mut KmlRng) -> Self {
        Rnn {
            wx: Matrix::xavier_uniform(in_dim, hidden, rng),
            wh: Matrix::xavier_uniform(hidden, hidden, rng),
            b: Matrix::zeros(1, hidden),
            wo: Matrix::xavier_uniform(hidden, classes, rng),
            bo: Matrix::zeros(1, classes),
            grad_wx: Matrix::zeros(in_dim, hidden),
            grad_wh: Matrix::zeros(hidden, hidden),
            grad_b: Matrix::zeros(1, hidden),
            grad_wo: Matrix::zeros(hidden, classes),
            grad_bo: Matrix::zeros(1, classes),
            cache: RnnCache {
                inputs: Vec::new(),
                hiddens: Vec::new(),
                steps: 0,
            },
            scratch: RnnScratch::new(),
        }
    }

    /// Input width per timestep.
    pub fn in_dim(&self) -> usize {
        self.wx.rows()
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.wh.rows()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.wo.cols()
    }

    /// Bytes of parameter storage.
    pub fn param_bytes(&self) -> usize {
        [&self.wx, &self.wh, &self.b, &self.wo, &self.bo]
            .iter()
            .map(|m| m.storage_bytes())
            .sum()
    }

    /// Forward pass over a `T × in_dim` sequence; returns the class logits
    /// (1 × classes) from the final hidden state.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if the sequence width is wrong
    /// or [`KmlError::BadDataset`] for an empty sequence.
    pub fn forward(&mut self, seq: &Matrix<S>) -> Result<Matrix<S>> {
        if seq.cols() != self.in_dim() {
            return Err(KmlError::ShapeMismatch {
                op: "rnn forward",
                lhs: seq.shape(),
                rhs: (1, self.in_dim()),
            });
        }
        if seq.rows() == 0 {
            return Err(KmlError::BadDataset("empty sequence".into()));
        }
        let t_steps = seq.rows();
        let hidden = self.hidden_dim();
        // Grow the per-timestep buffers to this sequence length; once the
        // longest sequence has been seen they are reused verbatim.
        while self.cache.inputs.len() < t_steps {
            self.cache.inputs.push(Matrix::zeros(0, 0));
        }
        while self.cache.hiddens.len() < t_steps + 1 {
            self.cache.hiddens.push(Matrix::zeros(0, 0));
        }
        self.cache.hiddens[0].ensure_shape(1, hidden);
        self.cache.hiddens[0].fill(S::ZERO);
        for t in 0..t_steps {
            let x = &mut self.cache.inputs[t];
            x.ensure_shape(1, seq.cols());
            x.as_mut_slice().copy_from_slice(seq.row(t));
            x.matmul_into(&self.wx, &mut self.scratch.z)?;
            let (prev, next) = self.cache.hiddens.split_at_mut(t + 1);
            prev[t].matmul_into(&self.wh, &mut self.scratch.zh)?;
            self.scratch.z.axpy_in_place(&self.scratch.zh, S::ONE)?;
            self.scratch.z.add_row_broadcast_in_place(&self.b)?;
            self.scratch.z.map_into(&mut next[0], Scalar::tanh);
        }
        self.cache.steps = t_steps;
        let mut logits = self.cache.hiddens[t_steps].matmul(&self.wo)?;
        logits.add_row_broadcast_in_place(&self.bo)?;
        Ok(logits)
    }

    /// Full back-propagation through time from `grad_logits` (∂L/∂logits).
    /// Parameter gradients land in the internal slots for the optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if called before `forward`.
    pub fn backward(&mut self, grad_logits: &Matrix<S>) -> Result<()> {
        if self.cache.steps == 0 {
            return Err(KmlError::InvalidConfig(
                "rnn backward before forward".into(),
            ));
        }
        let t_steps = self.cache.steps;
        let h_last = &self.cache.hiddens[t_steps];

        h_last.transpose_matmul_into(grad_logits, &mut self.grad_wo)?;
        grad_logits.sum_rows_into(&mut self.grad_bo);
        grad_logits.matmul_transpose_into(&self.wo, &mut self.scratch.dh)?;

        self.grad_wx.fill(S::ZERO);
        self.grad_wh.fill(S::ZERO);
        self.grad_b.fill(S::ZERO);

        for t in (0..t_steps).rev() {
            let h_t = &self.cache.hiddens[t + 1];
            // dz = dh ⊙ (1 − h²)   (tanh')
            h_t.map_into(&mut self.scratch.tanh_deriv, |v| S::ONE.sub(v.mul(v)));
            self.scratch
                .dh
                .hadamard_into(&self.scratch.tanh_deriv, &mut self.scratch.dz)?;
            let dz = &self.scratch.dz;
            self.cache.inputs[t].transpose_matmul_into(dz, &mut self.scratch.tmp_wx)?;
            self.grad_wx.axpy_in_place(&self.scratch.tmp_wx, S::ONE)?;
            self.cache.hiddens[t].transpose_matmul_into(dz, &mut self.scratch.tmp_wh)?;
            self.grad_wh.axpy_in_place(&self.scratch.tmp_wh, S::ONE)?;
            dz.sum_rows_into(&mut self.scratch.tmp_b);
            self.grad_b.axpy_in_place(&self.scratch.tmp_b, S::ONE)?;
            self.scratch
                .dz
                .matmul_transpose_into(&self.wh, &mut self.scratch.dh)?;
        }
        Ok(())
    }

    /// Parameter/gradient slots for the optimizer.
    pub fn param_grads(&mut self) -> Vec<ParamGrad<'_, S>> {
        vec![
            ParamGrad {
                param: &mut self.wx,
                grad: &self.grad_wx,
            },
            ParamGrad {
                param: &mut self.wh,
                grad: &self.grad_wh,
            },
            ParamGrad {
                param: &mut self.b,
                grad: &self.grad_b,
            },
            ParamGrad {
                param: &mut self.wo,
                grad: &self.grad_wo,
            },
            ParamGrad {
                param: &mut self.bo,
                grad: &self.grad_bo,
            },
        ]
    }

    /// Visits every parameter/gradient slot in [`Rnn::param_grads`] order
    /// without allocating the slot `Vec`.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    pub fn visit_param_grads(
        &mut self,
        f: &mut dyn FnMut(ParamGrad<'_, S>) -> Result<()>,
    ) -> Result<()> {
        f(ParamGrad {
            param: &mut self.wx,
            grad: &self.grad_wx,
        })?;
        f(ParamGrad {
            param: &mut self.wh,
            grad: &self.grad_wh,
        })?;
        f(ParamGrad {
            param: &mut self.b,
            grad: &self.grad_b,
        })?;
        f(ParamGrad {
            param: &mut self.wo,
            grad: &self.grad_wo,
        })?;
        f(ParamGrad {
            param: &mut self.bo,
            grad: &self.grad_bo,
        })
    }

    /// Predicted class for a sequence (argmax of the logits).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rnn::forward`].
    pub fn predict(&mut self, seq: &Matrix<S>) -> Result<usize> {
        Ok(self.forward(seq)?.argmax_row(0))
    }
}

/// LSTM with a linear classification head.
///
/// Gates (row-vector convention, `[x, h]` via two weight matrices each):
///
/// ```text
/// i = σ(x·Wxi + h·Whi + bi)      f = σ(x·Wxf + h·Whf + bf)
/// o = σ(x·Wxo + h·Who + bo)      g = tanh(x·Wxg + h·Whg + bg)
/// c' = f ⊙ c + i ⊙ g             h' = o ⊙ tanh(c')
/// ```
#[derive(Debug, Clone)]
pub struct Lstm<S: Scalar> {
    /// Gate parameters, indexed i=0, f=1, o=2, g=3.
    wx: [Matrix<S>; 4],
    wh: [Matrix<S>; 4],
    b: [Matrix<S>; 4],
    head_w: Matrix<S>,
    head_b: Matrix<S>,
    grad_wx: [Matrix<S>; 4],
    grad_wh: [Matrix<S>; 4],
    grad_b: [Matrix<S>; 4],
    grad_head_w: Matrix<S>,
    grad_head_b: Matrix<S>,
    cache: Option<LstmCache<S>>,
}

#[derive(Debug, Clone)]
struct LstmCache<S: Scalar> {
    inputs: Vec<Matrix<S>>,
    /// Per step: gates [i, f, o, g].
    gates: Vec<[Matrix<S>; 4]>,
    /// c_0 .. c_T.
    cells: Vec<Matrix<S>>,
    /// h_0 .. h_T.
    hiddens: Vec<Matrix<S>>,
    /// tanh(c_t) per step (recomputed values cached for backward).
    tanh_c: Vec<Matrix<S>>,
}

const I: usize = 0;
const F: usize = 1;
const O: usize = 2;
const G: usize = 3;

impl<S: Scalar> Lstm<S> {
    /// Creates an LSTM with Xavier-initialized parameters and the standard
    /// forget-gate bias of 1 (helps gradient flow early in training).
    pub fn new(in_dim: usize, hidden: usize, classes: usize, rng: &mut KmlRng) -> Self {
        let wx = std::array::from_fn(|_| Matrix::xavier_uniform(in_dim, hidden, rng));
        let wh = std::array::from_fn(|_| Matrix::xavier_uniform(hidden, hidden, rng));
        let mut b: [Matrix<S>; 4] = std::array::from_fn(|_| Matrix::zeros(1, hidden));
        b[F].map_in_place(|_| S::ONE);
        Lstm {
            wx,
            wh,
            b,
            head_w: Matrix::xavier_uniform(hidden, classes, rng),
            head_b: Matrix::zeros(1, classes),
            grad_wx: std::array::from_fn(|_| Matrix::zeros(in_dim, hidden)),
            grad_wh: std::array::from_fn(|_| Matrix::zeros(hidden, hidden)),
            grad_b: std::array::from_fn(|_| Matrix::zeros(1, hidden)),
            grad_head_w: Matrix::zeros(hidden, classes),
            grad_head_b: Matrix::zeros(1, classes),
            cache: None,
        }
    }

    /// Input width per timestep.
    pub fn in_dim(&self) -> usize {
        self.wx[I].rows()
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.wh[I].rows()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.head_w.cols()
    }

    /// Bytes of parameter storage.
    pub fn param_bytes(&self) -> usize {
        let gates: usize = (0..4)
            .map(|k| {
                self.wx[k].storage_bytes() + self.wh[k].storage_bytes() + self.b[k].storage_bytes()
            })
            .sum();
        gates + self.head_w.storage_bytes() + self.head_b.storage_bytes()
    }

    /// Forward pass over a `T × in_dim` sequence; returns the class logits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rnn::forward`].
    pub fn forward(&mut self, seq: &Matrix<S>) -> Result<Matrix<S>> {
        if seq.cols() != self.in_dim() {
            return Err(KmlError::ShapeMismatch {
                op: "lstm forward",
                lhs: seq.shape(),
                rhs: (1, self.in_dim()),
            });
        }
        if seq.rows() == 0 {
            return Err(KmlError::BadDataset("empty sequence".into()));
        }
        let hidden = self.hidden_dim();
        let mut cache = LstmCache {
            inputs: Vec::with_capacity(seq.rows()),
            gates: Vec::with_capacity(seq.rows()),
            cells: vec![Matrix::zeros(1, hidden)],
            hiddens: vec![Matrix::zeros(1, hidden)],
            tanh_c: Vec::with_capacity(seq.rows()),
        };
        for t in 0..seq.rows() {
            let x = Matrix::row_vector(seq.row(t));
            let h_prev = cache.hiddens[t].clone();
            let c_prev = cache.cells[t].clone();
            let mut gates: [Matrix<S>; 4] = std::array::from_fn(|_| Matrix::zeros(1, hidden));
            for (k, gate) in gates.iter_mut().enumerate() {
                let z = x
                    .matmul(&self.wx[k])?
                    .add(&h_prev.matmul(&self.wh[k])?)?
                    .add_row_broadcast(&self.b[k])?;
                *gate = if k == G {
                    z.map(Scalar::tanh)
                } else {
                    z.map(Scalar::sigmoid)
                };
            }
            let c = gates[F]
                .hadamard(&c_prev)?
                .add(&gates[I].hadamard(&gates[G])?)?;
            let tanh_c = c.map(Scalar::tanh);
            let h = gates[O].hadamard(&tanh_c)?;
            cache.inputs.push(x);
            cache.gates.push(gates);
            cache.cells.push(c);
            cache.hiddens.push(h);
            cache.tanh_c.push(tanh_c);
        }
        let logits = cache
            .hiddens
            .last()
            .expect("at least h_0")
            .matmul(&self.head_w)?
            .add_row_broadcast(&self.head_b)?;
        self.cache = Some(cache);
        Ok(logits)
    }

    /// Full BPTT from `grad_logits`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if called before `forward`.
    pub fn backward(&mut self, grad_logits: &Matrix<S>) -> Result<()> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| KmlError::InvalidConfig("lstm backward before forward".into()))?;
        let t_steps = cache.inputs.len();
        let hidden = self.hidden_dim();

        let h_last = &cache.hiddens[t_steps];
        self.grad_head_w = h_last.transpose_matmul(grad_logits)?;
        self.grad_head_b = grad_logits.sum_rows();
        let mut dh = grad_logits.matmul_transpose(&self.head_w)?;
        let mut dc = Matrix::zeros(1, hidden);

        self.grad_wx = std::array::from_fn(|_| Matrix::zeros(self.in_dim(), hidden));
        self.grad_wh = std::array::from_fn(|_| Matrix::zeros(hidden, hidden));
        self.grad_b = std::array::from_fn(|_| Matrix::zeros(1, hidden));

        for t in (0..t_steps).rev() {
            let gates = &cache.gates[t];
            let c_prev = &cache.cells[t];
            let h_prev = &cache.hiddens[t];
            let tanh_c = &cache.tanh_c[t];

            // h = o ⊙ tanh(c):   do = dh ⊙ tanh(c) ; dc += dh ⊙ o ⊙ tanh'(c)
            let d_o = dh.hadamard(tanh_c)?;
            let tanh_deriv = tanh_c.map(|v| S::ONE.sub(v.mul(v)));
            dc = dc.add(&dh.hadamard(&gates[O])?.hadamard(&tanh_deriv)?)?;

            // c = f ⊙ c_prev + i ⊙ g
            let d_f = dc.hadamard(c_prev)?;
            let d_i = dc.hadamard(&gates[G])?;
            let d_g = dc.hadamard(&gates[I])?;

            // Pre-activation gradients: sigmoid' = s(1-s); tanh' = 1 - g².
            let dz = [
                d_i.hadamard(&gates[I].map(|v| v.mul(S::ONE.sub(v))))?,
                d_f.hadamard(&gates[F].map(|v| v.mul(S::ONE.sub(v))))?,
                d_o.hadamard(&gates[O].map(|v| v.mul(S::ONE.sub(v))))?,
                d_g.hadamard(&gates[G].map(|v| S::ONE.sub(v.mul(v))))?,
            ];

            let mut dh_next = Matrix::zeros(1, hidden);
            #[allow(clippy::needless_range_loop)] // k indexes four parallel arrays
            for k in 0..4 {
                self.grad_wx[k] =
                    self.grad_wx[k].add(&cache.inputs[t].transpose_matmul(&dz[k])?)?;
                self.grad_wh[k] = self.grad_wh[k].add(&h_prev.transpose_matmul(&dz[k])?)?;
                self.grad_b[k] = self.grad_b[k].add(&dz[k].sum_rows())?;
                dh_next = dh_next.add(&dz[k].matmul_transpose(&self.wh[k])?)?;
            }
            dh = dh_next;
            dc = dc.hadamard(&gates[F])?;
        }
        Ok(())
    }

    /// Parameter/gradient slots for the optimizer.
    pub fn param_grads(&mut self) -> Vec<ParamGrad<'_, S>> {
        let mut slots = Vec::with_capacity(14);
        let (wx, gwx) = (&mut self.wx, &self.grad_wx);
        for (p, g) in wx.iter_mut().zip(gwx) {
            slots.push(ParamGrad { param: p, grad: g });
        }
        for (p, g) in self.wh.iter_mut().zip(&self.grad_wh) {
            slots.push(ParamGrad { param: p, grad: g });
        }
        for (p, g) in self.b.iter_mut().zip(&self.grad_b) {
            slots.push(ParamGrad { param: p, grad: g });
        }
        slots.push(ParamGrad {
            param: &mut self.head_w,
            grad: &self.grad_head_w,
        });
        slots.push(ParamGrad {
            param: &mut self.head_b,
            grad: &self.grad_head_b,
        });
        slots
    }

    /// Visits every parameter/gradient slot in [`Lstm::param_grads`] order
    /// without allocating the slot `Vec`.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    pub fn visit_param_grads(
        &mut self,
        f: &mut dyn FnMut(ParamGrad<'_, S>) -> Result<()>,
    ) -> Result<()> {
        for (p, g) in self.wx.iter_mut().zip(&self.grad_wx) {
            f(ParamGrad { param: p, grad: g })?;
        }
        for (p, g) in self.wh.iter_mut().zip(&self.grad_wh) {
            f(ParamGrad { param: p, grad: g })?;
        }
        for (p, g) in self.b.iter_mut().zip(&self.grad_b) {
            f(ParamGrad { param: p, grad: g })?;
        }
        f(ParamGrad {
            param: &mut self.head_w,
            grad: &self.grad_head_w,
        })?;
        f(ParamGrad {
            param: &mut self.head_b,
            grad: &self.grad_head_b,
        })
    }

    /// Predicted class for a sequence.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lstm::forward`].
    pub fn predict(&mut self, seq: &Matrix<S>) -> Result<usize> {
        Ok(self.forward(seq)?.argmax_row(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{CrossEntropyLoss, Loss, TargetRef};
    use crate::optimizer::Sgd;
    use rand::{Rng, SeedableRng};

    fn rng() -> KmlRng {
        KmlRng::seed_from_u64(23)
    }

    /// Finite-difference check of dL/dparam for one parameter matrix,
    /// where L = cross-entropy of the sequence classification.
    fn check_param_gradient<M>(
        mut forward: impl FnMut(&mut M, &Matrix<f64>) -> Matrix<f64>,
        mut backward: impl FnMut(&mut M, &Matrix<f64>),
        param_access: impl Fn(&mut M) -> &mut Matrix<f64>,
        analytic_grad: impl Fn(&M) -> Matrix<f64>,
        model: &mut M,
        seq: &Matrix<f64>,
        label: usize,
    ) {
        let logits = forward(model, seq);
        let grad_logits = CrossEntropyLoss
            .grad(&logits, TargetRef::Classes(&[label]))
            .expect("grad");
        backward(model, &grad_logits);
        let analytic = analytic_grad(model);

        let eps = 1e-6;
        let (rows, cols) = analytic.shape();
        for r in 0..rows.min(3) {
            for c in 0..cols.min(3) {
                let orig = param_access(model).get(r, c);
                param_access(model).set(r, c, orig + eps);
                let lp = CrossEntropyLoss
                    .loss(&forward(model, seq), TargetRef::Classes(&[label]))
                    .expect("loss");
                param_access(model).set(r, c, orig - eps);
                let lm = CrossEntropyLoss
                    .loss(&forward(model, seq), TargetRef::Classes(&[label]))
                    .expect("loss");
                param_access(model).set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-5,
                    "grad({r},{c}): numeric {numeric}, analytic {}",
                    analytic.get(r, c)
                );
            }
        }
    }

    fn sample_seq(len: usize, seed: u64) -> Matrix<f64> {
        let mut rng = KmlRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..len)
            .map(|_| (0..2).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        Matrix::from_rows(&rows).expect("builds")
    }

    #[test]
    fn rnn_bptt_gradients_match_finite_differences() {
        let mut rnn = Rnn::<f64>::new(2, 5, 3, &mut rng());
        let seq = sample_seq(7, 1);
        // Check every parameter family.
        for which in 0..5 {
            check_param_gradient(
                |m: &mut Rnn<f64>, s| m.forward(s).expect("forward"),
                |m, g| m.backward(g).expect("backward"),
                move |m| match which {
                    0 => &mut m.wx,
                    1 => &mut m.wh,
                    2 => &mut m.b,
                    3 => &mut m.wo,
                    _ => &mut m.bo,
                },
                move |m| match which {
                    0 => m.grad_wx.clone(),
                    1 => m.grad_wh.clone(),
                    2 => m.grad_b.clone(),
                    3 => m.grad_wo.clone(),
                    _ => m.grad_bo.clone(),
                },
                &mut rnn,
                &seq,
                2,
            );
        }
    }

    #[test]
    fn lstm_bptt_gradients_match_finite_differences() {
        let mut lstm = Lstm::<f64>::new(2, 4, 3, &mut rng());
        let seq = sample_seq(6, 2);
        // Check one matrix from each family (gate 0 and the head).
        for which in 0..5 {
            check_param_gradient(
                |m: &mut Lstm<f64>, s| m.forward(s).expect("forward"),
                |m, g| m.backward(g).expect("backward"),
                move |m| match which {
                    0 => &mut m.wx[0],
                    1 => &mut m.wh[1],
                    2 => &mut m.b[3],
                    3 => &mut m.head_w,
                    _ => &mut m.head_b,
                },
                move |m| match which {
                    0 => m.grad_wx[0].clone(),
                    1 => m.grad_wh[1].clone(),
                    2 => m.grad_b[3].clone(),
                    3 => m.grad_head_w.clone(),
                    _ => m.grad_head_b.clone(),
                },
                &mut lstm,
                &seq,
                1,
            );
        }
    }

    /// Sequence task: classify by the *temporal pattern* — class 0 sequences
    /// ascend, class 1 sequences descend; instantaneous values overlap, so
    /// only a stateful model can separate them.
    fn temporal_task(n: usize, len: usize, seed: u64) -> Vec<(Matrix<f64>, usize)> {
        let mut rng = KmlRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let class = rng.gen_range(0..2usize);
                let start: f64 = rng.gen_range(-0.5..0.5);
                let step = if class == 0 { 0.12 } else { -0.12 };
                let rows: Vec<Vec<f64>> = (0..len)
                    .map(|t| vec![start + step * t as f64 + rng.gen_range(-0.03..0.03)])
                    .collect();
                (Matrix::from_rows(&rows).expect("builds"), class)
            })
            .collect()
    }

    #[test]
    fn rnn_learns_temporal_direction() {
        let data = temporal_task(120, 8, 5);
        let mut rnn = Rnn::<f64>::new(1, 8, 2, &mut rng());
        let mut sgd = Sgd::new(0.05, 0.9);
        for _ in 0..30 {
            for (seq, label) in &data {
                let logits = rnn.forward(seq).expect("forward");
                let g = CrossEntropyLoss
                    .grad(&logits, TargetRef::Classes(&[*label]))
                    .expect("grad");
                rnn.backward(&g).expect("backward");
                sgd.step(&mut rnn.param_grads()).expect("step");
            }
        }
        let test = temporal_task(60, 8, 6);
        let correct = test
            .iter()
            .filter(|(seq, label)| rnn.predict(&seq.clone()).expect("predict") == *label)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "rnn accuracy {acc}");
    }

    #[test]
    fn lstm_learns_temporal_direction() {
        let data = temporal_task(120, 8, 7);
        let mut lstm = Lstm::<f64>::new(1, 6, 2, &mut rng());
        let mut sgd = Sgd::new(0.05, 0.9);
        for _ in 0..30 {
            for (seq, label) in &data {
                let logits = lstm.forward(seq).expect("forward");
                let g = CrossEntropyLoss
                    .grad(&logits, TargetRef::Classes(&[*label]))
                    .expect("grad");
                lstm.backward(&g).expect("backward");
                sgd.step(&mut lstm.param_grads()).expect("step");
            }
        }
        let test = temporal_task(60, 8, 8);
        let correct = test
            .iter()
            .filter(|(seq, label)| lstm.predict(&seq.clone()).expect("predict") == *label)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "lstm accuracy {acc}");
    }

    #[test]
    fn recurrent_models_validate_inputs() {
        let mut rnn = Rnn::<f64>::new(3, 4, 2, &mut rng());
        assert!(rnn.forward(&Matrix::zeros(2, 2)).is_err()); // wrong width
        assert!(rnn.backward(&Matrix::zeros(1, 2)).is_err()); // before forward
        let mut lstm = Lstm::<f64>::new(3, 4, 2, &mut rng());
        assert!(lstm.forward(&Matrix::zeros(2, 2)).is_err());
        assert!(lstm.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn lstm_forget_bias_initialized_to_one() {
        let lstm = Lstm::<f64>::new(2, 3, 2, &mut rng());
        assert!(lstm.b[F].as_slice().iter().all(|&v| v == 1.0));
        assert!(lstm.b[I].as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn param_slot_counts() {
        let mut rnn = Rnn::<f64>::new(2, 3, 2, &mut rng());
        assert_eq!(rnn.param_grads().len(), 5);
        let mut lstm = Lstm::<f64>::new(2, 3, 2, &mut rng());
        assert_eq!(lstm.param_grads().len(), 14);
    }
}
