//! Q16.16 fixed-point arithmetic — KML's FPU-free "integer matrices" (§3.1).
//!
//! The paper notes that fixed-point representations let ML run without the
//! FPU (no `kernel_fpu_begin`/`end` cost) at the price of limited range,
//! "which can lead to numerical instability issues". [`Fix32`] models exactly
//! that trade-off: 16 integer bits, 16 fractional bits, **saturating**
//! arithmetic (overflow clamps to ±32768 instead of wrapping, which keeps
//! training degradation graceful and observable rather than catastrophic).

/// A signed Q16.16 fixed-point number stored in an `i32`.
///
/// Range ≈ `[-32768, 32767.99998]`, resolution `2⁻¹⁶ ≈ 1.5e-5`.
///
/// # Example
///
/// ```
/// use kml_core::fixed::Fix32;
///
/// let a = Fix32::from_f64(1.5);
/// let b = Fix32::from_f64(2.25);
/// assert_eq!((a * b).to_f64(), 3.375);
/// assert_eq!((a + b).to_f64(), 3.75);
///
/// // Saturation instead of wrap-around on overflow:
/// let big = Fix32::from_f64(30000.0);
/// assert_eq!((big * big), Fix32::MAX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fix32(i32);

const FRAC_BITS: u32 = 16;
const SCALE: f64 = (1u32 << FRAC_BITS) as f64;

impl Fix32 {
    /// Zero.
    pub const ZERO: Fix32 = Fix32(0);
    /// One.
    pub const ONE: Fix32 = Fix32(1 << FRAC_BITS);
    /// Largest representable value (≈ 32767.99998).
    pub const MAX: Fix32 = Fix32(i32::MAX);
    /// Smallest (most negative) representable value (= −32768).
    pub const MIN: Fix32 = Fix32(i32::MIN);

    /// Converts from `f64`, saturating outside the representable range and
    /// mapping NaN to zero (a deliberate "keep training alive" choice).
    pub fn from_f64(v: f64) -> Fix32 {
        if v.is_nan() {
            return Fix32::ZERO;
        }
        let scaled = v * SCALE;
        if scaled >= i32::MAX as f64 {
            Fix32::MAX
        } else if scaled <= i32::MIN as f64 {
            Fix32::MIN
        } else {
            Fix32(scaled as i32)
        }
    }

    /// Converts to `f64` exactly (every Q16.16 value is a dyadic rational).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE
    }

    /// The raw underlying `i32` representation.
    pub fn to_bits(self) -> i32 {
        self.0
    }

    /// Reconstructs from a raw representation (inverse of [`Fix32::to_bits`]).
    pub fn from_bits(bits: i32) -> Fix32 {
        Fix32(bits)
    }

    /// Absolute value (saturating at [`Fix32::MAX`] for `MIN`).
    pub fn abs(self) -> Fix32 {
        Fix32(self.0.saturating_abs())
    }
}

impl std::ops::Add for Fix32 {
    type Output = Fix32;
    fn add(self, rhs: Fix32) -> Fix32 {
        Fix32(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub for Fix32 {
    type Output = Fix32;
    fn sub(self, rhs: Fix32) -> Fix32 {
        Fix32(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Mul for Fix32 {
    type Output = Fix32;
    fn mul(self, rhs: Fix32) -> Fix32 {
        let wide = ((self.0 as i64) * (rhs.0 as i64)) >> FRAC_BITS;
        Fix32(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }
}

impl std::ops::Div for Fix32 {
    type Output = Fix32;
    fn div(self, rhs: Fix32) -> Fix32 {
        if rhs.0 == 0 {
            // Saturate instead of trapping, mirroring the "no kernel oops" rule.
            return if self.0 >= 0 { Fix32::MAX } else { Fix32::MIN };
        }
        let wide = ((self.0 as i64) << FRAC_BITS) / (rhs.0 as i64);
        Fix32(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }
}

impl std::ops::Neg for Fix32 {
    type Output = Fix32;
    fn neg(self) -> Fix32 {
        Fix32(self.0.saturating_neg())
    }
}

impl std::fmt::Display for Fix32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic_is_exact_for_dyadics() {
        let a = Fix32::from_f64(1.5);
        let b = Fix32::from_f64(0.25);
        assert_eq!((a + b).to_f64(), 1.75);
        assert_eq!((a - b).to_f64(), 1.25);
        assert_eq!((a * b).to_f64(), 0.375);
        assert_eq!((a / b).to_f64(), 6.0);
        assert_eq!((-a).to_f64(), -1.5);
    }

    #[test]
    fn conversion_saturates() {
        assert_eq!(Fix32::from_f64(1e9), Fix32::MAX);
        assert_eq!(Fix32::from_f64(-1e9), Fix32::MIN);
        assert_eq!(Fix32::from_f64(f64::NAN), Fix32::ZERO);
    }

    #[test]
    fn multiplication_saturates_not_wraps() {
        let big = Fix32::from_f64(30000.0);
        assert_eq!(big * big, Fix32::MAX);
        let negbig = Fix32::from_f64(-30000.0);
        assert_eq!(negbig * big, Fix32::MIN);
    }

    #[test]
    fn division_by_zero_saturates() {
        assert_eq!(Fix32::ONE / Fix32::ZERO, Fix32::MAX);
        assert_eq!((-Fix32::ONE) / Fix32::ZERO, Fix32::MIN);
    }

    #[test]
    fn resolution_is_two_to_minus_sixteen() {
        let eps = Fix32::from_bits(1);
        assert_eq!(eps.to_f64(), 1.0 / 65536.0);
    }

    #[test]
    fn bits_round_trip() {
        for v in [-12345, -1, 0, 1, 99999] {
            assert_eq!(Fix32::from_bits(v).to_bits(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip_within_resolution(v in -30000.0f64..30000.0) {
            let q = Fix32::from_f64(v);
            prop_assert!((q.to_f64() - v).abs() <= 1.0 / 65536.0);
        }

        #[test]
        fn prop_add_commutative(a in -10000.0f64..10000.0, b in -10000.0f64..10000.0) {
            let (x, y) = (Fix32::from_f64(a), Fix32::from_f64(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_mul_commutative(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let (x, y) = (Fix32::from_f64(a), Fix32::from_f64(b));
            prop_assert_eq!(x * y, y * x);
        }

        #[test]
        fn prop_mul_error_bounded(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let got = (Fix32::from_f64(a) * Fix32::from_f64(b)).to_f64();
            // Error ≤ quantization of operands propagated + result truncation.
            let tol = (a.abs() + b.abs() + 2.0) / 65536.0;
            prop_assert!((got - a * b).abs() <= tol, "got {got}, want {}", a * b);
        }

        #[test]
        fn prop_neg_is_involution(a in -30000.0f64..30000.0) {
            let x = Fix32::from_f64(a);
            prop_assert_eq!(-(-x), x);
        }
    }
}
