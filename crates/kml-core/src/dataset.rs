//! In-memory labelled datasets with Z-score normalization (paper §4).
//!
//! The readahead pipeline "calculated the Z-score for each feature to
//! normalize the input data"; [`Normalizer`] captures the per-feature
//! mean/std fitted on training data so the same transform is applied at
//! inference time (a fitted normalizer is serialized into the model file).

use crate::matrix::Matrix;
use crate::{KmlError, KmlRng, Result};
use rand::seq::SliceRandom;

/// A classification dataset: a dense `n × d` feature matrix plus one class
/// label per row.
///
/// # Example
///
/// ```
/// use kml_core::dataset::Dataset;
///
/// # fn main() -> kml_core::Result<()> {
/// let data = Dataset::from_rows(
///     &[vec![1.0, 2.0], vec![3.0, 4.0]],
///     &[0, 1],
/// )?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.feature_dim(), 2);
/// assert_eq!(data.num_classes(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix<f64>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset from feature rows and labels.
    ///
    /// The class count is inferred as `max(label) + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if rows are empty/ragged or label
    /// count differs from row count.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[usize]) -> Result<Self> {
        if rows.len() != labels.len() {
            return Err(KmlError::BadDataset(format!(
                "{} feature rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let features = Matrix::from_rows(rows)?;
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Ok(Dataset {
            features,
            labels: labels.to_vec(),
            num_classes,
        })
    }

    /// Builds a dataset from an existing matrix and labels.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] on row/label count mismatch.
    pub fn from_matrix(features: Matrix<f64>, labels: Vec<usize>) -> Result<Self> {
        if features.rows() != labels.len() {
            return Err(KmlError::BadDataset(format!(
                "{} feature rows but {} labels",
                features.rows(),
                labels.len()
            )));
        }
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of distinct classes (`max(label) + 1`).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix<f64> {
        &self.features
    }

    /// The labels, one per row.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> (&[f64], usize) {
        (self.features.row(i), self.labels[i])
    }

    /// Returns a shuffled copy (Fisher–Yates over row indices).
    pub fn shuffled(&self, rng: &mut KmlRng) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        self.subset(&idx).expect("indices are in range")
    }

    /// Selects the given rows into a new dataset (duplicates allowed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if an index is out of range or the
    /// selection is empty.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        if indices.is_empty() {
            return Err(KmlError::BadDataset("empty subset".into()));
        }
        let mut rows = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(KmlError::BadDataset(format!(
                    "subset index {i} out of range for {} samples",
                    self.len()
                )));
            }
            rows.push(self.features.row(i).to_vec());
            labels.push(self.labels[i]);
        }
        Ok(Dataset {
            features: Matrix::from_rows(&rows)?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Splits into `(train, test)` with the first `train_fraction` of rows in
    /// train (shuffle first if order matters).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if either side would be empty.
    pub fn split(&self, train_fraction: f64) -> Result<(Dataset, Dataset)> {
        let n_train = (self.len() as f64 * train_fraction) as usize;
        if n_train == 0 || n_train >= self.len() {
            return Err(KmlError::BadDataset(format!(
                "split fraction {train_fraction} leaves an empty side for {} samples",
                self.len()
            )));
        }
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..self.len()).collect();
        Ok((self.subset(&train_idx)?, self.subset(&test_idx)?))
    }

    /// Mini-batches of up to `batch_size` consecutive rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Matrix<f64>, &[usize])> {
        assert!(batch_size > 0, "batch size must be positive");
        let n = self.len();
        (0..n).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(n);
            let rows: Vec<Vec<f64>> = (start..end)
                .map(|r| self.features.row(r).to_vec())
                .collect();
            (
                Matrix::from_rows(&rows).expect("batch rows are rectangular"),
                &self.labels[start..end],
            )
        })
    }
}

/// Per-feature Z-score transform fitted on training data.
///
/// Features with zero variance pass through unscaled (std is clamped to 1),
/// which keeps degenerate features harmless instead of producing NaNs.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits means and standard deviations per feature column.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] for an empty matrix.
    pub fn fit(features: &Matrix<f64>) -> Result<Self> {
        if features.is_empty() {
            return Err(KmlError::BadDataset(
                "cannot fit normalizer on empty data".into(),
            ));
        }
        let n = features.rows() as f64;
        let d = features.cols();
        let mut means = vec![0.0; d];
        for r in 0..features.rows() {
            for (c, m) in means.iter_mut().enumerate() {
                *m += features.get(r, c);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for r in 0..features.rows() {
            for (c, v) in vars.iter_mut().enumerate() {
                let diff = features.get(r, c) - means[c];
                *v += diff * diff;
            }
        }
        let stds = vars
            .iter()
            .map(|&v| {
                let s = crate::math::sqrt(v / n);
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Normalizer { means, stds })
    }

    /// Builds a normalizer from precomputed statistics (model-file loading).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadModelFile`] on length mismatch or non-positive std.
    pub fn from_stats(means: Vec<f64>, stds: Vec<f64>) -> Result<Self> {
        if means.len() != stds.len() {
            return Err(KmlError::BadModelFile(format!(
                "normalizer with {} means but {} stds",
                means.len(),
                stds.len()
            )));
        }
        if stds.iter().any(|&s| s <= 0.0 || !s.is_finite()) {
            return Err(KmlError::BadModelFile(
                "normalizer std must be positive and finite".into(),
            ));
        }
        Ok(Normalizer { means, stds })
    }

    /// Number of features this normalizer was fitted on.
    pub fn feature_dim(&self) -> usize {
        self.means.len()
    }

    /// Fitted per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-feature standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the transform to a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if column count differs from the
    /// fitted dimension.
    pub fn apply(&self, features: &Matrix<f64>) -> Result<Matrix<f64>> {
        if features.cols() != self.means.len() {
            return Err(KmlError::ShapeMismatch {
                op: "normalize",
                lhs: features.shape(),
                rhs: (1, self.means.len()),
            });
        }
        let mut out = features.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let z = (out.get(r, c) - self.means[c]) / self.stds[c];
                out.set(r, c, z);
            }
        }
        Ok(out)
    }

    /// Applies the transform to a single feature vector in place.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] on dimension mismatch.
    pub fn apply_row(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.means.len() {
            return Err(KmlError::ShapeMismatch {
                op: "normalize",
                lhs: (1, row.len()),
                rhs: (1, self.means.len()),
            });
        }
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - self.means[i]) / self.stds[i];
        }
        Ok(())
    }

    /// Normalizes a whole dataset, keeping the labels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Normalizer::apply`].
    pub fn apply_dataset(&self, data: &Dataset) -> Result<Dataset> {
        Ok(Dataset {
            features: self.apply(&data.features)?,
            labels: data.labels.clone(),
            num_classes: data.num_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::from_rows(
            &[
                vec![0.0, 10.0],
                vec![1.0, 20.0],
                vec![2.0, 30.0],
                vec![3.0, 40.0],
            ],
            &[0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.sample(2), ([2.0, 30.0].as_slice(), 0));
    }

    #[test]
    fn mismatched_labels_rejected() {
        assert!(Dataset::from_rows(&[vec![1.0]], &[0, 1]).is_err());
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let d = toy();
        let mut rng = KmlRng::seed_from_u64(3);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), 4);
        // Every (feature, label) pair in the shuffle exists in the original.
        for i in 0..s.len() {
            let (f, l) = s.sample(i);
            let found = (0..d.len()).any(|j| {
                let (fo, lo) = d.sample(j);
                fo == f && lo == l
            });
            assert!(found, "shuffled sample {i} lost its pairing");
        }
    }

    #[test]
    fn split_sizes() {
        let d = toy();
        let (train, test) = d.split(0.75).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert!(d.split(0.0).is_err());
        assert!(d.split(1.0).is_err());
    }

    #[test]
    fn subset_rejects_out_of_range() {
        let d = toy();
        assert!(d.subset(&[0, 5]).is_err());
        assert!(d.subset(&[]).is_err());
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy();
        let mut seen = 0;
        for (m, ls) in d.batches(3) {
            assert_eq!(m.rows(), ls.len());
            seen += ls.len();
        }
        assert_eq!(seen, 4);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let d = toy();
        let norm = Normalizer::fit(d.features()).unwrap();
        let z = norm.apply(d.features()).unwrap();
        for c in 0..z.cols() {
            let mean: f64 = (0..z.rows()).map(|r| z.get(r, c)).sum::<f64>() / z.rows() as f64;
            let var: f64 =
                (0..z.rows()).map(|r| z.get(r, c).powi(2)).sum::<f64>() / z.rows() as f64;
            assert!(mean.abs() < 1e-12, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "col {c} var {var}");
        }
    }

    #[test]
    fn normalizer_handles_constant_feature() {
        let m = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let norm = Normalizer::fit(&m).unwrap();
        let z = norm.apply(&m).unwrap();
        // Constant column maps to zero, not NaN.
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.get(1, 0), 0.0);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn normalizer_round_trips_through_stats() {
        let d = toy();
        let norm = Normalizer::fit(d.features()).unwrap();
        let rebuilt = Normalizer::from_stats(norm.means().to_vec(), norm.stds().to_vec()).unwrap();
        assert_eq!(norm, rebuilt);
    }

    #[test]
    fn from_stats_validates() {
        assert!(Normalizer::from_stats(vec![0.0], vec![]).is_err());
        assert!(Normalizer::from_stats(vec![0.0], vec![0.0]).is_err());
        assert!(Normalizer::from_stats(vec![0.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn apply_row_matches_apply() {
        let d = toy();
        let norm = Normalizer::fit(d.features()).unwrap();
        let z = norm.apply(d.features()).unwrap();
        let mut row = d.features().row(1).to_vec();
        norm.apply_row(&mut row).unwrap();
        assert_eq!(row.as_slice(), z.row(1));
    }
}
