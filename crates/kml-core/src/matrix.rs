//! Dense row-major matrices and the linear-algebra kernels KML needs (§2).
//!
//! The paper implements "commonly used matrix manipulation and linear algebra
//! functions" from scratch because none exist in the kernel. [`Matrix`] is
//! generic over [`Scalar`] so the same layer code runs in `f32`, `f64`, or
//! Q16.16 fixed point, and every fallible operation returns a typed error
//! rather than panicking — a kernel oops is not an acceptable failure mode.

use crate::scalar::Scalar;
use crate::{KmlError, KmlRng, Result};
use rand::Rng;

/// A dense, row-major matrix of [`Scalar`] elements.
///
/// # Example
///
/// ```
/// use kml_core::matrix::Matrix;
///
/// # fn main() -> kml_core::Result<()> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S: Scalar = f32> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<S>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(KmlError::BadDataset("matrix with zero rows".into()));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(KmlError::BadDataset("matrix with zero columns".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(KmlError::BadDataset(format!(
                    "ragged matrix: row 0 has {cols} columns, row {i} has {}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(KmlError::BadDataset(format!(
                "buffer of {} elements cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a 1×n row vector.
    pub fn row_vector(v: &[S]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Xavier/Glorot-uniform initialization for a layer weight matrix:
    /// entries drawn from `U(-limit, limit)` with `limit = sqrt(6/(fan_in+fan_out))`.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut KmlRng) -> Self {
        let limit = crate::math::sqrt(6.0 / (rows + cols) as f64);
        let data = (0..rows * cols)
            .map(|_| S::from_f64(rng.gen_range(-limit..limit)))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of element storage (for §4 memory-footprint accounting).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * S::BYTES
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> S {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[S] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Flat mutable row-major view of all elements.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Reshapes to `rows × cols`, reusing the existing element buffer.
    ///
    /// Grows the buffer only if its capacity is insufficient; in steady
    /// state (same shape, or any shape seen before on this buffer) this
    /// performs **no heap allocation**. New elements are zeroed; old
    /// contents are not preserved in any meaningful layout.
    pub fn ensure_shape(&mut self, rows: usize, cols: usize) {
        let need = rows * cols;
        if self.data.len() != need {
            self.data.clear();
            self.data.resize(need, S::ZERO);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies `src` into `self`, reshaping as needed (allocation-free once
    /// `self`'s buffer capacity covers `src.len()`).
    pub fn copy_from(&mut self, src: &Matrix<S>) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: S) {
        for x in &mut self.data {
            *x = v;
        }
    }

    /// `orow[j] += a * rrow[j]`, 4-way unrolled for the row-major hot loop.
    #[inline]
    fn axpy_row(orow: &mut [S], rrow: &[S], a: S) {
        let mut oc = orow.chunks_exact_mut(4);
        let mut rc = rrow.chunks_exact(4);
        for (o4, b4) in (&mut oc).zip(&mut rc) {
            o4[0] = o4[0].mul_acc(a, b4[0]);
            o4[1] = o4[1].mul_acc(a, b4[1]);
            o4[2] = o4[2].mul_acc(a, b4[2]);
            o4[3] = o4[3].mul_acc(a, b4[3]);
        }
        for (o, &b) in oc.into_remainder().iter_mut().zip(rc.remainder()) {
            *o = o.mul_acc(a, b);
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out: Matrix<S> = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhs` written into `out` (reshaped as needed).
    ///
    /// Allocation-free once `out`'s buffer has capacity for the result.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, rhs.cols);
        out.fill(S::ZERO);
        // i-k-j loop order: streams through rhs rows, cache-friendly for
        // row-major layout (the kernels the paper hand-optimizes).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == S::ZERO {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                Self::axpy_row(orow, rrow, a);
            }
        }
        Ok(())
    }

    /// `self · rhsᵀ` without materializing the transpose (back-prop kernel).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.cols`.
    pub fn matmul_transpose(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `self · rhsᵀ` written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.cols`.
    pub fn matmul_transpose_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.cols != rhs.cols {
            return Err(KmlError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                out.data[i * rhs.rows + j] = Self::dot(arow, brow);
            }
        }
        Ok(())
    }

    /// Dot product with four independent accumulators (keeps the FPU/fixed
    /// pipeline busy; integer adds are associative, float drift is within
    /// the tolerances every consumer of these kernels already uses).
    #[inline]
    fn dot(arow: &[S], brow: &[S]) -> S {
        let mut acc = [S::ZERO; 4];
        let mut ac = arow.chunks_exact(4);
        let mut bc = brow.chunks_exact(4);
        for (a4, b4) in (&mut ac).zip(&mut bc) {
            acc[0] = acc[0].mul_acc(a4[0], b4[0]);
            acc[1] = acc[1].mul_acc(a4[1], b4[1]);
            acc[2] = acc[2].mul_acc(a4[2], b4[2]);
            acc[3] = acc[3].mul_acc(a4[3], b4[3]);
        }
        let mut tail = S::ZERO;
        for (&a, &b) in ac.remainder().iter().zip(bc.remainder()) {
            tail = tail.mul_acc(a, b);
        }
        acc[0].add(acc[1]).add(acc[2].add(acc[3])).add(tail)
    }

    /// `selfᵀ · rhs` without materializing the transpose (gradient kernel).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.rows == rhs.rows`.
    pub fn transpose_matmul(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out: Matrix<S> = Matrix::zeros(self.cols, rhs.cols);
        self.transpose_matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ · rhs` written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.rows == rhs.rows`.
    pub fn transpose_matmul_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.cols, rhs.cols);
        out.fill(S::ZERO);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == S::ZERO {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                Self::axpy_row(orow, brow, a);
            }
        }
        Ok(())
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix<S> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn add(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        self.zip_with(rhs, "add", S::add)
    }

    /// Element-wise sum written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn add_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        self.zip_with_into(rhs, out, "add", S::add)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn sub(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        self.zip_with(rhs, "sub", S::sub)
    }

    /// Element-wise difference written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn sub_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        self.zip_with_into(rhs, out, "sub", S::sub)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn hadamard(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        self.zip_with(rhs, "hadamard", S::mul)
    }

    /// Element-wise (Hadamard) product written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn hadamard_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        self.zip_with_into(rhs, out, "hadamard", S::mul)
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.add_row_broadcast_into(bias, &mut out)?;
        Ok(out)
    }

    /// Bias broadcast written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast_into(&self, bias: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(KmlError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        out.ensure_shape(self.rows, self.cols);
        for r in 0..self.rows {
            let srow = &self.data[r * self.cols..(r + 1) * self.cols];
            let orow = &mut out.data[r * self.cols..(r + 1) * self.cols];
            for ((o, &s), &b) in orow.iter_mut().zip(srow).zip(&bias.data) {
                *o = s.add(b);
            }
        }
        Ok(())
    }

    /// Adds a 1×cols row vector to every row of `self`, in place (the fused
    /// `x·W + b` tail of the linear-layer hot path).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast_in_place(&mut self, bias: &Matrix<S>) -> Result<()> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(KmlError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &b) in row.iter_mut().zip(&bias.data) {
                *o = o.add(b);
            }
        }
        Ok(())
    }

    /// Sums each column into a 1×cols row vector (bias-gradient reduction).
    pub fn sum_rows(&self) -> Matrix<S> {
        let mut out: Matrix<S> = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// Column-sum reduction written into `out` (reshaped as needed).
    pub fn sum_rows_into(&self, out: &mut Matrix<S>) {
        out.ensure_shape(1, self.cols);
        out.fill(S::ZERO);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] = out.data[c].add(self.data[r * self.cols + c]);
            }
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: S) -> Matrix<S> {
        self.map(|v| v.mul(k))
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(S) -> S) -> Matrix<S> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(S) -> S) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// In-place `self += rhs * k` (the SGD update kernel).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn axpy_in_place(&mut self, rhs: &Matrix<S>, k: S) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(KmlError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.mul_acc(b, k);
        }
        Ok(())
    }

    /// Index of the maximum element in row `r` (ties → first).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has zero columns.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Converts every element to `f64` (for loss computation / reporting).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(|v| v.to_f64()).collect()
    }

    /// Builds a matrix from `f64` data, converting into `S`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if `data.len() != rows * cols`.
    pub fn from_f64_vec(rows: usize, cols: usize, data: &[f64]) -> Result<Matrix<S>> {
        if data.len() != rows * cols {
            return Err(KmlError::BadDataset(format!(
                "buffer of {} elements cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix {
            rows,
            cols,
            data: data.iter().map(|&v| S::from_f64(v)).collect(),
        })
    }

    /// Frobenius norm, computed in `f64`.
    pub fn frobenius_norm(&self) -> f64 {
        crate::math::sqrt(
            self.data
                .iter()
                .map(|v| {
                    let x = v.to_f64();
                    x * x
                })
                .sum(),
        )
    }

    fn zip_with(
        &self,
        rhs: &Matrix<S>,
        op: &'static str,
        f: impl Fn(S, S) -> S,
    ) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.zip_with_into(rhs, &mut out, op, f)?;
        Ok(out)
    }

    fn zip_with_into(
        &self,
        rhs: &Matrix<S>,
        out: &mut Matrix<S>,
        op: &'static str,
        f: impl Fn(S, S) -> S,
    ) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(KmlError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
        Ok(())
    }

    /// Applies `f` element-wise, writing into `out` (reshaped as needed).
    pub fn map_into(&self, out: &mut Matrix<S>, f: impl Fn(S) -> S) {
        out.ensure_shape(self.rows, self.cols);
        for (o, &v) in out.data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
    }
}

impl<S: Scalar> std::fmt::Display for Matrix<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fix32;
    use rand::SeedableRng;

    fn m(rows: &[Vec<f64>]) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = m(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(KmlError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(&[vec![1.5, -2.0, 3.0], vec![0.0, 4.0, -1.0]]);
        let i = Matrix::<f64>::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn transpose_kernels_match_explicit_transpose() {
        let mut rng = KmlRng::seed_from_u64(1);
        let a = Matrix::<f64>::xavier_uniform(4, 6, &mut rng);
        let b = Matrix::<f64>::xavier_uniform(5, 6, &mut rng);
        let via_kernel = a.matmul_transpose(&b).unwrap();
        let via_explicit = a.matmul(&b.transpose()).unwrap();
        for (x, y) in via_kernel.as_slice().iter().zip(via_explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }

        let c = Matrix::<f64>::xavier_uniform(4, 3, &mut rng);
        let via_kernel = a.transpose_matmul(&c).unwrap();
        let via_explicit = a.transpose().matmul(&c).unwrap();
        for (x, y) in via_kernel.as_slice().iter().zip(via_explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn elementwise_operations() {
        let a = m(&[vec![1.0, 2.0]]);
        let b = m(&[vec![10.0, 20.0]]);
        assert_eq!(a.add(&b).unwrap(), m(&[vec![11.0, 22.0]]));
        assert_eq!(b.sub(&a).unwrap(), m(&[vec![9.0, 18.0]]));
        assert_eq!(a.hadamard(&b).unwrap(), m(&[vec![10.0, 40.0]]));
        assert_eq!(a.scale(3.0), m(&[vec![3.0, 6.0]]));
    }

    #[test]
    fn broadcast_and_reduce() {
        let x = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = m(&[vec![10.0, 20.0]]);
        assert_eq!(
            x.add_row_broadcast(&bias).unwrap(),
            m(&[vec![11.0, 22.0], vec![13.0, 24.0]])
        );
        assert_eq!(x.sum_rows(), m(&[vec![4.0, 6.0]]));
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut w = m(&[vec![1.0, 1.0]]);
        let g = m(&[vec![2.0, 4.0]]);
        w.axpy_in_place(&g, -0.5).unwrap();
        assert_eq!(w, m(&[vec![0.0, -1.0]]));
    }

    #[test]
    fn argmax_takes_first_on_tie() {
        let x = m(&[vec![0.3, 0.5, 0.5, 0.1]]);
        assert_eq!(x.argmax_row(0), 1);
    }

    #[test]
    fn ragged_and_empty_inputs_rejected() {
        assert!(Matrix::<f64>::from_rows(&[]).is_err());
        assert!(Matrix::<f64>::from_rows(&[vec![]]).is_err());
        assert!(Matrix::<f64>::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::<f64>::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn fixed_point_matmul_close_to_float() {
        let mut rng = KmlRng::seed_from_u64(3);
        let af = Matrix::<f64>::xavier_uniform(3, 3, &mut rng);
        let bf = Matrix::<f64>::xavier_uniform(3, 3, &mut rng);
        let aq = Matrix::<Fix32>::from_f64_vec(3, 3, &af.to_f64_vec()).unwrap();
        let bq = Matrix::<Fix32>::from_f64_vec(3, 3, &bf.to_f64_vec()).unwrap();
        let cf = af.matmul(&bf).unwrap();
        let cq = aq.matmul(&bq).unwrap();
        for (x, y) in cf.to_f64_vec().iter().zip(cq.to_f64_vec()) {
            assert!((x - y).abs() < 1e-3, "fixed-point drifted: {x} vs {y}");
        }
    }

    #[test]
    fn storage_bytes_counts_elements() {
        assert_eq!(Matrix::<f32>::zeros(3, 4).storage_bytes(), 48);
        assert_eq!(Matrix::<f64>::zeros(3, 4).storage_bytes(), 96);
        assert_eq!(Matrix::<Fix32>::zeros(3, 4).storage_bytes(), 48);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = KmlRng::seed_from_u64(9);
        let w = Matrix::<f64>::xavier_uniform(10, 10, &mut rng);
        let limit = (6.0f64 / 20.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= limit));
        // Not all zero (i.e. it actually randomized).
        assert!(w.frobenius_norm() > 0.0);
    }

    #[test]
    fn into_kernels_reuse_buffers_across_shapes() {
        let mut rng = KmlRng::seed_from_u64(11);
        let a = Matrix::<f64>::xavier_uniform(3, 5, &mut rng);
        let b = Matrix::<f64>::xavier_uniform(5, 4, &mut rng);
        let c = Matrix::<f64>::xavier_uniform(3, 4, &mut rng);
        let d = Matrix::<f64>::xavier_uniform(4, 5, &mut rng);
        let mut out = Matrix::<f64>::zeros(1, 1);
        // Same scratch matrix services differently-shaped kernels in sequence.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.matmul_transpose_into(&d, &mut out).unwrap();
        assert_eq!(out, a.matmul_transpose(&d).unwrap());
        a.transpose_matmul_into(&c, &mut out).unwrap();
        assert_eq!(out, a.transpose_matmul(&c).unwrap());
        a.hadamard_into(&a, &mut out).unwrap();
        assert_eq!(out, a.hadamard(&a).unwrap());
    }

    #[test]
    fn into_kernels_report_the_same_shape_errors() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let mut out = Matrix::<f64>::zeros(1, 1);
        assert!(matches!(
            a.matmul_into(&b, &mut out),
            Err(KmlError::ShapeMismatch { op: "matmul", .. })
        ));
        assert!(matches!(
            a.add_row_broadcast_into(&b, &mut out),
            Err(KmlError::ShapeMismatch {
                op: "add_row_broadcast",
                ..
            })
        ));
    }

    #[test]
    fn copy_from_and_ensure_shape_track_shape() {
        let src = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut dst = Matrix::<f64>::zeros(5, 7);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.ensure_shape(1, 5);
        assert_eq!(dst.shape(), (1, 5));
        assert_eq!(dst.as_slice(), &[0.0; 5]);
    }

    #[test]
    fn display_is_nonempty() {
        let x = Matrix::<f64>::zeros(2, 2);
        assert!(!format!("{x}").is_empty());
        assert!(!format!("{x:?}").is_empty());
    }
}
