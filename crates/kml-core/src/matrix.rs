//! Dense row-major matrices and the linear-algebra kernels KML needs (§2).
//!
//! The paper implements "commonly used matrix manipulation and linear algebra
//! functions" from scratch because none exist in the kernel. [`Matrix`] is
//! generic over [`Scalar`] so the same layer code runs in `f32`, `f64`, or
//! Q16.16 fixed point, and every fallible operation returns a typed error
//! rather than panicking — a kernel oops is not an acceptable failure mode.

use crate::scalar::Scalar;
use crate::{KmlError, KmlRng, Result};
use rand::Rng;

/// A dense, row-major matrix of [`Scalar`] elements.
///
/// # Example
///
/// ```
/// use kml_core::matrix::Matrix;
///
/// # fn main() -> kml_core::Result<()> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S: Scalar = f32> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<S>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(KmlError::BadDataset("matrix with zero rows".into()));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(KmlError::BadDataset("matrix with zero columns".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(KmlError::BadDataset(format!(
                    "ragged matrix: row 0 has {cols} columns, row {i} has {}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(KmlError::BadDataset(format!(
                "buffer of {} elements cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a 1×n row vector.
    pub fn row_vector(v: &[S]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Xavier/Glorot-uniform initialization for a layer weight matrix:
    /// entries drawn from `U(-limit, limit)` with `limit = sqrt(6/(fan_in+fan_out))`.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut KmlRng) -> Self {
        let limit = crate::math::sqrt(6.0 / (rows + cols) as f64);
        let data = (0..rows * cols)
            .map(|_| S::from_f64(rng.gen_range(-limit..limit)))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of element storage (for §4 memory-footprint accounting).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * S::BYTES
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> S {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[S] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice (the bounds check happens once here, not
    /// per element as with repeated [`Matrix::set`] calls).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [S] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Flat mutable row-major view of all elements.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Reshapes to `rows × cols`, reusing the existing element buffer.
    ///
    /// Grows the buffer only if its capacity is insufficient; in steady
    /// state (same shape, or any shape seen before on this buffer) this
    /// performs **no heap allocation**. New elements are zeroed; old
    /// contents are not preserved in any meaningful layout.
    pub fn ensure_shape(&mut self, rows: usize, cols: usize) {
        let need = rows * cols;
        if self.data.len() != need {
            self.data.clear();
            self.data.resize(need, S::ZERO);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies `src` into `self`, reshaping as needed (allocation-free once
    /// `self`'s buffer capacity covers `src.len()`).
    pub fn copy_from(&mut self, src: &Matrix<S>) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: S) {
        for x in &mut self.data {
            *x = v;
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out: Matrix<S> = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhs` written into `out` (reshaped as needed).
    ///
    /// Allocation-free once `out`'s buffer has capacity for the result.
    /// Runs the register-tiled kernel (see [`kernel_matmul`]); every output
    /// element is a single accumulator chain over the shared dimension in
    /// ascending order, bit-identical to the naive triple loop kept in
    /// [`naive`].
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, rhs.cols);
        if S::simd_matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        ) {
            return Ok(());
        }
        // SAFETY: the shape guard establishes `self.data.len() == rows·cols`
        // and `rhs.data.len() == cols·rhs.cols`; `ensure_shape` sized
        // `out.data` to `rows·rhs.cols` — exactly the bounds the kernel
        // requires.
        unsafe {
            kernel_matmul(
                &self.data,
                &rhs.data,
                &mut out.data,
                self.rows,
                self.cols,
                rhs.cols,
            );
        }
        Ok(())
    }

    /// Panel-packed `self · rhs` for large products (the `kernels` bench
    /// path; the model hot path uses [`Matrix::matmul_into`] directly since
    /// its operands fit in L1).
    ///
    /// Packs `MR`-row panels of `self` and `NR`-column panels of `rhs` into
    /// two [`ScratchArena`] slots so the micro-kernel streams contiguous
    /// memory, and blocks the shared dimension at [`KC`] so one panel pair
    /// stays cache-resident. Accumulator chains still walk the shared
    /// dimension in ascending order — later `KC` blocks continue from the
    /// stored partial, and a scalar store/reload is exact — so the result
    /// is bit-identical to [`Matrix::matmul_into`]. Steady-state calls with
    /// a fixed shape perform no heap allocation (the arena slots are sized
    /// on first use).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    #[allow(clippy::needless_range_loop)]
    pub fn matmul_into_packed(
        &self,
        rhs: &Matrix<S>,
        out: &mut Matrix<S>,
        pack: &mut crate::scratch::ScratchArena<S>,
    ) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, rhs.cols);
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        if kd == 0 {
            out.fill(S::ZERO);
            return Ok(());
        }
        // A dispatched SIMD backend streams B rows directly — the panel
        // packing below only pays for itself on the scalar path, and both
        // run the same ascending-k chains, so the result is bit-identical.
        if S::simd_matmul(&self.data, &rhs.data, &mut out.data, m, kd, n) {
            return Ok(());
        }
        let (mt, nt) = (m / MR, n / NR); // full register tiles
        let kc_cap = KC.min(kd);
        pack.ensure_slots(2);
        pack.slot_mut(0).ensure_shape(1, (mt * MR * kc_cap).max(1));
        pack.slot_mut(1).ensure_shape(1, (nt * NR * kc_cap).max(1));
        let mut p0 = 0;
        while p0 < kd {
            let kc = KC.min(kd - p0);
            let first = p0 == 0;
            {
                // Pack A panels: apack[t·MR·kc + p·MR + mi] = A[t·MR+mi, p0+p],
                // so the micro-kernel reads MR contiguous values per k step.
                let apack = pack.slot_mut(0).as_mut_slice();
                for t in 0..mt {
                    let panel = &mut apack[t * MR * kc..(t + 1) * MR * kc];
                    for p in 0..kc {
                        for mi in 0..MR {
                            panel[p * MR + mi] = self.data[(t * MR + mi) * kd + p0 + p];
                        }
                    }
                }
            }
            {
                // Pack B panels: bpack[u·NR·kc + p·NR + jj] = B[p0+p, u·NR+jj].
                let bpack = pack.slot_mut(1).as_mut_slice();
                for u in 0..nt {
                    let panel = &mut bpack[u * NR * kc..(u + 1) * NR * kc];
                    for p in 0..kc {
                        for jj in 0..NR {
                            panel[p * NR + jj] = rhs.data[(p0 + p) * n + u * NR + jj];
                        }
                    }
                }
            }
            let apack = pack.slot(0).as_slice();
            let bpack = pack.slot(1).as_slice();
            for t in 0..mt {
                let apan = &apack[t * MR * kc..(t + 1) * MR * kc];
                for u in 0..nt {
                    let bpan = &bpack[u * NR * kc..(u + 1) * NR * kc];
                    // SAFETY: t < mt and u < nt keep the MR×NR tile at
                    // offset (t·MR)·n + u·NR inside the m×n output; the
                    // panel slices hold exactly MR·kc / NR·kc elements.
                    unsafe {
                        kernel_packed_tile(
                            apan,
                            bpan,
                            &mut out.data,
                            n,
                            kc,
                            (t * MR) * n + u * NR,
                            !first,
                        );
                    }
                }
            }
            // Edge rows (m % MR) and edge columns (n % NR): thin strips,
            // direct strided chains with checked indexing.
            for i in (mt * MR)..m {
                for j in 0..n {
                    let mut s = if first { S::ZERO } else { out.data[i * n + j] };
                    for p in p0..p0 + kc {
                        s = s.mul_acc(self.data[i * kd + p], rhs.data[p * n + j]);
                    }
                    out.data[i * n + j] = s;
                }
            }
            for i in 0..mt * MR {
                for j in (nt * NR)..n {
                    let mut s = if first { S::ZERO } else { out.data[i * n + j] };
                    for p in p0..p0 + kc {
                        s = s.mul_acc(self.data[i * kd + p], rhs.data[p * n + j]);
                    }
                    out.data[i * n + j] = s;
                }
            }
            p0 += kc;
        }
        Ok(())
    }

    /// `self · rhsᵀ` without materializing the transpose (back-prop kernel).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.cols`.
    pub fn matmul_transpose(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `self · rhsᵀ` written into `out` (reshaped as needed).
    ///
    /// Blocked 2×2 over the output so each loaded pair of rows serves four
    /// dot products; every element still runs the exact four-lane [`dot`]
    /// schedule, so results are bit-identical to the naive double loop.
    ///
    /// [`dot`]: Matrix::dot
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.cols == rhs.cols`.
    pub fn matmul_transpose_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.cols != rhs.cols {
            return Err(KmlError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, rhs.rows);
        let (m, n, kd) = (self.rows, rhs.rows, self.cols);
        if S::simd_matmul_transpose(&self.data, &rhs.data, &mut out.data, m, n, kd) {
            return Ok(());
        }
        let ad = &self.data;
        let bd = &rhs.data;
        let mut i = 0;
        while i + 2 <= m {
            let a0 = &ad[i * kd..(i + 1) * kd];
            let a1 = &ad[(i + 1) * kd..(i + 2) * kd];
            let mut j = 0;
            while j + 2 <= n {
                let b0 = &bd[j * kd..(j + 1) * kd];
                let b1 = &bd[(j + 1) * kd..(j + 2) * kd];
                out.data[i * n + j] = Self::dot(a0, b0);
                out.data[i * n + j + 1] = Self::dot(a0, b1);
                out.data[(i + 1) * n + j] = Self::dot(a1, b0);
                out.data[(i + 1) * n + j + 1] = Self::dot(a1, b1);
                j += 2;
            }
            if j < n {
                let b0 = &bd[j * kd..(j + 1) * kd];
                out.data[i * n + j] = Self::dot(a0, b0);
                out.data[(i + 1) * n + j] = Self::dot(a1, b0);
            }
            i += 2;
        }
        if i < m {
            let a0 = &ad[i * kd..(i + 1) * kd];
            for j in 0..n {
                let b0 = &bd[j * kd..(j + 1) * kd];
                out.data[i * n + j] = Self::dot(a0, b0);
            }
        }
        Ok(())
    }

    /// Dot product with four independent accumulators (keeps the FPU/fixed
    /// pipeline busy; integer adds are associative, float drift is within
    /// the tolerances every consumer of these kernels already uses).
    #[inline]
    fn dot(arow: &[S], brow: &[S]) -> S {
        let mut acc = [S::ZERO; 4];
        let mut ac = arow.chunks_exact(4);
        let mut bc = brow.chunks_exact(4);
        for (a4, b4) in (&mut ac).zip(&mut bc) {
            acc[0] = acc[0].mul_acc(a4[0], b4[0]);
            acc[1] = acc[1].mul_acc(a4[1], b4[1]);
            acc[2] = acc[2].mul_acc(a4[2], b4[2]);
            acc[3] = acc[3].mul_acc(a4[3], b4[3]);
        }
        let mut tail = S::ZERO;
        for (&a, &b) in ac.remainder().iter().zip(bc.remainder()) {
            tail = tail.mul_acc(a, b);
        }
        acc[0].add(acc[1]).add(acc[2].add(acc[3])).add(tail)
    }

    /// `selfᵀ · rhs` without materializing the transpose (gradient kernel).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.rows == rhs.rows`.
    pub fn transpose_matmul(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out: Matrix<S> = Matrix::zeros(self.cols, rhs.cols);
        self.transpose_matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ · rhs` written into `out` (reshaped as needed).
    ///
    /// Register-tiled like [`Matrix::matmul_into`] (A is read with a column
    /// stride instead of materializing the transpose); chains ascend the
    /// shared dimension, bit-identical to the naive loop in [`naive`].
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.rows == rhs.rows`.
    pub fn transpose_matmul_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.cols, rhs.cols);
        if S::simd_transpose_matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.cols,
            self.rows,
            rhs.cols,
            false,
        ) {
            return Ok(());
        }
        // SAFETY: shape guard + ensure_shape establish the kernel bounds
        // (`self` is kd×mm, `rhs` is kd×n, `out` is mm×n).
        unsafe {
            kernel_transpose_matmul(
                &self.data,
                &rhs.data,
                &mut out.data,
                self.cols,
                self.rows,
                rhs.cols,
                false,
            );
        }
        Ok(())
    }

    /// `out += selfᵀ · rhs` — continues each output element's accumulator
    /// chain from its current value instead of restarting at zero.
    ///
    /// Accumulating row-shard partials in ascending shard order through
    /// this kernel is bit-identical to a single full-batch
    /// [`Matrix::transpose_matmul_into`]; the deterministic data-parallel
    /// reduction in `Model::train_batch` depends on exactly that.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `self.rows == rhs.rows`
    /// and `out` is already `self.cols × rhs.cols`.
    pub fn transpose_matmul_acc_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.cols, rhs.cols) {
            return Err(KmlError::ShapeMismatch {
                op: "transpose_matmul_acc",
                lhs: self.shape(),
                rhs: out.shape(),
            });
        }
        if S::simd_transpose_matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.cols,
            self.rows,
            rhs.cols,
            true,
        ) {
            return Ok(());
        }
        // SAFETY: both guards above establish the kernel bounds.
        unsafe {
            kernel_transpose_matmul(
                &self.data,
                &rhs.data,
                &mut out.data,
                self.cols,
                self.rows,
                rhs.cols,
                true,
            );
        }
        Ok(())
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix<S> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn add(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        self.zip_with(rhs, "add", S::add)
    }

    /// Element-wise sum written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn add_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        self.zip_with_into(rhs, out, "add", S::add)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn sub(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        self.zip_with(rhs, "sub", S::sub)
    }

    /// Element-wise difference written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn sub_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        self.zip_with_into(rhs, out, "sub", S::sub)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn hadamard(&self, rhs: &Matrix<S>) -> Result<Matrix<S>> {
        self.zip_with(rhs, "hadamard", S::mul)
    }

    /// Element-wise (Hadamard) product written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn hadamard_into(&self, rhs: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        self.zip_with_into(rhs, out, "hadamard", S::mul)
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix<S>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.add_row_broadcast_into(bias, &mut out)?;
        Ok(out)
    }

    /// Bias broadcast written into `out` (reshaped as needed).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast_into(&self, bias: &Matrix<S>, out: &mut Matrix<S>) -> Result<()> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(KmlError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        out.ensure_shape(self.rows, self.cols);
        for r in 0..self.rows {
            let srow = &self.data[r * self.cols..(r + 1) * self.cols];
            let orow = &mut out.data[r * self.cols..(r + 1) * self.cols];
            for ((o, &s), &b) in orow.iter_mut().zip(srow).zip(&bias.data) {
                *o = s.add(b);
            }
        }
        Ok(())
    }

    /// Adds a 1×cols row vector to every row of `self`, in place (the fused
    /// `x·W + b` tail of the linear-layer hot path).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast_in_place(&mut self, bias: &Matrix<S>) -> Result<()> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(KmlError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &b) in row.iter_mut().zip(&bias.data) {
                *o = o.add(b);
            }
        }
        Ok(())
    }

    /// Sums each column into a 1×cols row vector (bias-gradient reduction).
    pub fn sum_rows(&self) -> Matrix<S> {
        let mut out: Matrix<S> = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// Column-sum reduction written into `out` (reshaped as needed).
    pub fn sum_rows_into(&self, out: &mut Matrix<S>) {
        out.ensure_shape(1, self.cols);
        out.fill(S::ZERO);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] = out.data[c].add(self.data[r * self.cols + c]);
            }
        }
    }

    /// Column-sum reduction **accumulated** into `out` (which must already
    /// be `1 × self.cols`). Continuing the per-column add chain across
    /// ascending row shards is bit-identical to one full
    /// [`Matrix::sum_rows_into`] — the bias-gradient half of the
    /// deterministic sharded reduction.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless `out` is `1 × self.cols`.
    pub fn sum_rows_acc_into(&self, out: &mut Matrix<S>) -> Result<()> {
        if out.rows != 1 || out.cols != self.cols {
            return Err(KmlError::ShapeMismatch {
                op: "sum_rows_acc",
                lhs: self.shape(),
                rhs: out.shape(),
            });
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] = out.data[c].add(self.data[r * self.cols + c]);
            }
        }
        Ok(())
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: S) -> Matrix<S> {
        self.map(|v| v.mul(k))
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(S) -> S) -> Matrix<S> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(S) -> S) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// In-place `self += rhs * k` (the SGD update kernel).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] unless shapes match.
    pub fn axpy_in_place(&mut self, rhs: &Matrix<S>, k: S) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(KmlError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.mul_acc(b, k);
        }
        Ok(())
    }

    /// Index of the maximum element in row `r` (ties → first).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has zero columns.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Converts every element to `f64` (for loss computation / reporting).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(|v| v.to_f64()).collect()
    }

    /// Builds a matrix from `f64` data, converting into `S`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if `data.len() != rows * cols`.
    pub fn from_f64_vec(rows: usize, cols: usize, data: &[f64]) -> Result<Matrix<S>> {
        if data.len() != rows * cols {
            return Err(KmlError::BadDataset(format!(
                "buffer of {} elements cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix {
            rows,
            cols,
            data: data.iter().map(|&v| S::from_f64(v)).collect(),
        })
    }

    /// Frobenius norm, computed in `f64`.
    pub fn frobenius_norm(&self) -> f64 {
        crate::math::sqrt(
            self.data
                .iter()
                .map(|v| {
                    let x = v.to_f64();
                    x * x
                })
                .sum(),
        )
    }

    fn zip_with(
        &self,
        rhs: &Matrix<S>,
        op: &'static str,
        f: impl Fn(S, S) -> S,
    ) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.zip_with_into(rhs, &mut out, op, f)?;
        Ok(out)
    }

    fn zip_with_into(
        &self,
        rhs: &Matrix<S>,
        out: &mut Matrix<S>,
        op: &'static str,
        f: impl Fn(S, S) -> S,
    ) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(KmlError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
        Ok(())
    }

    /// Applies `f` element-wise, writing into `out` (reshaped as needed).
    /// Element-wise sigmoid into `out` through the scalar type's slice hook
    /// ([`Scalar::sigmoid_map`]): floats take the four-lane SLP `exp` path,
    /// `Fix32` its piecewise-linear table. Bit-identical to
    /// `self.map_into(out, Scalar::sigmoid)`.
    pub fn sigmoid_into(&self, out: &mut Matrix<S>) {
        out.ensure_shape(self.rows, self.cols);
        S::sigmoid_map(&self.data, &mut out.data);
    }

    pub fn map_into(&self, out: &mut Matrix<S>, f: impl Fn(S) -> S) {
        out.ensure_shape(self.rows, self.cols);
        // Four elements per step: for latency-bound maps (sigmoid/tanh run
        // a serial Taylor chain per element) this keeps four independent
        // chains in flight instead of one.
        let mut oc = out.data.chunks_exact_mut(4);
        let mut ic = self.data.chunks_exact(4);
        for (o4, i4) in (&mut oc).zip(&mut ic) {
            let (a, b, c, d) = (f(i4[0]), f(i4[1]), f(i4[2]), f(i4[3]));
            o4[0] = a;
            o4[1] = b;
            o4[2] = c;
            o4[3] = d;
        }
        for (o, &v) in oc.into_remainder().iter_mut().zip(ic.remainder()) {
            *o = f(v);
        }
    }
}

/// Register-tile height of the blocked kernels: MR×NR = 4×4 gives 16
/// independent accumulator chains, matching the 16 xmm registers of the
/// x86-64 SSE2 baseline so LLVM keeps the whole tile in registers.
const MR: usize = 4;
/// Register-tile width (see [`MR`]).
const NR: usize = 4;
/// Shared-dimension block for [`Matrix::matmul_into_packed`]: one A panel
/// (`MR·KC` elements) plus one B panel (`NR·KC`) stays well inside L1/L2
/// at every supported scalar width.
const KC: usize = 256;

/// `c = a · b` for row-major `a` (`m×kd`), `b` (`kd×n`), `c` (`m×n`).
///
/// Every `c[i·n+j]` is a single accumulator chain over ascending `p` using
/// `mul_acc` (= `add(mul)`, never an FMA contraction), the same evaluation
/// order as the naive i-k-j loop — so the result is bit-identical for every
/// scalar, including `Fix32`'s widening multiplies. The MR×NR tile body and
/// both edge paths all follow that one chain shape.
///
/// SAFETY: caller must guarantee `a.len() >= m·kd`, `b.len() >= kd·n` and
/// `c.len() >= m·n`.
unsafe fn kernel_matmul<S: Scalar>(a: &[S], b: &[S], c: &mut [S], m: usize, kd: usize, n: usize) {
    debug_assert!(a.len() >= m * kd && b.len() >= kd * n && c.len() >= m * n);
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[S::ZERO; NR]; MR];
            for p in 0..kd {
                let bp = p * n + j;
                let bv = [
                    *b.get_unchecked(bp),
                    *b.get_unchecked(bp + 1),
                    *b.get_unchecked(bp + 2),
                    *b.get_unchecked(bp + 3),
                ];
                for (mi, lane) in acc.iter_mut().enumerate() {
                    let av = *a.get_unchecked((i + mi) * kd + p);
                    for (s, &bj) in lane.iter_mut().zip(&bv) {
                        *s = s.mul_acc(av, bj);
                    }
                }
            }
            for (mi, lane) in acc.iter().enumerate() {
                let cp = (i + mi) * n + j;
                for (jj, &s) in lane.iter().enumerate() {
                    *c.get_unchecked_mut(cp + jj) = s;
                }
            }
            j += NR;
        }
        while j < n {
            let mut acc = [S::ZERO; MR];
            for p in 0..kd {
                let bv = *b.get_unchecked(p * n + j);
                for (mi, s) in acc.iter_mut().enumerate() {
                    *s = s.mul_acc(*a.get_unchecked((i + mi) * kd + p), bv);
                }
            }
            for (mi, &s) in acc.iter().enumerate() {
                *c.get_unchecked_mut((i + mi) * n + j) = s;
            }
            j += 1;
        }
        i += MR;
    }
    while i < m {
        let arow = a.get_unchecked(i * kd..(i + 1) * kd);
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [S::ZERO; NR];
            for (p, &av) in arow.iter().enumerate() {
                let bp = p * n + j;
                for (jj, s) in acc.iter_mut().enumerate() {
                    *s = s.mul_acc(av, *b.get_unchecked(bp + jj));
                }
            }
            let cp = i * n + j;
            for (jj, &s) in acc.iter().enumerate() {
                *c.get_unchecked_mut(cp + jj) = s;
            }
            j += NR;
        }
        while j < n {
            let mut s = S::ZERO;
            for (p, &av) in arow.iter().enumerate() {
                s = s.mul_acc(av, *b.get_unchecked(p * n + j));
            }
            *c.get_unchecked_mut(i * n + j) = s;
            j += 1;
        }
        i += 1;
    }
}

/// `c (+)= aᵀ · b` for row-major `a` (`kd×mm`), `b` (`kd×n`), `c` (`mm×n`).
///
/// A is read with a column stride (`a[p·mm + i]`) instead of materializing
/// the transpose. When `cont` is set, each tile's accumulators start from
/// the value already stored in `c`, continuing the chain — the sharded
/// gradient reduction path. Chain shape and order match [`kernel_matmul`].
///
/// SAFETY: caller must guarantee `a.len() >= kd·mm`, `b.len() >= kd·n` and
/// `c.len() >= mm·n`.
#[allow(clippy::too_many_arguments)]
unsafe fn kernel_transpose_matmul<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    mm: usize,
    kd: usize,
    n: usize,
    cont: bool,
) {
    debug_assert!(a.len() >= kd * mm && b.len() >= kd * n && c.len() >= mm * n);
    let mut i = 0;
    while i + MR <= mm {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[S::ZERO; NR]; MR];
            if cont {
                for (mi, lane) in acc.iter_mut().enumerate() {
                    let cp = (i + mi) * n + j;
                    for (jj, s) in lane.iter_mut().enumerate() {
                        *s = *c.get_unchecked(cp + jj);
                    }
                }
            }
            for p in 0..kd {
                let ap = p * mm + i;
                let bp = p * n + j;
                let bv = [
                    *b.get_unchecked(bp),
                    *b.get_unchecked(bp + 1),
                    *b.get_unchecked(bp + 2),
                    *b.get_unchecked(bp + 3),
                ];
                for (mi, lane) in acc.iter_mut().enumerate() {
                    let av = *a.get_unchecked(ap + mi);
                    for (s, &bj) in lane.iter_mut().zip(&bv) {
                        *s = s.mul_acc(av, bj);
                    }
                }
            }
            for (mi, lane) in acc.iter().enumerate() {
                let cp = (i + mi) * n + j;
                for (jj, &s) in lane.iter().enumerate() {
                    *c.get_unchecked_mut(cp + jj) = s;
                }
            }
            j += NR;
        }
        while j < n {
            let mut acc = [S::ZERO; MR];
            if cont {
                for (mi, s) in acc.iter_mut().enumerate() {
                    *s = *c.get_unchecked((i + mi) * n + j);
                }
            }
            for p in 0..kd {
                let ap = p * mm + i;
                let bv = *b.get_unchecked(p * n + j);
                for (mi, s) in acc.iter_mut().enumerate() {
                    *s = s.mul_acc(*a.get_unchecked(ap + mi), bv);
                }
            }
            for (mi, &s) in acc.iter().enumerate() {
                *c.get_unchecked_mut((i + mi) * n + j) = s;
            }
            j += 1;
        }
        i += MR;
    }
    while i < mm {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [S::ZERO; NR];
            if cont {
                let cp = i * n + j;
                for (jj, s) in acc.iter_mut().enumerate() {
                    *s = *c.get_unchecked(cp + jj);
                }
            }
            for p in 0..kd {
                let av = *a.get_unchecked(p * mm + i);
                let bp = p * n + j;
                for (jj, s) in acc.iter_mut().enumerate() {
                    *s = s.mul_acc(av, *b.get_unchecked(bp + jj));
                }
            }
            let cp = i * n + j;
            for (jj, &s) in acc.iter().enumerate() {
                *c.get_unchecked_mut(cp + jj) = s;
            }
            j += NR;
        }
        while j < n {
            let mut s = if cont {
                *c.get_unchecked(i * n + j)
            } else {
                S::ZERO
            };
            for p in 0..kd {
                s = s.mul_acc(*a.get_unchecked(p * mm + i), *b.get_unchecked(p * n + j));
            }
            *c.get_unchecked_mut(i * n + j) = s;
            j += 1;
        }
        i += 1;
    }
}

/// One MR×NR register tile from packed panels: `apan[p·MR + mi]`,
/// `bpan[p·NR + jj]`, output at `c[coff + mi·n + jj]`. When `cont` is set
/// the accumulators continue from the stored partial of the previous `KC`
/// block (exact scalar store/reload keeps the chain bit-identical).
///
/// SAFETY: caller must guarantee `apan.len() >= kc·MR`,
/// `bpan.len() >= kc·NR` and `coff + (MR-1)·n + NR <= c.len()`.
unsafe fn kernel_packed_tile<S: Scalar>(
    apan: &[S],
    bpan: &[S],
    c: &mut [S],
    n: usize,
    kc: usize,
    coff: usize,
    cont: bool,
) {
    debug_assert!(apan.len() >= kc * MR && bpan.len() >= kc * NR);
    let mut acc = [[S::ZERO; NR]; MR];
    if cont {
        for (mi, lane) in acc.iter_mut().enumerate() {
            let cp = coff + mi * n;
            for (jj, s) in lane.iter_mut().enumerate() {
                *s = *c.get_unchecked(cp + jj);
            }
        }
    }
    for p in 0..kc {
        let bp = p * NR;
        let bv = [
            *bpan.get_unchecked(bp),
            *bpan.get_unchecked(bp + 1),
            *bpan.get_unchecked(bp + 2),
            *bpan.get_unchecked(bp + 3),
        ];
        let ap = p * MR;
        for (mi, lane) in acc.iter_mut().enumerate() {
            let av = *apan.get_unchecked(ap + mi);
            for (s, &bj) in lane.iter_mut().zip(&bv) {
                *s = s.mul_acc(av, bj);
            }
        }
    }
    for (mi, lane) in acc.iter().enumerate() {
        let cp = coff + mi * n;
        for (jj, &s) in lane.iter().enumerate() {
            *c.get_unchecked_mut(cp + jj) = s;
        }
    }
}

/// Naive triple-loop reference kernels, kept verbatim from the
/// pre-blocking implementation.
///
/// These are the ground truth for `tests/kernel_parity.rs`: the blocked
/// kernels above must match them bit-for-bit on finite inputs, for every
/// scalar. Not part of the supported public API.
#[doc(hidden)]
pub mod naive {
    use super::{KmlError, Matrix, Result, Scalar};

    /// `orow[j] += a * rrow[j]`, 4-way unrolled (the pre-blocking hot loop).
    #[inline]
    fn axpy_row<S: Scalar>(orow: &mut [S], rrow: &[S], a: S) {
        let mut oc = orow.chunks_exact_mut(4);
        let mut rc = rrow.chunks_exact(4);
        for (o4, b4) in (&mut oc).zip(&mut rc) {
            o4[0] = o4[0].mul_acc(a, b4[0]);
            o4[1] = o4[1].mul_acc(a, b4[1]);
            o4[2] = o4[2].mul_acc(a, b4[2]);
            o4[3] = o4[3].mul_acc(a, b4[3]);
        }
        for (o, &b) in oc.into_remainder().iter_mut().zip(rc.remainder()) {
            *o = o.mul_acc(a, b);
        }
    }

    /// Pre-blocking `matmul_into`: i-k-j loop order with zero-skip.
    pub fn matmul_into<S: Scalar>(
        lhs: &Matrix<S>,
        rhs: &Matrix<S>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        if lhs.cols != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "matmul",
                lhs: lhs.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(lhs.rows, rhs.cols);
        out.fill(S::ZERO);
        for i in 0..lhs.rows {
            for k in 0..lhs.cols {
                let a = lhs.data[i * lhs.cols + k];
                if a == S::ZERO {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                axpy_row(orow, rrow, a);
            }
        }
        Ok(())
    }

    /// Pre-blocking `matmul_transpose_into`: per-element [`Matrix::dot`].
    pub fn matmul_transpose_into<S: Scalar>(
        lhs: &Matrix<S>,
        rhs: &Matrix<S>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        if lhs.cols != rhs.cols {
            return Err(KmlError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: lhs.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(lhs.rows, rhs.rows);
        for i in 0..lhs.rows {
            let arow = &lhs.data[i * lhs.cols..(i + 1) * lhs.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                out.data[i * rhs.rows + j] = Matrix::dot(arow, brow);
            }
        }
        Ok(())
    }

    /// Pre-blocking `transpose_matmul_into`: k-outer with zero-skip.
    pub fn transpose_matmul_into<S: Scalar>(
        lhs: &Matrix<S>,
        rhs: &Matrix<S>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        if lhs.rows != rhs.rows {
            return Err(KmlError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: lhs.shape(),
                rhs: rhs.shape(),
            });
        }
        out.ensure_shape(lhs.cols, rhs.cols);
        out.fill(S::ZERO);
        for k in 0..lhs.rows {
            let arow = &lhs.data[k * lhs.cols..(k + 1) * lhs.cols];
            let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == S::ZERO {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                axpy_row(orow, brow, a);
            }
        }
        Ok(())
    }
}

impl<S: Scalar> std::fmt::Display for Matrix<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fix32;
    use rand::SeedableRng;

    fn m(rows: &[Vec<f64>]) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = m(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(KmlError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(&[vec![1.5, -2.0, 3.0], vec![0.0, 4.0, -1.0]]);
        let i = Matrix::<f64>::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn transpose_kernels_match_explicit_transpose() {
        let mut rng = KmlRng::seed_from_u64(1);
        let a = Matrix::<f64>::xavier_uniform(4, 6, &mut rng);
        let b = Matrix::<f64>::xavier_uniform(5, 6, &mut rng);
        let via_kernel = a.matmul_transpose(&b).unwrap();
        let via_explicit = a.matmul(&b.transpose()).unwrap();
        for (x, y) in via_kernel.as_slice().iter().zip(via_explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }

        let c = Matrix::<f64>::xavier_uniform(4, 3, &mut rng);
        let via_kernel = a.transpose_matmul(&c).unwrap();
        let via_explicit = a.transpose().matmul(&c).unwrap();
        for (x, y) in via_kernel.as_slice().iter().zip(via_explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn elementwise_operations() {
        let a = m(&[vec![1.0, 2.0]]);
        let b = m(&[vec![10.0, 20.0]]);
        assert_eq!(a.add(&b).unwrap(), m(&[vec![11.0, 22.0]]));
        assert_eq!(b.sub(&a).unwrap(), m(&[vec![9.0, 18.0]]));
        assert_eq!(a.hadamard(&b).unwrap(), m(&[vec![10.0, 40.0]]));
        assert_eq!(a.scale(3.0), m(&[vec![3.0, 6.0]]));
    }

    #[test]
    fn broadcast_and_reduce() {
        let x = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = m(&[vec![10.0, 20.0]]);
        assert_eq!(
            x.add_row_broadcast(&bias).unwrap(),
            m(&[vec![11.0, 22.0], vec![13.0, 24.0]])
        );
        assert_eq!(x.sum_rows(), m(&[vec![4.0, 6.0]]));
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut w = m(&[vec![1.0, 1.0]]);
        let g = m(&[vec![2.0, 4.0]]);
        w.axpy_in_place(&g, -0.5).unwrap();
        assert_eq!(w, m(&[vec![0.0, -1.0]]));
    }

    #[test]
    fn argmax_takes_first_on_tie() {
        let x = m(&[vec![0.3, 0.5, 0.5, 0.1]]);
        assert_eq!(x.argmax_row(0), 1);
    }

    #[test]
    fn ragged_and_empty_inputs_rejected() {
        assert!(Matrix::<f64>::from_rows(&[]).is_err());
        assert!(Matrix::<f64>::from_rows(&[vec![]]).is_err());
        assert!(Matrix::<f64>::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::<f64>::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn fixed_point_matmul_close_to_float() {
        let mut rng = KmlRng::seed_from_u64(3);
        let af = Matrix::<f64>::xavier_uniform(3, 3, &mut rng);
        let bf = Matrix::<f64>::xavier_uniform(3, 3, &mut rng);
        let aq = Matrix::<Fix32>::from_f64_vec(3, 3, &af.to_f64_vec()).unwrap();
        let bq = Matrix::<Fix32>::from_f64_vec(3, 3, &bf.to_f64_vec()).unwrap();
        let cf = af.matmul(&bf).unwrap();
        let cq = aq.matmul(&bq).unwrap();
        for (x, y) in cf.to_f64_vec().iter().zip(cq.to_f64_vec()) {
            assert!((x - y).abs() < 1e-3, "fixed-point drifted: {x} vs {y}");
        }
    }

    #[test]
    fn storage_bytes_counts_elements() {
        assert_eq!(Matrix::<f32>::zeros(3, 4).storage_bytes(), 48);
        assert_eq!(Matrix::<f64>::zeros(3, 4).storage_bytes(), 96);
        assert_eq!(Matrix::<Fix32>::zeros(3, 4).storage_bytes(), 48);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = KmlRng::seed_from_u64(9);
        let w = Matrix::<f64>::xavier_uniform(10, 10, &mut rng);
        let limit = (6.0f64 / 20.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= limit));
        // Not all zero (i.e. it actually randomized).
        assert!(w.frobenius_norm() > 0.0);
    }

    #[test]
    fn into_kernels_reuse_buffers_across_shapes() {
        let mut rng = KmlRng::seed_from_u64(11);
        let a = Matrix::<f64>::xavier_uniform(3, 5, &mut rng);
        let b = Matrix::<f64>::xavier_uniform(5, 4, &mut rng);
        let c = Matrix::<f64>::xavier_uniform(3, 4, &mut rng);
        let d = Matrix::<f64>::xavier_uniform(4, 5, &mut rng);
        let mut out = Matrix::<f64>::zeros(1, 1);
        // Same scratch matrix services differently-shaped kernels in sequence.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.matmul_transpose_into(&d, &mut out).unwrap();
        assert_eq!(out, a.matmul_transpose(&d).unwrap());
        a.transpose_matmul_into(&c, &mut out).unwrap();
        assert_eq!(out, a.transpose_matmul(&c).unwrap());
        a.hadamard_into(&a, &mut out).unwrap();
        assert_eq!(out, a.hadamard(&a).unwrap());
    }

    #[test]
    fn into_kernels_report_the_same_shape_errors() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let mut out = Matrix::<f64>::zeros(1, 1);
        assert!(matches!(
            a.matmul_into(&b, &mut out),
            Err(KmlError::ShapeMismatch { op: "matmul", .. })
        ));
        assert!(matches!(
            a.add_row_broadcast_into(&b, &mut out),
            Err(KmlError::ShapeMismatch {
                op: "add_row_broadcast",
                ..
            })
        ));
    }

    #[test]
    fn copy_from_and_ensure_shape_track_shape() {
        let src = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut dst = Matrix::<f64>::zeros(5, 7);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.ensure_shape(1, 5);
        assert_eq!(dst.shape(), (1, 5));
        assert_eq!(dst.as_slice(), &[0.0; 5]);
    }

    #[test]
    fn display_is_nonempty() {
        let x = Matrix::<f64>::zeros(2, 2);
        assert!(!format!("{x}").is_empty());
        assert!(!format!("{x:?}").is_empty());
    }
}
