//! High-level sequential models (the chain graphs KML's prototype trains).
//!
//! [`ModelBuilder`] assembles the chain, [`Model`] trains and infers. The
//! readahead classifier of §4 — "three linear layers ... connected with
//! sigmoid activation functions" trained with cross-entropy + SGD — is built
//! with [`ModelBuilder::readahead_paper_topology`].
//!
//! Memory accounting mirrors §4's reporting: [`Model::param_bytes`] is the
//! persistent footprint ("3,916 bytes of dynamic memory to initialize") and
//! [`Model::inference_scratch_bytes`] the transient per-inference usage
//! ("another 676 bytes ... while inferencing").

use crate::dataset::{Dataset, Normalizer};
use crate::graph::Graph;
use crate::layers::{Activation, ActivationLayer, Layer, LayerKind, Linear, SoftmaxLayer};
use crate::loss::{Loss, TargetRef};
use crate::matrix::Matrix;
use crate::optimizer::Sgd;
use crate::scalar::Scalar;
use crate::{KmlError, KmlRng, Result};
use kml_platform::fpu;
use kml_platform::threading::pool_map;

/// Row count of one data-parallel training shard. Fixed (independent of the
/// worker count) so shard boundaries — and therefore the gradient reduction
/// order — depend only on the batch, making trained weights byte-identical
/// for any `train_workers` setting.
const SHARD_ROWS: usize = 32;

/// Builder for sequential (chain) models.
///
/// # Example
///
/// ```
/// use kml_core::model::ModelBuilder;
///
/// # fn main() -> kml_core::Result<()> {
/// let model = ModelBuilder::new(5)
///     .linear(15)
///     .sigmoid()
///     .linear(10)
///     .sigmoid()
///     .linear(4)
///     .build::<f32>()?;
/// assert_eq!(model.input_dim(), 5);
/// assert_eq!(model.output_dim(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    input_dim: usize,
    specs: Vec<LayerSpec>,
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LayerSpec {
    Linear(usize),
    Activation(Activation),
    Softmax,
}

impl ModelBuilder {
    /// Starts a model whose input has `input_dim` features.
    pub fn new(input_dim: usize) -> Self {
        ModelBuilder {
            input_dim,
            specs: Vec::new(),
            seed: 0x4b4d4c, // "KML"
        }
    }

    /// The three-linear-layer sigmoid topology of the paper's readahead
    /// classifier: `in → 15 → sigmoid → 10 → sigmoid → classes`.
    pub fn readahead_paper_topology(input_dim: usize, classes: usize) -> Self {
        ModelBuilder::new(input_dim)
            .linear(15)
            .sigmoid()
            .linear(10)
            .sigmoid()
            .linear(classes)
    }

    /// Sets the weight-initialization seed (default is fixed for
    /// reproducibility).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends a fully connected layer with `out_dim` outputs.
    pub fn linear(mut self, out_dim: usize) -> Self {
        self.specs.push(LayerSpec::Linear(out_dim));
        self
    }

    /// Appends a sigmoid activation.
    pub fn sigmoid(mut self) -> Self {
        self.specs.push(LayerSpec::Activation(Activation::Sigmoid));
        self
    }

    /// Appends a ReLU activation.
    pub fn relu(mut self) -> Self {
        self.specs.push(LayerSpec::Activation(Activation::Relu));
        self
    }

    /// Appends a tanh activation.
    pub fn tanh(mut self) -> Self {
        self.specs.push(LayerSpec::Activation(Activation::Tanh));
        self
    }

    /// Appends the named activation.
    pub fn activation(mut self, a: Activation) -> Self {
        self.specs.push(LayerSpec::Activation(a));
        self
    }

    /// Appends a softmax layer (only useful for probability outputs; the
    /// cross-entropy loss already fuses softmax during training).
    pub fn softmax(mut self) -> Self {
        self.specs.push(LayerSpec::Softmax);
        self
    }

    /// Materializes the model with Xavier-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if the model has no layers or no
    /// linear layer.
    pub fn build<S: Scalar>(&self) -> Result<Model<S>> {
        use rand::SeedableRng;
        if self.specs.is_empty() {
            return Err(KmlError::InvalidConfig("model has no layers".into()));
        }
        if !self.specs.iter().any(|s| matches!(s, LayerSpec::Linear(_))) {
            return Err(KmlError::InvalidConfig(
                "model needs at least one linear layer".into(),
            ));
        }
        let mut rng = KmlRng::seed_from_u64(self.seed);
        let mut graph: Graph<S> = Graph::new();
        let mut dim = self.input_dim;
        let mut prev = None;
        for spec in &self.specs {
            let layer: Box<dyn Layer<S>> = match spec {
                LayerSpec::Linear(out) => {
                    let l = Linear::new(dim, *out, &mut rng);
                    dim = *out;
                    Box::new(l)
                }
                LayerSpec::Activation(a) => Box::new(ActivationLayer::new(*a)),
                LayerSpec::Softmax => Box::new(SoftmaxLayer::new()),
            };
            prev = Some(match prev {
                None => graph.add_source(layer)?,
                Some(p) => graph.add_node(layer, p)?,
            });
        }
        graph.set_output(prev.expect("specs checked non-empty"))?;
        Ok(Model {
            graph,
            input_dim: self.input_dim,
            output_dim: dim,
            normalizer: None,
            row_buf: Vec::new(),
            row_buf2: Vec::new(),
            input_scratch: Matrix::zeros(0, 0),
            batch_scratch: Matrix::zeros(0, 0),
            loss_grad: Matrix::zeros(0, 0),
            train_workers: 1,
            q8: None,
            q8_dirty: false,
        })
    }
}

/// A trained (or trainable) sequential neural network.
///
/// The model owns an optional fitted [`Normalizer`]; when present, every
/// `predict`/`infer` call Z-scores its input first, so deployment sees the
/// exact pipeline that training saw (paper §4).
#[derive(Debug)]
pub struct Model<S: Scalar> {
    graph: Graph<S>,
    input_dim: usize,
    output_dim: usize,
    normalizer: Option<Normalizer>,
    /// Reused staging row for normalization; sized once on first inference.
    row_buf: Vec<f64>,
    /// Second staging row for the Q8 pair path (batched serving).
    row_buf2: Vec<f64>,
    /// Reused input matrix fed to the graph (1×input_dim for inference).
    input_scratch: Matrix<S>,
    /// Reused row-stacked input matrix for batched inference. Kept
    /// separate from `input_scratch` so the single-row path's zero-alloc
    /// guarantee is untouched by interleaved batch calls.
    batch_scratch: Matrix<S>,
    /// Reused ∂L/∂pred buffer for training.
    loss_grad: Matrix<S>,
    /// Worker threads [`Model::train_batch`] may split row shards across.
    train_workers: usize,
    /// The bounded-error int8 serving engine, when enabled
    /// ([`Model::enable_q8`]). `None` keeps every inference call on the
    /// bit-exact `S` path.
    q8: Option<crate::quant::Q8Engine>,
    /// Set when parameters may have changed since the engine was built;
    /// the next Q8 inference re-quantizes lazily.
    q8_dirty: bool,
}

impl<S: Scalar> Model<S> {
    /// Wraps an existing graph as a model (used by model-file loading).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] for an empty graph.
    pub fn from_graph(
        graph: Graph<S>,
        input_dim: usize,
        output_dim: usize,
        normalizer: Option<Normalizer>,
    ) -> Result<Self> {
        if graph.is_empty() {
            return Err(KmlError::InvalidConfig("empty graph".into()));
        }
        Ok(Model {
            graph,
            input_dim,
            output_dim,
            normalizer,
            row_buf: Vec::new(),
            row_buf2: Vec::new(),
            input_scratch: Matrix::zeros(0, 0),
            batch_scratch: Matrix::zeros(0, 0),
            loss_grad: Matrix::zeros(0, 0),
            train_workers: 1,
            q8: None,
            q8_dirty: false,
        })
    }

    /// Builds an inference **replica**: same weights (via
    /// [`Graph::clone_for_workers`]), same normalizer, same Q8
    /// configuration — fresh scratch buffers and no optimizer state.
    /// Returns `None` if any layer is not worker-cloneable.
    ///
    /// Replica predictions are bit-identical to the original's: weights
    /// and normalizer are value-equal, the forward pass is deterministic
    /// in both, and a Q8 replica re-derives its engine from the same
    /// parameters through the same deterministic quantization the
    /// original's lazy refresh uses. The fleet server leans on this to
    /// fan row-chunks of one batch across pool workers without
    /// serializing on the model's scratch mutex.
    pub fn try_clone_replica(&self) -> Option<Model<S>> {
        let graph = self.graph.clone_for_workers()?;
        let mut replica = Model {
            graph,
            input_dim: self.input_dim,
            output_dim: self.output_dim,
            normalizer: self.normalizer.clone(),
            row_buf: Vec::new(),
            row_buf2: Vec::new(),
            input_scratch: Matrix::zeros(0, 0),
            batch_scratch: Matrix::zeros(0, 0),
            loss_grad: Matrix::zeros(0, 0),
            train_workers: 1,
            q8: None,
            q8_dirty: false,
        };
        if self.q8.is_some() {
            replica.enable_q8().ok()?;
        }
        Some(replica)
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width (class count for classifiers).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The underlying computation graph.
    pub fn graph(&self) -> &Graph<S> {
        &self.graph
    }

    /// Mutable access to the underlying graph (e.g. for parameter loading).
    /// Marks any enabled Q8 engine stale: it re-quantizes on the next
    /// inference, since the caller may mutate parameters through this.
    pub fn graph_mut(&mut self) -> &mut Graph<S> {
        self.q8_dirty = true;
        &mut self.graph
    }

    /// Routes inference (`predict`, `infer`, and the batch variants)
    /// through the bounded-error int8 serving engine
    /// ([`crate::quant::Q8Engine`]) instead of the bit-exact `S` path.
    /// Weights are quantized now; training through
    /// [`Model::train_batch`] (or touching [`Model::graph_mut`]) marks the
    /// engine stale and it re-quantizes lazily before the next Q8 call.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if the graph is not a chain of
    /// Q8-supported layers (linear / sigmoid / relu).
    pub fn enable_q8(&mut self) -> Result<()> {
        self.q8 = Some(crate::quant::Q8Engine::from_graph(
            &self.graph,
            self.input_dim,
            self.output_dim,
        )?);
        self.q8_dirty = false;
        Ok(())
    }

    /// Returns inference to the bit-exact `S` path.
    pub fn disable_q8(&mut self) {
        self.q8 = None;
    }

    /// Whether inference currently routes through the Q8 engine.
    pub fn q8_enabled(&self) -> bool {
        self.q8.is_some()
    }

    /// The Q8 engine's per-linear-layer calibration tables (refreshing a
    /// stale engine first), or `None` when Q8 serving is disabled. See
    /// [`crate::quant::Q8Engine::row_scale_tables`].
    ///
    /// # Errors
    ///
    /// Propagates a failed lazy re-quantization.
    pub fn q8_calibration(&mut self) -> Result<Option<Vec<Vec<f32>>>> {
        self.q8_refresh()?;
        Ok(self.q8.as_ref().map(|e| e.row_scale_tables()))
    }

    /// Rebuilds a stale Q8 engine (post-training lazy re-quantization).
    fn q8_refresh(&mut self) -> Result<()> {
        if self.q8_dirty && self.q8.is_some() {
            self.q8 = Some(crate::quant::Q8Engine::from_graph(
                &self.graph,
                self.input_dim,
                self.output_dim,
            )?);
        }
        self.q8_dirty = false;
        Ok(())
    }

    /// Q8 single-row core: normalize into the staging row, run the int8
    /// engine, return its borrowed `f32` logits. Caller has checked that
    /// the engine is enabled.
    fn q8_infer_row(&mut self, features: &[f64]) -> Result<&[f32]> {
        if features.len() != self.input_dim {
            return Err(KmlError::ShapeMismatch {
                op: "infer",
                lhs: (1, features.len()),
                rhs: (1, self.input_dim),
            });
        }
        self.q8_refresh()?;
        self.row_buf.clear();
        self.row_buf.extend_from_slice(features);
        if let Some(n) = &self.normalizer {
            n.apply_row(&mut self.row_buf)?;
        }
        let engine = self.q8.as_mut().expect("q8 engine enabled");
        let _guard = fpu::FpuGuard::enter();
        engine.infer_row(&self.row_buf)
    }

    /// Q8 two-row core for the batched serving paths: normalizes both rows
    /// and runs them through the engine's software-pipelined pair kernel
    /// ([`crate::quant::Q8Engine::infer_row_pair`]). Caller has checked
    /// shapes and that the engine is enabled.
    fn q8_infer_pair(&mut self, f0: &[f64], f1: &[f64]) -> Result<(&[f32], &[f32])> {
        self.q8_refresh()?;
        if self.normalizer.is_none() {
            // No normalization → the feature slices feed the engine
            // directly, skipping the staging copies.
            let engine = self.q8.as_mut().expect("q8 engine enabled");
            let _guard = fpu::FpuGuard::enter();
            return engine.infer_row_pair(f0, f1);
        }
        self.row_buf.clear();
        self.row_buf.extend_from_slice(f0);
        self.row_buf2.clear();
        self.row_buf2.extend_from_slice(f1);
        if let Some(n) = &self.normalizer {
            n.apply_row(&mut self.row_buf)?;
            n.apply_row(&mut self.row_buf2)?;
        }
        let engine = self.q8.as_mut().expect("q8 engine enabled");
        let _guard = fpu::FpuGuard::enter();
        engine.infer_row_pair(&self.row_buf, &self.row_buf2)
    }

    /// Attaches a fitted normalizer applied before every forward pass.
    pub fn set_normalizer(&mut self, n: Normalizer) {
        self.normalizer = Some(n);
    }

    /// Sets how many worker threads [`Model::train_batch`] may split row
    /// shards across (clamped to at least 1). Training results are
    /// **byte-identical for every worker count**: shards are a fixed 32 rows
    /// and their gradients reduce serially in ascending row order, so the
    /// worker count only changes scheduling, never arithmetic.
    pub fn set_train_workers(&mut self, workers: usize) {
        self.train_workers = workers.max(1);
    }

    /// The configured data-parallel training worker count.
    pub fn train_workers(&self) -> usize {
        self.train_workers
    }

    /// The attached normalizer, if any.
    pub fn normalizer(&self) -> Option<&Normalizer> {
        self.normalizer.as_ref()
    }

    /// Raw parameter storage in bytes (weights + biases only).
    pub fn param_bytes(&self) -> usize {
        self.graph.param_bytes()
    }

    /// Total dynamic memory the initialized model occupies: parameters,
    /// their gradient buffers (in-kernel training keeps them resident),
    /// per-layer structures, graph bookkeeping, and the normalizer — the
    /// quantity the paper reports as "3,916 bytes of dynamic memory to
    /// initialize the model" (§4).
    pub fn init_memory_bytes(&self) -> usize {
        let params_and_grads = 2 * self.graph.param_bytes();
        let layer_structs = self.graph.len() * 96; // node + layer struct footprint
        let normalizer = self
            .normalizer
            .as_ref()
            .map_or(0, |n| 2 * n.feature_dim() * std::mem::size_of::<f64>());
        params_and_grads + layer_structs + normalizer + std::mem::size_of::<Self>()
    }

    /// Transient memory used by a single-row inference: the sum of every
    /// intermediate activation row produced while traversing the graph
    /// (§4 "temporarily used ... while inferencing" analogue).
    pub fn inference_scratch_bytes(&self) -> usize {
        let mut dim = self.input_dim;
        let mut total = 0;
        for layer in self.graph.layers() {
            if let Some(out) = layer.output_dim(dim) {
                total += out * S::BYTES;
                dim = out;
            }
        }
        total
    }

    /// *Measured* scratch footprint: high-water mark of the graph's
    /// activation/gradient arenas plus the forward-state buffers inside the
    /// layers, observed over every pass since construction. Zero until the
    /// first forward; after single-row inference only, this is the empirical
    /// counterpart of [`Model::inference_scratch_bytes`].
    pub fn measured_scratch_bytes(&self) -> usize {
        self.graph.scratch_high_water_bytes() + self.graph.layer_scratch_bytes()
    }

    /// Raw forward pass on (already normalized) rows.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward(&mut self, input: &Matrix<S>) -> Result<Matrix<S>> {
        if S::USES_FPU {
            let _guard = fpu::FpuGuard::enter();
            self.graph.forward(input)
        } else {
            self.graph.forward(input)
        }
    }

    /// Shared inference core: normalize into the reused staging row, convert
    /// into the reused input matrix, forward through the graph's scratch
    /// arena. Returns a reference into the arena's output slot. After the
    /// first call, this path performs **zero heap allocations**.
    fn infer_in_place(&mut self, features: &[f64]) -> Result<&Matrix<S>> {
        if features.len() != self.input_dim {
            return Err(KmlError::ShapeMismatch {
                op: "infer",
                lhs: (1, features.len()),
                rhs: (1, self.input_dim),
            });
        }
        self.input_scratch.ensure_shape(1, self.input_dim);
        if let Some(n) = &self.normalizer {
            self.row_buf.clear();
            self.row_buf.extend_from_slice(features);
            n.apply_row(&mut self.row_buf)?;
            for (dst, src) in self
                .input_scratch
                .as_mut_slice()
                .iter_mut()
                .zip(&self.row_buf)
            {
                *dst = S::from_f64(*src);
            }
        } else {
            // No normalizer: convert straight from the caller's slice —
            // the same `from_f64` per element, minus the staging copy.
            for (dst, &src) in self.input_scratch.as_mut_slice().iter_mut().zip(features) {
                *dst = S::from_f64(src);
            }
        }
        if S::USES_FPU {
            let _guard = fpu::FpuGuard::enter();
            self.graph.forward_in_place(&self.input_scratch)
        } else {
            self.graph.forward_in_place(&self.input_scratch)
        }
    }

    /// Full inference pipeline for one feature vector: normalize (if a
    /// normalizer is attached), forward, return the raw output row.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if `features.len() != input_dim`.
    pub fn infer(&mut self, features: &[f64]) -> Result<Vec<f64>> {
        if self.q8.is_some() {
            return Ok(self
                .q8_infer_row(features)?
                .iter()
                .map(|&v| v as f64)
                .collect());
        }
        Ok(self.infer_in_place(features)?.to_f64_vec())
    }

    /// [`Model::infer`] into a caller-provided buffer. Zero heap allocations
    /// in steady state: once `out` has capacity for `output_dim` values (one
    /// warm-up call), repeated calls never touch the allocator — this is the
    /// form the kernel-resident closed loop uses per I/O event.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::infer`].
    pub fn infer_into(&mut self, features: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if self.q8.is_some() {
            let logits = self.q8_infer_row(features)?;
            // Borrow of `self` ends before `out` is written (out is not ours).
            let n = logits.len();
            out.clear();
            out.extend(logits.iter().map(|&v| v as f64));
            debug_assert_eq!(out.len(), n);
            return Ok(());
        }
        let pred = self.infer_in_place(features)?;
        out.clear();
        out.extend(pred.as_slice().iter().map(|v| v.to_f64()));
        Ok(())
    }

    /// Predicted class for one feature vector (argmax of [`Model::infer`]).
    ///
    /// Allocation-free in steady state: the output row is read straight out
    /// of the graph's scratch arena.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::infer`].
    pub fn predict(&mut self, features: &[f64]) -> Result<usize> {
        if self.q8.is_some() {
            let out = self.q8_infer_row(features)?;
            let mut best = 0;
            for (i, v) in out.iter().enumerate() {
                if *v > out[best] {
                    best = i;
                }
            }
            return Ok(best);
        }
        let out = self.infer_in_place(features)?.as_slice();
        let mut best = 0;
        for (i, v) in out.iter().enumerate() {
            if v.to_f64() > out[best].to_f64() {
                best = i;
            }
        }
        Ok(best)
    }

    /// Batched inference core: normalize each of the `rows` row-stacked
    /// feature vectors into the reused batch matrix and run **one**
    /// forward pass over all of them (a `rows × input_dim` matmul per
    /// linear layer — the blocked-GEMM path the per-row loop can't reach).
    ///
    /// Bit-identical to `rows` single [`Model::infer_in_place`] calls:
    /// normalization is per-row `f64` arithmetic, every layer is row-wise
    /// (linear layers accumulate over `k` in ascending order for each
    /// output element regardless of the row count — the blocked kernel is
    /// separately proven bit-identical to that reference — and
    /// activations are pure per-element maps), so row `i` of the batch
    /// output depends only on row `i` of the input, computed in the same
    /// operation order as a 1-row pass. `tests/batch_parity.rs` holds the
    /// property proof across scalar types and batch shapes.
    fn infer_batch_in_place(&mut self, features: &[f64], rows: usize) -> Result<&Matrix<S>> {
        if features.len() != rows * self.input_dim {
            return Err(KmlError::ShapeMismatch {
                op: "infer_batch",
                lhs: (rows, features.len().checked_div(rows).unwrap_or(0)),
                rhs: (rows, self.input_dim),
            });
        }
        let dim = self.input_dim;
        self.batch_scratch.ensure_shape(rows, dim);
        if let Some(n) = &self.normalizer {
            for r in 0..rows {
                self.row_buf.clear();
                self.row_buf
                    .extend_from_slice(&features[r * dim..(r + 1) * dim]);
                n.apply_row(&mut self.row_buf)?;
                for (dst, src) in self.batch_scratch.as_mut_slice()[r * dim..(r + 1) * dim]
                    .iter_mut()
                    .zip(&self.row_buf)
                {
                    *dst = S::from_f64(*src);
                }
            }
        } else {
            // No normalizer: one straight conversion sweep over the whole
            // row-stacked batch (same `from_f64` per element as the staged
            // route).
            for (dst, &src) in self.batch_scratch.as_mut_slice().iter_mut().zip(features) {
                *dst = S::from_f64(src);
            }
        }
        if S::USES_FPU {
            let _guard = fpu::FpuGuard::enter();
            self.graph.forward_in_place(&self.batch_scratch)
        } else {
            self.graph.forward_in_place(&self.batch_scratch)
        }
    }

    /// Batched [`Model::infer_into`]: `features` holds `rows` feature
    /// vectors row-stacked (`rows × input_dim` values); `out` receives the
    /// `rows × output_dim` raw outputs, row-stacked. One forward pass for
    /// the whole batch, bit-identical to `rows` serial `infer_into` calls
    /// (see [`Model::infer_batch_in_place`] for the argument).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if
    /// `features.len() != rows * input_dim`.
    pub fn infer_batch_into(
        &mut self,
        features: &[f64],
        rows: usize,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        if rows == 0 {
            out.clear();
            return Ok(());
        }
        if self.q8.is_some() {
            if features.len() != rows * self.input_dim {
                return Err(KmlError::ShapeMismatch {
                    op: "infer_batch",
                    lhs: (rows, features.len().checked_div(rows).unwrap_or(0)),
                    rhs: (rows, self.input_dim),
                });
            }
            let dim = self.input_dim;
            out.clear();
            out.reserve(rows * self.output_dim);
            // Rows go through the engine two at a time so their latency
            // chains overlap (see `Q8Engine::infer_row_pair`).
            let mut r = 0;
            while r + 2 <= rows {
                let (l0, l1) = self.q8_infer_pair(
                    &features[r * dim..(r + 1) * dim],
                    &features[(r + 1) * dim..(r + 2) * dim],
                )?;
                out.extend(l0.iter().map(|&v| v as f64));
                out.extend(l1.iter().map(|&v| v as f64));
                r += 2;
            }
            if r < rows {
                let logits = self.q8_infer_row(&features[r * dim..(r + 1) * dim])?;
                out.extend(logits.iter().map(|&v| v as f64));
            }
            return Ok(());
        }
        let pred = self.infer_batch_in_place(features, rows)?;
        out.clear();
        out.extend(pred.as_slice().iter().map(|v| v.to_f64()));
        Ok(())
    }

    /// Batched [`Model::predict`]: argmax per row of a batched forward
    /// pass. `classes` receives one class per input row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::infer_batch_into`].
    pub fn predict_batch_into(
        &mut self,
        features: &[f64],
        rows: usize,
        classes: &mut Vec<usize>,
    ) -> Result<()> {
        if rows == 0 {
            classes.clear();
            return Ok(());
        }
        if self.q8.is_some() {
            if features.len() != rows * self.input_dim {
                return Err(KmlError::ShapeMismatch {
                    op: "predict_batch",
                    lhs: (rows, features.len().checked_div(rows).unwrap_or(0)),
                    rhs: (rows, self.input_dim),
                });
            }
            let dim = self.input_dim;
            classes.clear();
            classes.reserve(rows);
            fn argmax(logits: &[f32]) -> usize {
                let mut best = 0;
                for (i, &v) in logits.iter().enumerate() {
                    if v > logits[best] {
                        best = i;
                    }
                }
                best
            }
            // Paired rows, same as `infer_batch_into`.
            let mut r = 0;
            while r + 2 <= rows {
                let (l0, l1) = self.q8_infer_pair(
                    &features[r * dim..(r + 1) * dim],
                    &features[(r + 1) * dim..(r + 2) * dim],
                )?;
                let (c0, c1) = (argmax(l0), argmax(l1));
                classes.push(c0);
                classes.push(c1);
                r += 2;
            }
            if r < rows {
                let logits = self.q8_infer_row(&features[r * dim..(r + 1) * dim])?;
                classes.push(argmax(logits));
            }
            return Ok(());
        }
        let out_dim = self.output_dim;
        let out = self.infer_batch_in_place(features, rows)?.as_slice();
        classes.clear();
        for r in 0..rows {
            let row = &out[r * out_dim..(r + 1) * out_dim];
            let mut best = 0;
            for (i, v) in row.iter().enumerate() {
                if v.to_f64() > row[best].to_f64() {
                    best = i;
                }
            }
            classes.push(best);
        }
        Ok(())
    }

    /// One SGD step on a mini-batch of (already normalized) rows.
    /// Returns the batch loss.
    ///
    /// With `train_workers > 1` and a batch of at least two shards (64
    /// rows), the forward/backward passes run data-parallel across worker
    /// threads; the resulting weights are bit-for-bit identical to the
    /// serial path at any worker count (see [`Model::set_train_workers`]).
    /// The serial path performs **zero heap allocations** in steady state.
    ///
    /// # Errors
    ///
    /// Propagates shape/target errors.
    pub fn train_batch(
        &mut self,
        input: &Matrix<S>,
        target: TargetRef<'_>,
        loss: &impl Loss,
        sgd: &mut Sgd,
    ) -> Result<f64> {
        // Weight updates invalidate any pre-quantized Q8 serving engine.
        self.q8_dirty = true;
        if self.shardable(input, target, loss) {
            if let Some(proto) = self.graph.clone_for_workers() {
                return self.train_batch_sharded(input, target, loss, sgd, &proto);
            }
        }
        let graph = &mut self.graph;
        let loss_grad = &mut self.loss_grad;
        let mut run = || -> Result<f64> {
            let pred = graph.forward_in_place(input)?;
            let l = loss.loss_and_grad_into(pred, target, loss_grad)?;
            graph.backward_in_place(loss_grad)?;
            let mut slot = 0usize;
            graph.visit_param_grads(&mut |mut pg| {
                let res = sgd.apply(slot, &mut pg);
                slot += 1;
                res
            })?;
            Ok(l)
        };
        if S::USES_FPU {
            let _guard = fpu::FpuGuard::enter();
            run()
        } else {
            run()
        }
    }

    /// Whether this batch can take the data-parallel path: multiple workers
    /// configured, at least two shards of rows, a loss that can scale shard
    /// gradients by the full batch size, and a well-formed target (malformed
    /// targets fall through to the serial path for its exact error).
    fn shardable(&self, input: &Matrix<S>, target: TargetRef<'_>, loss: &impl Loss) -> bool {
        self.train_workers > 1
            && input.rows() >= 2 * SHARD_ROWS
            && loss.supports_sharded_grad()
            && match target {
                TargetRef::Classes(c) => c.len() == input.rows(),
                TargetRef::Values(v) => v.len() == input.rows() * self.output_dim,
            }
    }

    /// Data-parallel [`Model::train_batch`]: fixed 32-row shards run
    /// forward/backward on private graph replicas across worker threads,
    /// then gradients reduce serially in ascending row order. Because each
    /// layer accumulator *continues* the exact multiply-accumulate chains
    /// the full-batch kernels run (ascending the batch dimension), the
    /// update — and therefore every trained weight — is bit-identical to
    /// the serial path regardless of worker count.
    fn train_batch_sharded(
        &mut self,
        input: &Matrix<S>,
        target: TargetRef<'_>,
        loss: &impl Loss,
        sgd: &mut Sgd,
        proto: &Graph<S>,
    ) -> Result<f64> {
        let rows = input.rows();
        let cols = input.cols();
        let out_cols = self.output_dim;

        let mut shards: Vec<(Matrix<S>, TargetRef<'_>)> =
            Vec::with_capacity(rows.div_ceil(SHARD_ROWS));
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + SHARD_ROWS).min(rows);
            let mut m = Matrix::zeros(r1 - r0, cols);
            m.as_mut_slice()
                .copy_from_slice(&input.as_slice()[r0 * cols..r1 * cols]);
            let t = match target {
                TargetRef::Classes(c) => TargetRef::Classes(&c[r0..r1]),
                TargetRef::Values(v) => TargetRef::Values(&v[r0 * out_cols..r1 * out_cols]),
            };
            shards.push((m, t));
            r0 = r1;
        }

        // Worker phase: every shard backpropagates against its own replica;
        // shard gradients stay in the replica until the serial reduction.
        let results = pool_map(
            &shards,
            self.train_workers,
            |_, (shard_in, shard_t): &(Matrix<S>, TargetRef<'_>)| -> Result<Graph<S>> {
                let _guard = S::USES_FPU.then(fpu::FpuGuard::enter);
                let mut replica = proto
                    .clone_for_workers()
                    .expect("prototype graph is worker-cloneable");
                let mut grad = Matrix::zeros(0, 0);
                {
                    let pred = replica.forward_in_place(shard_in)?;
                    loss.grad_scaled_into(pred, *shard_t, rows, &mut grad)?;
                }
                replica.backward_in_place(&grad)?;
                Ok(replica)
            },
        );
        let mut replicas = Vec::with_capacity(results.len());
        for r in results {
            replicas.push(r?);
        }

        let graph = &mut self.graph;
        let mut run = || -> Result<f64> {
            // Reassemble the full prediction so the reported batch loss is
            // the same sequential fold the serial path computes.
            let mut pred = Matrix::zeros(rows, out_cols);
            let mut r0 = 0;
            for replica in &replicas {
                let out = replica.output_activation()?;
                let r1 = r0 + out.rows();
                pred.as_mut_slice()[r0 * out_cols..r1 * out_cols].copy_from_slice(out.as_slice());
                r0 = r1;
            }
            let l = loss.loss(&pred, target)?;
            graph.reset_param_grads();
            for (replica, (shard_in, _)) in replicas.iter().zip(&shards) {
                graph.accumulate_param_grads_from(replica, shard_in)?;
            }
            let mut slot = 0usize;
            graph.visit_param_grads(&mut |mut pg| {
                let res = sgd.apply(slot, &mut pg);
                slot += 1;
                res
            })?;
            Ok(l)
        };
        if S::USES_FPU {
            let _guard = fpu::FpuGuard::enter();
            run()
        } else {
            run()
        }
    }

    /// One shuffled pass over `data` with mini-batches of 16.
    /// Returns the mean batch loss. Applies the attached normalizer.
    ///
    /// # Errors
    ///
    /// Propagates shape/target errors.
    pub fn train_epoch(
        &mut self,
        data: &Dataset,
        loss: &impl Loss,
        sgd: &mut Sgd,
        rng: &mut KmlRng,
    ) -> Result<f64> {
        let prepared = match &self.normalizer {
            Some(n) => n.apply_dataset(data)?,
            None => data.clone(),
        };
        let shuffled = prepared.shuffled(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for (feat, labels) in shuffled.batches(16) {
            let input = Matrix::<S>::from_f64_vec(feat.rows(), feat.cols(), feat.as_slice())?;
            total += self.train_batch(&input, TargetRef::Classes(labels), loss, sgd)?;
            batches += 1;
        }
        Ok(total / batches.max(1) as f64)
    }

    /// Classification accuracy over a dataset (normalizer applied).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f64> {
        let mut correct = 0;
        for i in 0..data.len() {
            let (f, y) = data.sample(i);
            if self.predict(f)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len().max(1) as f64)
    }

    /// Layer kinds in topological order (for introspection and tests).
    pub fn layer_kinds(&self) -> Vec<LayerKind> {
        self.graph.layers().map(|l| l.kind()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropyLoss;
    use rand::SeedableRng;

    /// Two interleaved Gaussian-ish blobs, linearly separable.
    fn blobs(n: usize, seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = KmlRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let class = rng.gen_range(0..2usize);
            let cx = if class == 0 { -1.0 } else { 1.0 };
            rows.push(vec![
                cx + rng.gen_range(-0.5..0.5),
                cx + rng.gen_range(-0.5..0.5),
            ]);
            labels.push(class);
        }
        Dataset::from_rows(&rows, &labels).unwrap()
    }

    #[test]
    fn replica_predictions_are_bit_identical() {
        let data = blobs(200, 3);
        let mut model = ModelBuilder::new(2)
            .linear(8)
            .sigmoid()
            .linear(2)
            .seed(11)
            .build::<f32>()
            .unwrap();
        let mut sgd = Sgd::new(0.3, 0.9);
        let mut rng = KmlRng::seed_from_u64(5);
        for _ in 0..5 {
            model
                .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
                .unwrap();
        }
        let mut replica = model.try_clone_replica().expect("chain is cloneable");
        let mut probe = Vec::new();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..64u64 {
            let x = (i as f64 / 7.0) - 4.0;
            let y = (i as f64 / 3.0) - 10.0;
            probe.extend_from_slice(&[x, y]);
            assert_eq!(
                model.predict(&[x, y]).unwrap(),
                replica.predict(&[x, y]).unwrap()
            );
            out_a.clear();
            out_b.clear();
            model.infer_into(&[x, y], &mut out_a).unwrap();
            replica.infer_into(&[x, y], &mut out_b).unwrap();
            assert_eq!(out_a, out_b, "raw outputs diverged at row {i}");
        }
        // Batched path too: one 64-row forward on each.
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        model.predict_batch_into(&probe, 64, &mut ca).unwrap();
        replica.predict_batch_into(&probe, 64, &mut cb).unwrap();
        assert_eq!(ca, cb);
    }

    #[test]
    fn q8_replica_matches_original_q8_decisions() {
        let mut model = ModelBuilder::new(2)
            .linear(8)
            .sigmoid()
            .linear(2)
            .seed(23)
            .build::<f32>()
            .unwrap();
        model.enable_q8().unwrap();
        let mut replica = model.try_clone_replica().expect("chain is cloneable");
        assert!(replica.q8_enabled(), "replica must inherit q8 serving");
        for i in 0..64u64 {
            let row = [(i as f64).sin() * 3.0, (i as f64).cos() * 3.0];
            assert_eq!(model.predict(&row).unwrap(), replica.predict(&row).unwrap());
        }
    }

    #[test]
    fn builder_validates() {
        assert!(ModelBuilder::new(3).build::<f64>().is_err());
        assert!(ModelBuilder::new(3).sigmoid().build::<f64>().is_err());
        assert!(ModelBuilder::new(3).linear(2).build::<f64>().is_ok());
    }

    #[test]
    fn paper_topology_has_three_linear_layers() {
        let m = ModelBuilder::readahead_paper_topology(5, 4)
            .build::<f32>()
            .unwrap();
        let kinds = m.layer_kinds();
        assert_eq!(
            kinds,
            vec![
                LayerKind::Linear,
                LayerKind::Sigmoid,
                LayerKind::Linear,
                LayerKind::Sigmoid,
                LayerKind::Linear,
            ]
        );
        assert_eq!(m.input_dim(), 5);
        assert_eq!(m.output_dim(), 4);
    }

    #[test]
    fn paper_topology_f32_footprint_is_under_4kb() {
        // The paper reports 3,916 B of init memory for the readahead model;
        // our f32 parameter count for 5→15→10→4 is (5*15+15 + 15*10+10 +
        // 10*4+44... ) — assert the same order of magnitude (< 4 KiB).
        let m = ModelBuilder::readahead_paper_topology(5, 4)
            .build::<f32>()
            .unwrap();
        assert!(m.param_bytes() < 4096, "param bytes = {}", m.param_bytes());
        assert!(m.param_bytes() > 1000, "param bytes = {}", m.param_bytes());
        // Scratch is far smaller than the persistent footprint.
        assert!(m.inference_scratch_bytes() < 1024);
    }

    #[test]
    fn model_learns_separable_blobs() {
        let data = blobs(300, 1);
        let mut model = ModelBuilder::new(2)
            .linear(8)
            .sigmoid()
            .linear(2)
            .seed(7)
            .build::<f64>()
            .unwrap();
        let mut sgd = Sgd::new(0.5, 0.9);
        let mut rng = KmlRng::seed_from_u64(2);
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            last = model
                .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
                .unwrap();
        }
        assert!(last < 0.2, "final loss {last}");
        assert!(model.accuracy(&data).unwrap() > 0.97);
    }

    #[test]
    fn loss_decreases_during_training() {
        let data = blobs(200, 3);
        let mut model = ModelBuilder::new(2)
            .linear(6)
            .sigmoid()
            .linear(2)
            .build::<f64>()
            .unwrap();
        let mut sgd = Sgd::new(0.3, 0.9);
        let mut rng = KmlRng::seed_from_u64(4);
        let first = model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = model
                .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
                .unwrap();
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn normalizer_is_applied_during_inference() {
        let data = Dataset::from_rows(&[vec![1000.0, 0.0], vec![1002.0, 0.0]], &[0, 1]).unwrap();
        let norm = Normalizer::fit(data.features()).unwrap();
        let mut model = ModelBuilder::new(2).linear(2).build::<f64>().unwrap();
        model.set_normalizer(norm);
        // With normalization the effective input magnitude is ~1, so outputs
        // stay modest; without it, 1000-scale inputs would dominate.
        let out = model.infer(&[1001.0, 0.0]).unwrap();
        assert!(out.iter().all(|v| v.abs() < 10.0), "outputs {out:?}");
    }

    #[test]
    fn infer_validates_dimension() {
        let mut model = ModelBuilder::new(3).linear(2).build::<f64>().unwrap();
        assert!(model.infer(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn fixed_point_model_trains_on_blobs() {
        use crate::fixed::Fix32;
        let data = blobs(200, 9);
        let mut model = ModelBuilder::new(2)
            .linear(8)
            .sigmoid()
            .linear(2)
            .build::<Fix32>()
            .unwrap();
        let mut sgd = Sgd::new(0.3, 0.5);
        let mut rng = KmlRng::seed_from_u64(10);
        for _ in 0..60 {
            model
                .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
                .unwrap();
        }
        let acc = model.accuracy(&data).unwrap();
        assert!(acc > 0.9, "fixed-point accuracy {acc}");
    }

    /// Trains one model five full-batch steps at the given worker count and
    /// returns every parameter (as f64 bits) plus the last batch loss.
    fn train_weights<S: Scalar>(workers: usize) -> (Vec<u64>, u64) {
        let mut model = ModelBuilder::new(2)
            .linear(8)
            .sigmoid()
            .linear(2)
            .seed(11)
            .build::<S>()
            .unwrap();
        model.set_train_workers(workers);
        let mut sgd = Sgd::new(0.1, 0.9);
        let mut feats = Vec::new();
        for i in 0..96 {
            feats.push((i as f64) * 0.01 - 0.5);
            feats.push(((i * 7) % 13) as f64 * 0.05);
        }
        let input = Matrix::<S>::from_f64_vec(96, 2, &feats).unwrap();
        let labels: Vec<usize> = (0..96).map(|i| i % 2).collect();
        let mut last = 0.0;
        for _ in 0..5 {
            last = model
                .train_batch(
                    &input,
                    TargetRef::Classes(&labels),
                    &CrossEntropyLoss,
                    &mut sgd,
                )
                .unwrap();
        }
        let bits = model
            .graph_mut()
            .param_grads()
            .iter()
            .flat_map(|pg| pg.param.as_slice().iter().map(|v| v.to_f64().to_bits()))
            .collect();
        (bits, last.to_bits())
    }

    #[test]
    fn sharded_training_is_bit_identical_across_worker_counts() {
        fn check<S: Scalar>() {
            let (w1, l1) = train_weights::<S>(1); // serial reference path
            let (w3, l3) = train_weights::<S>(3);
            let (w8, l8) = train_weights::<S>(8);
            assert_eq!(w1, w3, "weights diverged at 3 workers");
            assert_eq!(w1, w8, "weights diverged at 8 workers");
            assert_eq!(l1, l3, "loss diverged at 3 workers");
            assert_eq!(l1, l8, "loss diverged at 8 workers");
        }
        check::<f64>();
        check::<f32>();
        check::<crate::fixed::Fix32>();
    }

    #[test]
    fn sharded_training_matches_serial_for_value_targets() {
        use crate::loss::MseLoss;
        let run = |workers: usize| -> (Vec<u64>, u64) {
            let mut model = ModelBuilder::new(3)
                .linear(6)
                .tanh()
                .linear(2)
                .seed(5)
                .build::<f64>()
                .unwrap();
            model.set_train_workers(workers);
            let mut sgd = Sgd::new(0.05, 0.8);
            let mut feats = Vec::new();
            let mut targets = Vec::new();
            for i in 0..80 {
                for j in 0..3 {
                    feats.push(((i * 3 + j) % 17) as f64 * 0.1 - 0.8);
                }
                targets.push((i % 5) as f64 * 0.25);
                targets.push(1.0 - (i % 3) as f64 * 0.5);
            }
            let input = Matrix::<f64>::from_f64_vec(80, 3, &feats).unwrap();
            let mut last = 0.0;
            for _ in 0..4 {
                last = model
                    .train_batch(&input, TargetRef::Values(&targets), &MseLoss, &mut sgd)
                    .unwrap();
            }
            let bits = model
                .graph_mut()
                .param_grads()
                .iter()
                .flat_map(|pg| pg.param.as_slice().iter().map(|v| v.to_bits()))
                .collect();
            (bits, last.to_bits())
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "MSE sharded training diverged from serial");
    }

    #[test]
    fn fpu_sections_bracket_float_inference_only() {
        use crate::fixed::Fix32;
        let mut fm = ModelBuilder::new(2).linear(2).build::<f64>().unwrap();
        let before = fpu::sections_entered();
        fm.infer(&[0.1, 0.2]).unwrap();
        assert!(
            fpu::sections_entered() > before,
            "f64 inference must enter FPU section"
        );

        let mut qm = ModelBuilder::new(2).linear(2).build::<Fix32>().unwrap();
        let before = fpu::sections_entered();
        qm.forward(&Matrix::<Fix32>::zeros(1, 2)).unwrap();
        assert_eq!(
            fpu::sections_entered(),
            before,
            "fixed-point forward must not enter an FPU section"
        );
    }
}
