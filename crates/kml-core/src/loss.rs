//! Loss functions with gradients (paper §2 "Layer and loss functions").
//!
//! KML's readahead model uses the **cross-entropy** loss; MSE and binary
//! cross-entropy are implemented as the other "commonly used" losses the
//! framework supports. Each loss provides the forward value and the gradient
//! with respect to the network output, which seeds back-propagation.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{KmlError, Result};

/// The supervision signal a loss is computed against.
#[derive(Debug, Clone, Copy)]
pub enum TargetRef<'a> {
    /// Class indices for classification (one per batch row).
    Classes(&'a [usize]),
    /// Dense regression targets, row-major, same shape as the prediction.
    Values(&'a [f64]),
}

/// A differentiable training objective.
///
/// `pred` is the raw network output (logits for the classification losses).
pub trait Loss: std::fmt::Debug {
    /// Stable numeric tag for model files.
    fn tag(&self) -> u8;

    /// Mean loss over the batch.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if the target does not match `pred`'s
    /// shape (wrong count, class index out of range, or wrong target variant).
    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64>;

    /// Gradient of the mean loss with respect to `pred` (same shape).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`].
    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>>;

    /// Writes the gradient of the mean loss into `out` (reshaped to match
    /// `pred`), reusing `out`'s buffer when its capacity already suffices.
    /// The built-in losses override this to fill `out` directly so the
    /// training hot path stays allocation-free in steady state; the default
    /// delegates to [`Loss::grad`] for external implementations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`].
    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        out.copy_from(&self.grad(pred, target)?);
        Ok(())
    }
}

fn classes_for<'a>(
    pred_rows: usize,
    pred_cols: usize,
    target: TargetRef<'a>,
    loss_name: &str,
) -> Result<&'a [usize]> {
    match target {
        TargetRef::Classes(cs) => {
            if cs.len() != pred_rows {
                return Err(KmlError::BadDataset(format!(
                    "{loss_name}: {} labels for {} rows",
                    cs.len(),
                    pred_rows
                )));
            }
            if let Some(&bad) = cs.iter().find(|&&c| c >= pred_cols) {
                return Err(KmlError::BadDataset(format!(
                    "{loss_name}: class {bad} out of range for {pred_cols} outputs"
                )));
            }
            Ok(cs)
        }
        TargetRef::Values(_) => Err(KmlError::BadDataset(format!(
            "{loss_name} expects class-index targets"
        ))),
    }
}

fn values_for<'a>(pred_len: usize, target: TargetRef<'a>, loss_name: &str) -> Result<&'a [f64]> {
    match target {
        TargetRef::Values(vs) => {
            if vs.len() != pred_len {
                return Err(KmlError::BadDataset(format!(
                    "{loss_name}: {} target values for {} predictions",
                    vs.len(),
                    pred_len
                )));
            }
            Ok(vs)
        }
        TargetRef::Classes(_) => Err(KmlError::BadDataset(format!(
            "{loss_name} expects dense value targets"
        ))),
    }
}

/// Multi-class cross-entropy over raw logits, with softmax fused in
/// (numerically stable log-sum-exp form). This is the loss of the paper's
/// readahead workload classifier.
///
/// # Example
///
/// ```
/// use kml_core::loss::{CrossEntropyLoss, Loss, TargetRef};
/// use kml_core::matrix::Matrix;
///
/// # fn main() -> kml_core::Result<()> {
/// let logits = Matrix::from_rows(&[vec![4.0_f64, 0.0, 0.0]])?;
/// let loss = CrossEntropyLoss.loss(&logits, TargetRef::Classes(&[0]))?;
/// assert!(loss < 0.1); // confident and correct → small loss
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl Loss for CrossEntropyLoss {
    fn tag(&self) -> u8 {
        1
    }

    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64> {
        let classes = classes_for(pred.rows(), pred.cols(), target, "cross-entropy")?;
        let mut total = 0.0;
        for (r, &c) in classes.iter().enumerate() {
            let row: Vec<f64> = pred.row(r).iter().map(|v| v.to_f64()).collect();
            total -= crate::math::log_softmax_at(&row, c);
        }
        Ok(total / pred.rows() as f64)
    }

    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out)?;
        Ok(out)
    }

    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        let classes = classes_for(pred.rows(), pred.cols(), target, "cross-entropy")?;
        let n = pred.rows() as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        let mut row: Vec<f64> = Vec::with_capacity(pred.cols());
        for (r, &c) in classes.iter().enumerate() {
            row.clear();
            row.extend(pred.row(r).iter().map(|v| v.to_f64()));
            crate::math::softmax_in_place(&mut row);
            for (j, &s) in row.iter().enumerate() {
                let g = (s - if j == c { 1.0 } else { 0.0 }) / n;
                out.set(r, j, S::from_f64(g));
            }
        }
        Ok(())
    }
}

/// Mean squared error: `mean((pred − target)²)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn tag(&self) -> u8 {
        2
    }

    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64> {
        let vs = values_for(pred.len(), target, "mse")?;
        let total: f64 = pred
            .as_slice()
            .iter()
            .zip(vs)
            .map(|(&p, &t)| {
                let d = p.to_f64() - t;
                d * d
            })
            .sum();
        Ok(total / pred.len() as f64)
    }

    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out)?;
        Ok(out)
    }

    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        let vs = values_for(pred.len(), target, "mse")?;
        let n = pred.len() as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        for (o, (&p, &t)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice().iter().zip(vs))
        {
            *o = S::from_f64(2.0 * (p.to_f64() - t) / n);
        }
        Ok(())
    }
}

/// Binary cross-entropy over a single logit column, stable on both tails.
///
/// Targets are dense values in `{0, 1}` (one per element of `pred`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BceLoss;

impl Loss for BceLoss {
    fn tag(&self) -> u8 {
        3
    }

    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64> {
        let vs = values_for(pred.len(), target, "bce")?;
        // loss(x, y) = max(x,0) − x·y + ln(1 + e^{−|x|})   (log-sum-exp form)
        let total: f64 = pred
            .as_slice()
            .iter()
            .zip(vs)
            .map(|(&p, &y)| {
                let x = p.to_f64();
                x.max(0.0) - x * y + crate::math::ln(1.0 + crate::math::exp(-x.abs()))
            })
            .sum();
        Ok(total / pred.len() as f64)
    }

    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out)?;
        Ok(out)
    }

    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        let vs = values_for(pred.len(), target, "bce")?;
        let n = pred.len() as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        for (o, (&p, &y)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice().iter().zip(vs))
        {
            *o = S::from_f64((crate::math::sigmoid(p.to_f64()) - y) / n);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(loss: &impl Loss, pred: &Matrix<f64>, target: TargetRef<'_>) {
        let grad = loss.grad(pred, target).unwrap();
        let eps = 1e-6;
        for r in 0..pred.rows() {
            for c in 0..pred.cols() {
                let mut pp = pred.clone();
                pp.set(r, c, pred.get(r, c) + eps);
                let mut pm = pred.clone();
                pm.set(r, c, pred.get(r, c) - eps);
                let numeric = (loss.loss(&pp, target).unwrap() - loss.loss(&pm, target).unwrap())
                    / (2.0 * eps);
                let analytic = grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "grad({r},{c}): numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[vec![0.2, -1.0, 2.0], vec![1.5, 1.4, -0.3]]).unwrap();
        finite_diff_check(&CrossEntropyLoss, &pred, TargetRef::Classes(&[2, 0]));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[vec![0.5, -0.5], vec![2.0, 1.0]]).unwrap();
        let target = [1.0, 0.0, 1.5, 1.0];
        finite_diff_check(&MseLoss, &pred, TargetRef::Values(&target));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[vec![0.3], vec![-2.0], vec![4.0]]).unwrap();
        let target = [1.0, 0.0, 1.0];
        finite_diff_check(&BceLoss, &pred, TargetRef::Values(&target));
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let confident_right = Matrix::from_rows(&[vec![5.0, 0.0]]).unwrap();
        let confident_wrong = Matrix::from_rows(&[vec![0.0, 5.0]]).unwrap();
        let right = CrossEntropyLoss
            .loss(&confident_right, TargetRef::Classes(&[0]))
            .unwrap();
        let wrong = CrossEntropyLoss
            .loss(&confident_wrong, TargetRef::Classes(&[0]))
            .unwrap();
        assert!(right < 0.01);
        assert!(wrong > 4.0);
    }

    #[test]
    fn cross_entropy_stable_for_extreme_logits() {
        let pred = Matrix::<f64>::from_rows(&[vec![1000.0, -1000.0]]).unwrap();
        let l = CrossEntropyLoss
            .loss(&pred, TargetRef::Classes(&[0]))
            .unwrap();
        assert!(l.is_finite());
        assert!(l < 1e-6);
        let g = CrossEntropyLoss
            .grad(&pred, TargetRef::Classes(&[0]))
            .unwrap();
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mse_of_exact_prediction_is_zero() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let l = MseLoss.loss(&pred, TargetRef::Values(&[1.0, 2.0])).unwrap();
        assert_eq!(l, 0.0);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let pred = Matrix::from_rows(&[vec![500.0], vec![-500.0]]).unwrap();
        let l = BceLoss.loss(&pred, TargetRef::Values(&[1.0, 0.0])).unwrap();
        assert!(l.is_finite());
        assert!(l < 1e-6);
    }

    #[test]
    fn wrong_target_variant_is_rejected() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(CrossEntropyLoss
            .loss(&pred, TargetRef::Values(&[1.0, 0.0]))
            .is_err());
        assert!(MseLoss.loss(&pred, TargetRef::Classes(&[0])).is_err());
    }

    #[test]
    fn class_out_of_range_is_rejected() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(CrossEntropyLoss
            .loss(&pred, TargetRef::Classes(&[2]))
            .is_err());
    }

    #[test]
    fn label_count_mismatch_is_rejected() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(CrossEntropyLoss
            .loss(&pred, TargetRef::Classes(&[0]))
            .is_err());
        assert!(MseLoss.loss(&pred, TargetRef::Values(&[0.0])).is_err());
    }

    #[test]
    fn tags_are_distinct() {
        assert_ne!(CrossEntropyLoss.tag(), MseLoss.tag());
        assert_ne!(MseLoss.tag(), BceLoss.tag());
    }
}
