//! Loss functions with gradients (paper §2 "Layer and loss functions").
//!
//! KML's readahead model uses the **cross-entropy** loss; MSE and binary
//! cross-entropy are implemented as the other "commonly used" losses the
//! framework supports. Each loss provides the forward value and the gradient
//! with respect to the network output, which seeds back-propagation.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{KmlError, Result};

/// The supervision signal a loss is computed against.
#[derive(Debug, Clone, Copy)]
pub enum TargetRef<'a> {
    /// Class indices for classification (one per batch row).
    Classes(&'a [usize]),
    /// Dense regression targets, row-major, same shape as the prediction.
    Values(&'a [f64]),
}

/// A differentiable training objective.
///
/// `pred` is the raw network output (logits for the classification losses).
/// Losses are `Sync` so the data-parallel training path can evaluate shard
/// gradients from worker threads.
pub trait Loss: std::fmt::Debug + Sync {
    /// Stable numeric tag for model files.
    fn tag(&self) -> u8;

    /// Mean loss over the batch.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] if the target does not match `pred`'s
    /// shape (wrong count, class index out of range, or wrong target variant).
    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64>;

    /// Gradient of the mean loss with respect to `pred` (same shape).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`].
    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>>;

    /// Writes the gradient of the mean loss into `out` (reshaped to match
    /// `pred`), reusing `out`'s buffer when its capacity already suffices.
    /// The built-in losses override this to fill `out` directly so the
    /// training hot path stays allocation-free in steady state; the default
    /// delegates to [`Loss::grad`] for external implementations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`].
    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        out.copy_from(&self.grad(pred, target)?);
        Ok(())
    }

    /// Fused mean loss + gradient in one pass. The default computes the two
    /// separately; `CrossEntropyLoss` overrides it to share the softmax
    /// pass between the loss and the gradient (halving the `exp` work on
    /// the training hot path) while producing bit-identical values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`].
    fn loss_and_grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<f64> {
        let l = self.loss(pred, target)?;
        self.grad_into(pred, target, out)?;
        Ok(l)
    }

    /// Gradient of the **batch-mean** loss where the mean is taken over
    /// `total_rows` rows even though `pred` holds only a row shard of the
    /// batch. Because all three built-in losses are means of per-row (or
    /// per-element) terms, a shard's gradient rows computed with the full
    /// batch's divisor are bit-identical to the corresponding rows of the
    /// full-batch gradient — which is what makes the data-parallel training
    /// reduction deterministic.
    ///
    /// The default only supports the degenerate `total_rows == pred.rows()`
    /// case (delegating to [`Loss::grad_into`]); implementations that can
    /// shard must also override [`Loss::supports_sharded_grad`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`], plus [`KmlError::BadDataset`] if
    /// the implementation cannot shard and `total_rows != pred.rows()`.
    fn grad_scaled_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        total_rows: usize,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        if total_rows != pred.rows() {
            return Err(KmlError::BadDataset(
                "loss does not support sharded gradients".into(),
            ));
        }
        self.grad_into(pred, target, out)
    }

    /// Whether [`Loss::grad_scaled_into`] accepts row shards
    /// (`total_rows != pred.rows()`). Gates the data-parallel training path.
    fn supports_sharded_grad(&self) -> bool {
        false
    }
}

/// Classification rows wider than this fall back to a heap buffer; every
/// model in the repo (the readahead classifier has 4 outputs) stays on the
/// stack, keeping the steady-state training path allocation-free.
const ROW_STACK: usize = 32;

/// Runs `f` with a zeroed `cols`-wide `f64` scratch row: stack-allocated for
/// `cols <= ROW_STACK`, heap otherwise.
fn with_row_buf<R>(cols: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    if cols <= ROW_STACK {
        let mut buf = [0.0f64; ROW_STACK];
        f(&mut buf[..cols])
    } else {
        let mut buf = vec![0.0f64; cols];
        f(&mut buf)
    }
}

fn classes_for<'a>(
    pred_rows: usize,
    pred_cols: usize,
    target: TargetRef<'a>,
    loss_name: &str,
) -> Result<&'a [usize]> {
    match target {
        TargetRef::Classes(cs) => {
            if cs.len() != pred_rows {
                return Err(KmlError::BadDataset(format!(
                    "{loss_name}: {} labels for {} rows",
                    cs.len(),
                    pred_rows
                )));
            }
            if let Some(&bad) = cs.iter().find(|&&c| c >= pred_cols) {
                return Err(KmlError::BadDataset(format!(
                    "{loss_name}: class {bad} out of range for {pred_cols} outputs"
                )));
            }
            Ok(cs)
        }
        TargetRef::Values(_) => Err(KmlError::BadDataset(format!(
            "{loss_name} expects class-index targets"
        ))),
    }
}

fn values_for<'a>(pred_len: usize, target: TargetRef<'a>, loss_name: &str) -> Result<&'a [f64]> {
    match target {
        TargetRef::Values(vs) => {
            if vs.len() != pred_len {
                return Err(KmlError::BadDataset(format!(
                    "{loss_name}: {} target values for {} predictions",
                    vs.len(),
                    pred_len
                )));
            }
            Ok(vs)
        }
        TargetRef::Classes(_) => Err(KmlError::BadDataset(format!(
            "{loss_name} expects dense value targets"
        ))),
    }
}

/// Multi-class cross-entropy over raw logits, with softmax fused in
/// (numerically stable log-sum-exp form). This is the loss of the paper's
/// readahead workload classifier.
///
/// # Example
///
/// ```
/// use kml_core::loss::{CrossEntropyLoss, Loss, TargetRef};
/// use kml_core::matrix::Matrix;
///
/// # fn main() -> kml_core::Result<()> {
/// let logits = Matrix::from_rows(&[vec![4.0_f64, 0.0, 0.0]])?;
/// let loss = CrossEntropyLoss.loss(&logits, TargetRef::Classes(&[0]))?;
/// assert!(loss < 0.1); // confident and correct → small loss
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl Loss for CrossEntropyLoss {
    fn tag(&self) -> u8 {
        1
    }

    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64> {
        let classes = classes_for(pred.rows(), pred.cols(), target, "cross-entropy")?;
        Ok(with_row_buf(pred.cols(), |row| {
            let mut total = 0.0;
            for (r, &c) in classes.iter().enumerate() {
                for (b, v) in row.iter_mut().zip(pred.row(r)) {
                    *b = v.to_f64();
                }
                total -= crate::math::log_softmax_at(row, c);
            }
            total / pred.rows() as f64
        }))
    }

    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out)?;
        Ok(out)
    }

    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        self.grad_scaled_into(pred, target, pred.rows(), out)
    }

    fn loss_and_grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<f64> {
        let classes = classes_for(pred.rows(), pred.cols(), target, "cross-entropy")?;
        let n = pred.rows() as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        // One softmax pass serves both the loss and the gradient. The max
        // fold and the exp-sum order below replicate `log_softmax_at` and
        // `softmax_in_place` exactly, so the fused values are bit-identical
        // to the separate loss() + grad_into() calls.
        Ok(with_row_buf(pred.cols(), |row| {
            let mut total = 0.0;
            for (r, &c) in classes.iter().enumerate() {
                for (b, v) in row.iter_mut().zip(pred.row(r)) {
                    *b = v.to_f64();
                }
                let v_c = row[c];
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for x in row.iter_mut() {
                    *x = crate::math::exp(*x - max);
                    sum += *x;
                }
                total -= (v_c - max) - crate::math::ln(sum);
                if sum > 0.0 {
                    for x in row.iter_mut() {
                        *x /= sum;
                    }
                }
                for (j, (o, &s)) in out.row_mut(r).iter_mut().zip(row.iter()).enumerate() {
                    *o = S::from_f64((s - if j == c { 1.0 } else { 0.0 }) / n);
                }
            }
            total / pred.rows() as f64
        }))
    }

    fn grad_scaled_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        total_rows: usize,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        let classes = classes_for(pred.rows(), pred.cols(), target, "cross-entropy")?;
        let n = total_rows as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        with_row_buf(pred.cols(), |row| {
            for (r, &c) in classes.iter().enumerate() {
                for (b, v) in row.iter_mut().zip(pred.row(r)) {
                    *b = v.to_f64();
                }
                crate::math::softmax_in_place(row);
                for (j, (o, &s)) in out.row_mut(r).iter_mut().zip(row.iter()).enumerate() {
                    *o = S::from_f64((s - if j == c { 1.0 } else { 0.0 }) / n);
                }
            }
        });
        Ok(())
    }

    fn supports_sharded_grad(&self) -> bool {
        true
    }
}

/// Mean squared error: `mean((pred − target)²)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn tag(&self) -> u8 {
        2
    }

    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64> {
        let vs = values_for(pred.len(), target, "mse")?;
        let total: f64 = pred
            .as_slice()
            .iter()
            .zip(vs)
            .map(|(&p, &t)| {
                let d = p.to_f64() - t;
                d * d
            })
            .sum();
        Ok(total / pred.len() as f64)
    }

    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out)?;
        Ok(out)
    }

    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        self.grad_scaled_into(pred, target, pred.rows(), out)
    }

    fn grad_scaled_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        total_rows: usize,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        let vs = values_for(pred.len(), target, "mse")?;
        let n = (total_rows * pred.cols()) as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        for (o, (&p, &t)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice().iter().zip(vs))
        {
            *o = S::from_f64(2.0 * (p.to_f64() - t) / n);
        }
        Ok(())
    }

    fn supports_sharded_grad(&self) -> bool {
        true
    }
}

/// Binary cross-entropy over a single logit column, stable on both tails.
///
/// Targets are dense values in `{0, 1}` (one per element of `pred`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BceLoss;

impl Loss for BceLoss {
    fn tag(&self) -> u8 {
        3
    }

    fn loss<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<f64> {
        let vs = values_for(pred.len(), target, "bce")?;
        // loss(x, y) = max(x,0) − x·y + ln(1 + e^{−|x|})   (log-sum-exp form)
        let total: f64 = pred
            .as_slice()
            .iter()
            .zip(vs)
            .map(|(&p, &y)| {
                let x = p.to_f64();
                x.max(0.0) - x * y + crate::math::ln(1.0 + crate::math::exp(-x.abs()))
            })
            .sum();
        Ok(total / pred.len() as f64)
    }

    fn grad<S: Scalar>(&self, pred: &Matrix<S>, target: TargetRef<'_>) -> Result<Matrix<S>> {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out)?;
        Ok(out)
    }

    fn grad_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        self.grad_scaled_into(pred, target, pred.rows(), out)
    }

    fn grad_scaled_into<S: Scalar>(
        &self,
        pred: &Matrix<S>,
        target: TargetRef<'_>,
        total_rows: usize,
        out: &mut Matrix<S>,
    ) -> Result<()> {
        let vs = values_for(pred.len(), target, "bce")?;
        let n = (total_rows * pred.cols()) as f64;
        out.ensure_shape(pred.rows(), pred.cols());
        for (o, (&p, &y)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice().iter().zip(vs))
        {
            *o = S::from_f64((crate::math::sigmoid(p.to_f64()) - y) / n);
        }
        Ok(())
    }

    fn supports_sharded_grad(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(loss: &impl Loss, pred: &Matrix<f64>, target: TargetRef<'_>) {
        let grad = loss.grad(pred, target).unwrap();
        let eps = 1e-6;
        for r in 0..pred.rows() {
            for c in 0..pred.cols() {
                let mut pp = pred.clone();
                pp.set(r, c, pred.get(r, c) + eps);
                let mut pm = pred.clone();
                pm.set(r, c, pred.get(r, c) - eps);
                let numeric = (loss.loss(&pp, target).unwrap() - loss.loss(&pm, target).unwrap())
                    / (2.0 * eps);
                let analytic = grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "grad({r},{c}): numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[vec![0.2, -1.0, 2.0], vec![1.5, 1.4, -0.3]]).unwrap();
        finite_diff_check(&CrossEntropyLoss, &pred, TargetRef::Classes(&[2, 0]));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[vec![0.5, -0.5], vec![2.0, 1.0]]).unwrap();
        let target = [1.0, 0.0, 1.5, 1.0];
        finite_diff_check(&MseLoss, &pred, TargetRef::Values(&target));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[vec![0.3], vec![-2.0], vec![4.0]]).unwrap();
        let target = [1.0, 0.0, 1.0];
        finite_diff_check(&BceLoss, &pred, TargetRef::Values(&target));
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let confident_right = Matrix::from_rows(&[vec![5.0, 0.0]]).unwrap();
        let confident_wrong = Matrix::from_rows(&[vec![0.0, 5.0]]).unwrap();
        let right = CrossEntropyLoss
            .loss(&confident_right, TargetRef::Classes(&[0]))
            .unwrap();
        let wrong = CrossEntropyLoss
            .loss(&confident_wrong, TargetRef::Classes(&[0]))
            .unwrap();
        assert!(right < 0.01);
        assert!(wrong > 4.0);
    }

    #[test]
    fn cross_entropy_stable_for_extreme_logits() {
        let pred = Matrix::<f64>::from_rows(&[vec![1000.0, -1000.0]]).unwrap();
        let l = CrossEntropyLoss
            .loss(&pred, TargetRef::Classes(&[0]))
            .unwrap();
        assert!(l.is_finite());
        assert!(l < 1e-6);
        let g = CrossEntropyLoss
            .grad(&pred, TargetRef::Classes(&[0]))
            .unwrap();
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mse_of_exact_prediction_is_zero() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let l = MseLoss.loss(&pred, TargetRef::Values(&[1.0, 2.0])).unwrap();
        assert_eq!(l, 0.0);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let pred = Matrix::from_rows(&[vec![500.0], vec![-500.0]]).unwrap();
        let l = BceLoss.loss(&pred, TargetRef::Values(&[1.0, 0.0])).unwrap();
        assert!(l.is_finite());
        assert!(l < 1e-6);
    }

    #[test]
    fn wrong_target_variant_is_rejected() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(CrossEntropyLoss
            .loss(&pred, TargetRef::Values(&[1.0, 0.0]))
            .is_err());
        assert!(MseLoss.loss(&pred, TargetRef::Classes(&[0])).is_err());
    }

    #[test]
    fn class_out_of_range_is_rejected() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(CrossEntropyLoss
            .loss(&pred, TargetRef::Classes(&[2]))
            .is_err());
    }

    #[test]
    fn label_count_mismatch_is_rejected() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(CrossEntropyLoss
            .loss(&pred, TargetRef::Classes(&[0]))
            .is_err());
        assert!(MseLoss.loss(&pred, TargetRef::Values(&[0.0])).is_err());
    }

    #[test]
    fn tags_are_distinct() {
        assert_ne!(CrossEntropyLoss.tag(), MseLoss.tag());
        assert_ne!(MseLoss.tag(), BceLoss.tag());
    }
}
