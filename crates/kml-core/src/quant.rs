//! Post-training int8 quantization (paper §3.1).
//!
//! "One way to represent matrices compactly is using quantization.
//! Quantization can reduce both computational and memory overheads, but
//! often reduces accuracy." This module implements two int8 schemes:
//!
//! 1. The standard per-tensor affine scheme ([`QuantizedMatrix`] /
//!    [`QuantizedModel`]): each trained `f32` weight matrix is mapped to
//!    `i8` with a per-tensor scale and zero point, matmuls accumulate in
//!    `i32`, and activations stay in `f32` (the mixed scheme of Lai et
//!    al., which the paper cites). A quarter of the f32 parameter memory —
//!    the "accuracy vs. CPU/memory" trade-off §3.1 says KML lets users
//!    make.
//!
//! 2. The serving-tier **Q8 engine** ([`Q8Engine`]): per-output-row
//!    *symmetric* scales (no zero point, so accumulation is a pure
//!    `i32` dot product with no correction term), weights stored
//!    transposed so each output neuron reads a contiguous `i8` row, and a
//!    piecewise-linear sigmoid. This is the bounded-error fast path
//!    `Model::enable_q8` routes inference through for fleet serving; its
//!    error budget is documented on [`Q8Engine`] and enforced by the
//!    decision-agreement gate in the fleet tests (DESIGN §10 explains why
//!    the serving tier accepts bounded error while the kernel closed
//!    loops stay bit-exact).

use crate::layers::LayerKind;
use crate::matrix::Matrix;
use crate::model::Model;
use crate::scalar::Scalar;
use crate::{KmlError, Result};

/// An int8-quantized matrix with affine dequantization parameters:
/// `real ≈ scale × (q − zero_point)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: f32,
    zero_point: i32,
}

impl QuantizedMatrix {
    /// Quantizes an `f32` matrix with per-tensor affine parameters chosen
    /// from its min/max range.
    pub fn quantize(m: &Matrix<f32>) -> QuantizedMatrix {
        let (mut lo, mut hi) = (0.0f32, 0.0f32); // always include 0
        for &v in m.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = (hi - lo).max(1e-8);
        let scale = range / 255.0;
        let zero_point = (-128.0 - lo / scale).round() as i32;
        let data = m
            .as_slice()
            .iter()
            .map(|&v| ((v / scale).round() as i32 + zero_point).clamp(-128, 127) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scale,
            zero_point,
        }
    }

    /// Reconstructs the approximate `f32` matrix.
    pub fn dequantize(&self) -> Matrix<f32> {
        let data: Vec<f32> = self
            .data
            .iter()
            .map(|&q| self.scale * (q as i32 - self.zero_point) as f32)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved")
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bytes of element storage (1 per entry).
    pub fn storage_bytes(&self) -> usize {
        self.data.len()
    }

    /// `x · Wᵠ` for a 1×rows `f32` input row: the input is quantized on the
    /// fly, products accumulate in `i32`, the result dequantizes to `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matmul_row(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(KmlError::ShapeMismatch {
                op: "quantized matmul",
                lhs: (1, x.len()),
                rhs: (self.rows, self.cols),
            });
        }
        // Quantize the activation row (per-call affine, symmetric range).
        let amax = x.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
        let x_scale = amax / 127.0;
        let xq: Vec<i32> = x
            .iter()
            .map(|&v| (v / x_scale).round().clamp(-127.0, 127.0) as i32)
            .collect();

        let mut out = vec![0.0f32; self.cols];
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            let mut qsum: i64 = 0;
            for (r, &xv) in xq.iter().enumerate() {
                let w = self.data[r * self.cols + c] as i64;
                acc += xv as i64 * w;
                qsum += xv as i64;
            }
            // real = x_scale·xq · scale·(w − zp) summed
            //      = x_scale·scale · (Σ xq·w − zp·Σ xq)
            let corrected = acc - self.zero_point as i64 * qsum;
            *o = x_scale * self.scale * corrected as f32;
        }
        Ok(out)
    }
}

/// A quantized, inference-only deployment of a trained chain model: int8
/// linear layers, `f32` activations, the normalizer carried over.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    layers: Vec<QLayer>,
    input_dim: usize,
    output_dim: usize,
    normalizer: Option<crate::dataset::Normalizer>,
}

#[derive(Debug, Clone)]
enum QLayer {
    Linear {
        weights: QuantizedMatrix,
        bias: Vec<f32>,
    },
    Activation(LayerKind),
}

impl QuantizedModel {
    /// Quantizes a trained `f32` chain model.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if the model is not a chain of
    /// linear and element-wise layers.
    pub fn from_model(model: &Model<f32>) -> Result<QuantizedModel> {
        if !model.graph().is_chain() {
            return Err(KmlError::InvalidConfig(
                "only chain models can be quantized".into(),
            ));
        }
        let mut layers = Vec::new();
        for layer in model.graph().layers() {
            match layer.kind() {
                LayerKind::Linear => {
                    let params = layer.params();
                    layers.push(QLayer::Linear {
                        weights: QuantizedMatrix::quantize(params[0]),
                        bias: params[1].as_slice().to_vec(),
                    });
                }
                kind @ (LayerKind::Sigmoid
                | LayerKind::Relu
                | LayerKind::Tanh
                | LayerKind::Softmax) => layers.push(QLayer::Activation(kind)),
            }
        }
        Ok(QuantizedModel {
            layers,
            input_dim: model.input_dim(),
            output_dim: model.output_dim(),
            normalizer: model.normalizer().cloned(),
        })
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Bytes of parameter storage (int8 weights + f32 biases).
    pub fn param_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Linear { weights, bias } => weights.storage_bytes() + bias.len() * 4,
                QLayer::Activation(_) => 0,
            })
            .sum()
    }

    /// Runs inference on one feature vector; returns the raw output row.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] on dimension mismatch.
    pub fn infer(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.input_dim {
            return Err(KmlError::ShapeMismatch {
                op: "quantized infer",
                lhs: (1, features.len()),
                rhs: (1, self.input_dim),
            });
        }
        let mut row: Vec<f64> = features.to_vec();
        if let Some(n) = &self.normalizer {
            n.apply_row(&mut row)?;
        }
        let mut x: Vec<f32> = row.iter().map(|&v| v as f32).collect();
        for layer in &self.layers {
            x = match layer {
                QLayer::Linear { weights, bias } => {
                    let mut y = weights.matmul_row(&x)?;
                    for (v, b) in y.iter_mut().zip(bias) {
                        *v += b;
                    }
                    y
                }
                QLayer::Activation(kind) => match kind {
                    LayerKind::Sigmoid => x
                        .iter()
                        .map(|&v| crate::math::sigmoid(v as f64) as f32)
                        .collect(),
                    LayerKind::Relu => x.iter().map(|&v| v.max(0.0)).collect(),
                    LayerKind::Tanh => x
                        .iter()
                        .map(|&v| crate::math::tanh(v as f64) as f32)
                        .collect(),
                    LayerKind::Softmax => {
                        let mut v: Vec<f64> = x.iter().map(|&a| a as f64).collect();
                        crate::math::softmax_in_place(&mut v);
                        v.into_iter().map(|a| a as f32).collect()
                    }
                    LayerKind::Linear => unreachable!("linear handled above"),
                },
            };
        }
        Ok(x.into_iter().map(|v| v as f64).collect())
    }

    /// Predicted class (argmax of [`QuantizedModel::infer`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantizedModel::infer`].
    pub fn predict(&self, features: &[f64]) -> Result<usize> {
        let out = self.infer(features)?;
        let mut best = 0;
        for (i, v) in out.iter().enumerate() {
            if *v > out[best] {
                best = i;
            }
        }
        Ok(best)
    }
}

// ===========================================================================
// Q8: the serving-tier per-row symmetric engine.
// ===========================================================================

/// Knot count for the piecewise-linear sigmoid: 257 knots over `[-8, 8]`
/// at spacing `h = 1/16`.
pub(crate) const Q8_SIGMOID_KNOTS: usize = 257;

/// Documented worst-case absolute error of [`q8_sigmoid`] against
/// [`crate::math::sigmoid`]: the linear-interpolation error inside
/// `[-8, 8]` is at most `h²/8 · max|σ''| < 5e-5`, and the saturated tails
/// clamp to `σ(±8)`, off by at most `σ(-8) ≈ 3.4e-4`. Enforced by test.
pub const Q8_SIGMOID_MAX_ERR: f32 = 4.0e-4;

fn q8_sigmoid_table() -> &'static [f32; Q8_SIGMOID_KNOTS] {
    static TABLE: std::sync::OnceLock<[f32; Q8_SIGMOID_KNOTS]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f32; Q8_SIGMOID_KNOTS];
        for (i, v) in t.iter_mut().enumerate() {
            *v = crate::math::sigmoid(-8.0 + i as f64 / 16.0) as f32;
        }
        t
    })
}

/// Piecewise-linear sigmoid used by the Q8 serving engine: 257 knots of
/// [`crate::math::sigmoid`] over `[-8, 8]`, linear interpolation between
/// knots, saturation to the boundary knots outside. Max absolute error
/// [`Q8_SIGMOID_MAX_ERR`].
#[inline]
pub fn q8_sigmoid(x: f32) -> f32 {
    let table = q8_sigmoid_table();
    let t = (x + 8.0) * 16.0;
    if t <= 0.0 {
        table[0]
    } else if t >= (Q8_SIGMOID_KNOTS - 1) as f32 {
        table[Q8_SIGMOID_KNOTS - 1]
    } else {
        let idx = t as usize;
        let frac = t - idx as f32;
        let k0 = table[idx];
        table[idx] + (table[idx + 1] - k0) * frac
    }
}

/// An int8 linear layer with **per-output-row symmetric** scales.
///
/// Weights are stored transposed relative to [`crate::layers::Linear`]
/// (`out_dim` rows of `in_dim` contiguous `i8`s, one row per output
/// neuron) with one scale per row: `sw[o] = maxabs(W[:,o]) / 127`,
/// `wq = round_ties_even(w / sw)` clamped to `[-127, 127]`. No zero
/// point: symmetric quantization makes the accumulator a pure signed dot
/// product.
///
/// Error bounds (enforced by the round-trip proptest):
/// - general: `|w − sw·wq| ≤ sw/2` per element (half a quantization step);
/// - all-zero row: `sw = 0` and the reconstruction is exactly zero;
/// - single-weight row: the extreme element maps to ±127 exactly, so its
///   relative error is at most `1/254`.
#[derive(Debug, Clone)]
pub struct Q8Linear {
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
    /// `out_dim × in_dim`, row `o` = weights of output neuron `o`.
    wq: Vec<i8>,
    /// Per-output-row scale (`0.0` exactly for all-zero rows).
    sw: Vec<f32>,
    bias: Vec<f32>,
    /// Input pairs (`⌈in_dim/2⌉`) for the vector layout below.
    pub(crate) npairs: usize,
    /// Output vectors (`⌈out_dim/8⌉`) for the vector layout below.
    pub(crate) outv8: usize,
    /// `vpmaddwd` weight layout: per input pair and 8-output vector, 16
    /// interleaved `i16` lanes (see [`crate::simd::q8`]); zero-padded.
    pub(crate) wp: Vec<i16>,
    /// `sw` zero-padded to `8·outv8` (padding lanes compute `0·acc`).
    pub(crate) swp: Vec<f32>,
    /// `bias` zero-padded to `8·outv8`.
    pub(crate) biasp: Vec<f32>,
}

impl Q8Linear {
    /// Quantizes a trained linear layer (`weights: in×out`, `bias: 1×out`,
    /// any scalar type — values round-trip through `f64`).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if `in_dim` is large enough for
    /// the `i32` accumulator to overflow (`in_dim · 127² ≥ 2³¹`).
    pub fn from_params<S: Scalar>(weights: &Matrix<S>, bias: &Matrix<S>) -> Result<Q8Linear> {
        let (in_dim, out_dim) = (weights.rows(), weights.cols());
        if in_dim >= (i32::MAX as usize) / (127 * 127) {
            return Err(KmlError::InvalidConfig(format!(
                "q8: in_dim {in_dim} would overflow the i32 accumulator"
            )));
        }
        let w = weights.as_slice();
        let mut wq = vec![0i8; in_dim * out_dim];
        let mut sw = vec![0.0f32; out_dim];
        for o in 0..out_dim {
            let mut amax = 0.0f32;
            for i in 0..in_dim {
                amax = amax.max((w[i * out_dim + o].to_f64() as f32).abs());
            }
            if amax == 0.0 {
                continue; // sw[o] stays 0.0, row stays all-zero: exact.
            }
            let scale = amax / 127.0;
            sw[o] = scale;
            let inv = 1.0 / scale;
            for i in 0..in_dim {
                let v = w[i * out_dim + o].to_f64() as f32;
                wq[o * in_dim + i] = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
            }
        }
        let biasf: Vec<f32> = bias.as_slice().iter().map(|b| b.to_f64() as f32).collect();

        // Pre-pack the vpmaddwd layout the AVX2 serving kernel streams
        // (cheap and small; built unconditionally so enabling Q8 on one
        // machine and serving on another never changes representation).
        let npairs = in_dim.div_ceil(2);
        let outv8 = out_dim.div_ceil(8);
        let mut wp = vec![0i16; npairs * outv8 * 16];
        for p in 0..npairs {
            for o in 0..out_dim {
                let g = (p * outv8 + o / 8) * 16 + (o % 8) * 2;
                wp[g] = wq[o * in_dim + 2 * p] as i16;
                if 2 * p + 1 < in_dim {
                    wp[g + 1] = wq[o * in_dim + 2 * p + 1] as i16;
                }
            }
        }
        let mut swp = vec![0.0f32; outv8 * 8];
        swp[..out_dim].copy_from_slice(&sw);
        let mut biasp = vec![0.0f32; outv8 * 8];
        biasp[..out_dim].copy_from_slice(&biasf);

        Ok(Q8Linear {
            in_dim,
            out_dim,
            wq,
            sw,
            bias: biasf,
            npairs,
            outv8,
            wp,
            swp,
            biasp,
        })
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Per-output-row quantization scale.
    pub fn row_scale(&self, o: usize) -> f32 {
        self.sw[o]
    }

    /// Reconstructed weight `W[i, o] ≈ sw[o] · wq[o, i]` (for error-bound
    /// tests).
    pub fn dequantized_weight(&self, i: usize, o: usize) -> f32 {
        self.sw[o] * self.wq[o * self.in_dim + i] as f32
    }

    /// Bytes of parameter storage (i8 weights + f32 scales and biases).
    pub fn param_bytes(&self) -> usize {
        self.wq.len() + 4 * (self.sw.len() + self.bias.len())
    }

    /// `y[o] = (Σᵢ wq[o,i]·xq[i]) · (sx·sw[o]) + bias[o]` — pure `i32`
    /// accumulation, one f32 multiply-add epilogue per output. The scalar
    /// reference for the AVX2 serving GEMV in `crate::simd::q8`
    /// (activations are `i16` storage but always hold values in
    /// `[-127, 127]`).
    #[inline]
    fn forward(&self, xq: &[i16], sx: f32, out: &mut [f32]) {
        debug_assert_eq!(xq.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (o, y) in out.iter_mut().enumerate() {
            let row = &self.wq[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0i32;
            for (&wv, &xv) in row.iter().zip(xq) {
                acc += wv as i32 * xv as i32;
            }
            *y = acc as f32 * (sx * self.sw[o]) + self.bias[o];
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Q8EngineLayer {
    Linear(Q8Linear),
    Sigmoid,
    Relu,
}

/// The Q8 serving engine: a pre-quantized, inference-only copy of a chain
/// model's layers that [`Model::enable_q8`] routes `predict`/`infer_batch`
/// calls through.
///
/// **Number format.** Linear layers are [`Q8Linear`] (per-output-row
/// symmetric `i8`, `i32` accumulation); activations are applied in `f32`
/// between layers, with sigmoid evaluated by [`q8_sigmoid`]. Activation
/// rows are re-quantized per row with a symmetric per-tensor scale
/// `sx = maxabs(x)/127` (an all-zero row uses `sx = 1`, which quantizes —
/// and reconstructs — exactly).
///
/// **Error budget.** Per linear layer, quantization perturbs each logit by
/// at most `Σᵢ(|x̂ᵢ|·sw/2 + |ŵᵢ|·sx/2 + sx·sw/4)` (weight error times
/// activation, plus activation error times weight, plus the cross term);
/// the sigmoid adds
/// [`Q8_SIGMOID_MAX_ERR`] per lane and its slope ≤ ¼ contracts upstream
/// error. There is no bit-exactness claim — correctness is gated
/// *behaviourally*: the fleet sweep requires ≥99.5% decision agreement
/// with the f32 model and a bounded max logit error (see
/// `kml-fleet`'s `q8_agreement` test and DESIGN §10).
///
/// Supported layers: `Linear`, `Sigmoid`, `Relu`. `Tanh`/`Softmax` chains
/// are rejected at build time (the fleet topologies never use them; the
/// f32 path remains available).
#[derive(Debug, Clone)]
pub struct Q8Engine {
    layers: Vec<Q8EngineLayer>,
    input_dim: usize,
    output_dim: usize,
    // The working buffers hold the widest layer width rounded up to the
    // 8-lane boundary (zero-alloc steady state), and the slice
    // `[width..pad8(width)]` of the active buffer is kept zeroed so the
    // vector kernels can run unmasked over full lanes.
    xq: Vec<i16>,
    a: Vec<f32>,
    b: Vec<f32>,
    // Two-row staging for [`Q8Engine::infer_row_pair`]: row 0 at
    // `[0..stride]`, row 1 at `[stride..2·stride]`.
    stage: Vec<f32>,
    stride: usize,
}

/// Rounds a layer width up to the 8-lane vector boundary.
#[inline]
fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

impl Q8Engine {
    /// Builds the engine from a chain graph (any scalar type).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if the graph is not a chain or
    /// contains a layer kind the Q8 engine does not support.
    pub fn from_graph<S: Scalar>(
        graph: &crate::graph::Graph<S>,
        input_dim: usize,
        output_dim: usize,
    ) -> Result<Q8Engine> {
        if !graph.is_chain() {
            return Err(KmlError::InvalidConfig(
                "q8: only chain models can be quantized".into(),
            ));
        }
        let mut layers = Vec::new();
        let mut width = input_dim.max(output_dim);
        for layer in graph.layers() {
            match layer.kind() {
                LayerKind::Linear => {
                    let params = layer.params();
                    let q = Q8Linear::from_params(params[0], params[1])?;
                    width = width.max(q.in_dim).max(q.out_dim);
                    layers.push(Q8EngineLayer::Linear(q));
                }
                LayerKind::Sigmoid => layers.push(Q8EngineLayer::Sigmoid),
                LayerKind::Relu => layers.push(Q8EngineLayer::Relu),
                kind @ (LayerKind::Tanh | LayerKind::Softmax) => {
                    return Err(KmlError::InvalidConfig(format!(
                        "q8: unsupported layer kind {kind}"
                    )));
                }
            }
        }
        let width_pad = pad8(width);
        // The pair path keeps both rows register-resident, which wants row
        // slots exactly two vectors apart; wider (fallback-only) engines
        // just need room for two output rows.
        let stride = width_pad.max(16);
        Ok(Q8Engine {
            layers,
            input_dim,
            output_dim,
            xq: vec![0; width_pad],
            a: vec![0.0; width_pad],
            b: vec![0.0; width_pad],
            stage: vec![0.0; 2 * stride],
            stride,
        })
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Bytes of parameter storage.
    pub fn param_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Q8EngineLayer::Linear(q) => q.param_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Per-linear-layer calibration tables: the per-output-row symmetric
    /// scales `sw[o] = maxabs(W[:,o]) / 127`, one `Vec<f32>` per linear
    /// layer in chain order. A deterministic function of the weights, so
    /// artifact formats can embed them and verify on load that a rebuilt
    /// engine reproduces the calibration the model shipped with.
    pub fn row_scale_tables(&self) -> Vec<Vec<f32>> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                Q8EngineLayer::Linear(q) => Some(q.sw.clone()),
                _ => None,
            })
            .collect()
    }

    /// Runs the engine on one **already normalized** feature row and
    /// returns the `f32` logit row (borrowed from the engine's scratch).
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if `row.len() != input_dim`.
    pub fn infer_row(&mut self, row: &[f64]) -> Result<&[f32]> {
        if row.len() != self.input_dim {
            return Err(KmlError::ShapeMismatch {
                op: "q8 infer",
                lhs: (1, row.len()),
                rhs: (1, self.input_dim),
            });
        }
        for (dst, &src) in self.a.iter_mut().zip(row) {
            *dst = src as f32;
        }
        for v in &mut self.a[self.input_dim..pad8(self.input_dim)] {
            *v = 0.0;
        }

        // The vector fast path runs the whole chain in one fused kernel
        // (see `crate::simd::q8`); the scalar loop below is the reference
        // implementation and the fallback on non-AVX2 hosts or under
        // KML_FORCE_SCALAR=1.
        if crate::simd::q8::infer_chain(
            &self.layers,
            &mut self.a,
            &mut self.b,
            &mut self.xq,
            self.input_dim,
        ) {
            return Ok(&self.a[..self.output_dim]);
        }

        let mut width = self.input_dim;
        // Ping-pong between the two scratch rows; `a` always holds the
        // current activations (in `[..width]`) on entry to each layer.
        for layer in &self.layers {
            match layer {
                Q8EngineLayer::Linear(q) => {
                    // Per-row symmetric activation quantization.
                    let x = &self.a[..width];
                    let mut amax = 0.0f32;
                    for &v in x {
                        amax = amax.max(v.abs());
                    }
                    let sx = if amax == 0.0 { 1.0 } else { amax / 127.0 };
                    let inv = 1.0 / sx;
                    for (dst, &v) in self.xq.iter_mut().zip(x) {
                        *dst = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
                    }
                    q.forward(&self.xq[..width], sx, &mut self.b[..q.out_dim]);
                    width = q.out_dim;
                    std::mem::swap(&mut self.a, &mut self.b);
                }
                Q8EngineLayer::Sigmoid => {
                    for v in &mut self.a[..width] {
                        *v = q8_sigmoid(*v);
                    }
                }
                Q8EngineLayer::Relu => {
                    for v in &mut self.a[..width] {
                        // Mirrors Scalar::relu: anything not > 0 (incl. NaN) → 0.
                        *v = if *v > 0.0 { *v } else { 0.0 };
                    }
                }
            }
        }
        debug_assert_eq!(width, self.output_dim);
        Ok(&self.a[..self.output_dim])
    }

    /// Runs **two** already-normalized rows through the engine and returns
    /// both `f32` logit rows (borrowed from the engine's scratch).
    ///
    /// On register-narrow chains (every layer ≤ 16 wide — all the fleet
    /// topologies) the rows execute software-pipelined in one fused vector
    /// kernel, overlapping their latency chains; this is how the batched
    /// serving paths ([`crate::model::Model::infer_batch_into`] /
    /// `predict_batch_into`) consume the engine. Wide chains and scalar
    /// hosts fall back to two sequential [`Q8Engine::infer_row`] passes
    /// with identical results.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if either row's length differs
    /// from `input_dim`.
    pub fn infer_row_pair(&mut self, r0: &[f64], r1: &[f64]) -> Result<(&[f32], &[f32])> {
        for row in [r0, r1] {
            if row.len() != self.input_dim {
                return Err(KmlError::ShapeMismatch {
                    op: "q8 infer",
                    lhs: (1, row.len()),
                    rhs: (1, self.input_dim),
                });
            }
        }
        let stride = self.stride;
        let pad = pad8(self.input_dim);
        for (slot, row) in [(0, r0), (stride, r1)] {
            for (dst, &src) in self.stage[slot..].iter_mut().zip(row) {
                *dst = src as f32;
            }
            for v in &mut self.stage[slot + self.input_dim..slot + pad] {
                *v = 0.0;
            }
        }
        if !crate::simd::q8::infer_chain2(&self.layers, &mut self.stage, self.input_dim, stride) {
            // Fallback: two single-row passes (shapes validated above, so
            // `infer_row` cannot fail). The stage buffer is parked aside
            // while `infer_row` borrows the engine.
            let mut stage = std::mem::take(&mut self.stage);
            for (slot, row) in [(0, r0), (stride, r1)] {
                let out = self.infer_row(row).expect("shapes validated");
                stage[slot..slot + out.len()].copy_from_slice(out);
            }
            self.stage = stage;
        }
        let (s0, s1) = self.stage.split_at(stride);
        Ok((&s0[..self.output_dim], &s1[..self.output_dim]))
    }

    /// Argmax of [`Q8Engine::infer_row`] (first index wins ties, matching
    /// the f32 model's argmax rule).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Q8Engine::infer_row`].
    pub fn predict_row(&mut self, row: &[f64]) -> Result<usize> {
        let out = self.infer_row(row)?;
        let mut best = 0;
        for (i, v) in out.iter().enumerate() {
            if *v > out[best] {
                best = i;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Normalizer};
    use crate::loss::CrossEntropyLoss;
    use crate::model::ModelBuilder;
    use crate::optimizer::Sgd;
    use crate::KmlRng;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantize_dequantize_error_is_bounded() {
        let mut rng = KmlRng::seed_from_u64(5);
        let m = Matrix::<f32>::xavier_uniform(10, 10, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let d = q.dequantize();
        let range: f32 = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs())) * 2.0;
        let step = range / 255.0;
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            assert!(
                (a - b).abs() <= step,
                "error {} > step {step}",
                (a - b).abs()
            );
        }
        assert_eq!(q.storage_bytes(), 100); // 1 byte per entry
    }

    #[test]
    fn quantized_matmul_tracks_float_matmul() {
        let mut rng = KmlRng::seed_from_u64(7);
        let w = Matrix::<f32>::xavier_uniform(8, 6, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let x: Vec<f32> = (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let got = q.matmul_row(&x).unwrap();
        let want = Matrix::row_vector(&x).matmul(&w).unwrap();
        for (g, &wv) in got.iter().zip(want.as_slice()) {
            assert!((g - wv).abs() < 0.1, "quantized {g} vs float {wv}");
        }
    }

    fn trained_classifier() -> (Model<f32>, Dataset) {
        let mut rng = KmlRng::seed_from_u64(9);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..300 {
            let class = rng.gen_range(0..3usize);
            let c = [(0.0, 0.0), (4.0, 1.0), (1.0, 4.0)][class];
            rows.push(vec![
                c.0 + rng.gen_range(-1.0..1.0),
                c.1 + rng.gen_range(-1.0..1.0),
            ]);
            labels.push(class);
        }
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let mut f64_model = ModelBuilder::new(2)
            .linear(10)
            .sigmoid()
            .linear(3)
            .seed(4)
            .build::<f64>()
            .unwrap();
        f64_model.set_normalizer(Normalizer::fit(data.features()).unwrap());
        let mut sgd = Sgd::new(0.3, 0.9);
        for _ in 0..120 {
            f64_model
                .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
                .unwrap();
        }
        let bytes = crate::modelfile::encode(&f64_model).unwrap();
        (crate::modelfile::decode::<f32>(&bytes).unwrap(), data)
    }

    #[test]
    fn quantized_model_keeps_classification_accuracy() {
        let (mut model, data) = trained_classifier();
        let qmodel = QuantizedModel::from_model(&model).unwrap();
        let mut agree = 0;
        for i in 0..data.len() {
            let (f, _) = data.sample(i);
            if qmodel.predict(f).unwrap() == model.predict(f).unwrap() {
                agree += 1;
            }
        }
        let ratio = agree as f64 / data.len() as f64;
        assert!(ratio > 0.97, "int8 agreement {ratio:.3}");
    }

    #[test]
    fn quantized_model_memory_shrinks_markedly() {
        let (model, _) = trained_classifier();
        let qmodel = QuantizedModel::from_model(&model).unwrap();
        // Weights shrink 4×; the f32 biases stay, so the overall ratio
        // depends on layer shapes — demand at least a halving here and
        // verify the asymptotic quarter on a weight-dominated model.
        assert!(qmodel.param_bytes() * 2 < model.param_bytes());

        let big = ModelBuilder::new(64)
            .linear(64)
            .sigmoid()
            .linear(4)
            .build::<f32>()
            .unwrap();
        let qbig = QuantizedModel::from_model(&big).unwrap();
        assert!(
            (qbig.param_bytes() as f64) < big.param_bytes() as f64 * 0.3,
            "{} !< 30% of {}",
            qbig.param_bytes(),
            big.param_bytes()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (model, _) = trained_classifier();
        let qmodel = QuantizedModel::from_model(&model).unwrap();
        assert!(qmodel.infer(&[1.0]).is_err());
        let q = QuantizedMatrix::quantize(&Matrix::<f32>::zeros(3, 2));
        assert!(q.matmul_row(&[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_within_one_step(
            vals in proptest::collection::vec(-10.0f32..10.0, 4..64)
        ) {
            let cols = vals.len();
            let m = Matrix::from_vec(1, cols, vals).unwrap();
            let q = QuantizedMatrix::quantize(&m);
            let d = q.dequantize();
            let lo = m.as_slice().iter().fold(0.0f32, |a, &v| a.min(v));
            let hi = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v));
            let step = ((hi - lo).max(1e-8)) / 255.0;
            for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
                prop_assert!((a - b).abs() <= step * 1.01);
            }
        }

        /// Q8 round trip: every weight reconstructs within half a
        /// quantization step of its own output row (f32 weights).
        #[test]
        fn prop_q8_round_trip_bound_f32(
            vals in proptest::collection::vec(-10.0f32..10.0, 6..60),
            out_dim in 1usize..6,
        ) {
            let in_dim = vals.len() / out_dim;
            let vals = vals[..in_dim * out_dim].to_vec();
            let w = Matrix::from_vec(in_dim, out_dim, vals).unwrap();
            let bias = Matrix::<f32>::zeros(1, out_dim);
            let q = Q8Linear::from_params(&w, &bias).unwrap();
            for o in 0..out_dim {
                let half_step = q.row_scale(o) * 0.5;
                for i in 0..in_dim {
                    let orig = w.as_slice()[i * out_dim + o];
                    let back = q.dequantized_weight(i, o);
                    prop_assert!(
                        (orig - back).abs() <= half_step * (1.0 + 1e-6),
                        "({i},{o}): |{orig} - {back}| > {half_step}"
                    );
                }
            }
        }

        /// Same bound for f64 source weights (quantization happens after a
        /// cast to f32, so the bound is against the f32 image).
        #[test]
        fn prop_q8_round_trip_bound_f64(
            vals in proptest::collection::vec(-100.0f64..100.0, 6..60),
            out_dim in 1usize..6,
        ) {
            let in_dim = vals.len() / out_dim;
            let vals = vals[..in_dim * out_dim].to_vec();
            let w = Matrix::from_vec(in_dim, out_dim, vals).unwrap();
            let bias = Matrix::<f64>::zeros(1, out_dim);
            let q = Q8Linear::from_params(&w, &bias).unwrap();
            for o in 0..out_dim {
                let half_step = q.row_scale(o) * 0.5;
                for i in 0..in_dim {
                    let orig = w.as_slice()[i * out_dim + o] as f32;
                    let back = q.dequantized_weight(i, o);
                    prop_assert!(
                        (orig - back).abs() <= half_step * (1.0 + 1e-6),
                        "({i},{o}): |{orig} - {back}| > {half_step}"
                    );
                }
            }
        }
    }

    /// Degenerate scales: an all-zero output row must quantize (scale 0)
    /// and reconstruct to exact zeros, and a row whose magnitude lives in
    /// a single weight must reconstruct that weight near-exactly (the
    /// extreme code ±127 maps back with relative error ≤ 1/254).
    #[test]
    fn q8_degenerate_rows_are_exact() {
        // Column 0: all zeros. Column 1: single non-zero weight.
        let w = Matrix::from_vec(3, 2, vec![0.0f32, 0.0, 0.0, -3.75, 0.0, 0.0]).unwrap();
        let bias = Matrix::from_vec(1, 2, vec![0.5f32, -0.25]).unwrap();
        let q = Q8Linear::from_params(&w, &bias).unwrap();

        assert_eq!(q.row_scale(0), 0.0);
        for i in 0..3 {
            assert_eq!(q.dequantized_weight(i, 0), 0.0);
        }
        // Zero row still contributes its bias through the forward pass.
        let xq = [127i16, 0, 0];
        let mut out = [0.0f32; 2];
        q.forward(&xq, 1.0 / 127.0, &mut out);
        assert_eq!(out[0], 0.5);

        // The dominant weight sits exactly on code -127.
        let back = q.dequantized_weight(1, 1);
        assert!(
            ((-3.75 - back) / 3.75).abs() <= 1.0 / 254.0,
            "single-weight row error: {back}"
        );
        assert_eq!(q.dequantized_weight(0, 1), 0.0);
    }

    /// The piecewise-linear sigmoid stays inside its documented error
    /// budget against the exact scalar sigmoid, across the knot range,
    /// both saturation tails, and non-finite inputs.
    #[test]
    fn q8_sigmoid_error_within_budget() {
        let mut max_err = 0.0f32;
        for i in 0..=200_000 {
            let x = -10.0 + i as f32 * (20.0 / 200_000.0);
            let got = q8_sigmoid(x);
            let want = crate::math::sigmoid(x as f64) as f32;
            max_err = max_err.max((got - want).abs());
        }
        assert!(
            max_err <= Q8_SIGMOID_MAX_ERR,
            "max |pwl - exact| = {max_err:e} > {Q8_SIGMOID_MAX_ERR:e}"
        );
        // The tails saturate to the boundary knots σ(±8); that saturation
        // error is exactly what the budget above accounts for.
        assert!(q8_sigmoid(f32::NEG_INFINITY) <= Q8_SIGMOID_MAX_ERR);
        assert!(1.0 - q8_sigmoid(f32::INFINITY) <= Q8_SIGMOID_MAX_ERR);
        // NaN propagates, matching the exact scalar sigmoid.
        assert!(q8_sigmoid(f32::NAN).is_nan());
    }

    /// Q8 engine construction rejects layer kinds it has no integer
    /// kernel for (tanh / softmax chains).
    #[test]
    fn q8_rejects_unsupported_layers() {
        let mut tanh_model = ModelBuilder::new(2)
            .linear(4)
            .tanh()
            .linear(2)
            .build::<f32>()
            .unwrap();
        assert!(tanh_model.enable_q8().is_err());
        assert!(!tanh_model.q8_enabled());

        let mut softmax_model = ModelBuilder::new(2)
            .linear(4)
            .softmax()
            .build::<f32>()
            .unwrap();
        assert!(softmax_model.enable_q8().is_err());
    }

    /// End-to-end Q8 serving on a trained classifier: decisions agree with
    /// the exact f32 path on ≥ 99.5% of the dataset and every logit stays
    /// within a small absolute band of the exact forward pass.
    #[test]
    fn q8_model_agreement_and_logit_error() {
        let (mut model, data) = trained_classifier();
        let mut exact = Vec::new();
        let mut exact_logits = Vec::new();
        for i in 0..data.len() {
            let (f, _) = data.sample(i);
            exact.push(model.predict(f).unwrap());
            exact_logits.push(model.infer(f).unwrap());
        }

        model.enable_q8().unwrap();
        assert!(model.q8_enabled());
        let mut agree = 0usize;
        let mut max_logit_err = 0.0f64;
        for i in 0..data.len() {
            let (f, _) = data.sample(i);
            if model.predict(f).unwrap() == exact[i] {
                agree += 1;
            }
            let q = model.infer(f).unwrap();
            for (a, b) in q.iter().zip(&exact_logits[i]) {
                max_logit_err = max_logit_err.max((a - b).abs());
            }
        }
        let ratio = agree as f64 / data.len() as f64;
        assert!(ratio >= 0.995, "q8 agreement {ratio:.4} < 0.995");
        // int8 resolves ~1/127 of each tensor's range per layer; on this
        // model's logit scale that lands well under 0.2 absolute.
        assert!(max_logit_err < 0.2, "q8 max logit error {max_logit_err:e}");

        // Batched entry points route through the same engine.
        let (f0, _) = data.sample(0);
        let mut batch = f0.to_vec();
        let (f1, _) = data.sample(1);
        batch.extend_from_slice(f1);
        let mut classes = Vec::new();
        model.predict_batch_into(&batch, 2, &mut classes).unwrap();
        assert_eq!(classes.len(), 2);
        let mut single0 = model.predict(f0).unwrap();
        assert_eq!(classes[0], single0);
        single0 = model.predict(f1).unwrap();
        assert_eq!(classes[1], single0);

        model.disable_q8();
        assert!(!model.q8_enabled());
        for (i, &want) in exact.iter().enumerate() {
            let (f, _) = data.sample(i);
            assert_eq!(model.predict(f).unwrap(), want);
        }
    }

    /// Training after `enable_q8` must transparently requantize: the
    /// serving engine tracks the updated weights, not the stale ones.
    #[test]
    fn q8_engine_refreshes_after_training() {
        let (mut model, data) = trained_classifier();
        model.enable_q8().unwrap();
        let (f, _) = data.sample(0);
        let _ = model.predict(f).unwrap();

        let mut rng = KmlRng::seed_from_u64(11);
        let mut sgd = Sgd::new(0.3, 0.9);
        model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .unwrap();

        // A freshly quantized engine over the post-training graph must
        // produce exactly the logits the (lazily refreshed) live engine
        // serves.
        let after_live: Vec<f64> = model.infer(f).unwrap();
        model.disable_q8();
        model.enable_q8().unwrap();
        let after_fresh: Vec<f64> = model.infer(f).unwrap();
        assert_eq!(after_live, after_fresh);
    }
}
