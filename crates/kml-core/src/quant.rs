//! Post-training int8 quantization (paper §3.1).
//!
//! "One way to represent matrices compactly is using quantization.
//! Quantization can reduce both computational and memory overheads, but
//! often reduces accuracy." This module implements the standard affine
//! int8 scheme for *inference*: each trained `f32` weight matrix is mapped
//! to `i8` with a per-tensor scale and zero point, matmuls accumulate in
//! `i32`, and activations stay in `f32` (the mixed scheme of Lai et al.,
//! which the paper cites). The quantized model is a quarter of the f32
//! parameter memory — the "accuracy vs. CPU/memory" trade-off §3.1 says
//! KML lets users make, measurable with `quantization_accuracy` tests and
//! the `ablate_dtype` benches.

use crate::layers::LayerKind;
use crate::matrix::Matrix;
use crate::model::Model;
use crate::{KmlError, Result};

/// An int8-quantized matrix with affine dequantization parameters:
/// `real ≈ scale × (q − zero_point)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: f32,
    zero_point: i32,
}

impl QuantizedMatrix {
    /// Quantizes an `f32` matrix with per-tensor affine parameters chosen
    /// from its min/max range.
    pub fn quantize(m: &Matrix<f32>) -> QuantizedMatrix {
        let (mut lo, mut hi) = (0.0f32, 0.0f32); // always include 0
        for &v in m.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = (hi - lo).max(1e-8);
        let scale = range / 255.0;
        let zero_point = (-128.0 - lo / scale).round() as i32;
        let data = m
            .as_slice()
            .iter()
            .map(|&v| ((v / scale).round() as i32 + zero_point).clamp(-128, 127) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scale,
            zero_point,
        }
    }

    /// Reconstructs the approximate `f32` matrix.
    pub fn dequantize(&self) -> Matrix<f32> {
        let data: Vec<f32> = self
            .data
            .iter()
            .map(|&q| self.scale * (q as i32 - self.zero_point) as f32)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved")
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bytes of element storage (1 per entry).
    pub fn storage_bytes(&self) -> usize {
        self.data.len()
    }

    /// `x · Wᵠ` for a 1×rows `f32` input row: the input is quantized on the
    /// fly, products accumulate in `i32`, the result dequantizes to `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matmul_row(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(KmlError::ShapeMismatch {
                op: "quantized matmul",
                lhs: (1, x.len()),
                rhs: (self.rows, self.cols),
            });
        }
        // Quantize the activation row (per-call affine, symmetric range).
        let amax = x.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
        let x_scale = amax / 127.0;
        let xq: Vec<i32> = x
            .iter()
            .map(|&v| (v / x_scale).round().clamp(-127.0, 127.0) as i32)
            .collect();

        let mut out = vec![0.0f32; self.cols];
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            let mut qsum: i64 = 0;
            for (r, &xv) in xq.iter().enumerate() {
                let w = self.data[r * self.cols + c] as i64;
                acc += xv as i64 * w;
                qsum += xv as i64;
            }
            // real = x_scale·xq · scale·(w − zp) summed
            //      = x_scale·scale · (Σ xq·w − zp·Σ xq)
            let corrected = acc - self.zero_point as i64 * qsum;
            *o = x_scale * self.scale * corrected as f32;
        }
        Ok(out)
    }
}

/// A quantized, inference-only deployment of a trained chain model: int8
/// linear layers, `f32` activations, the normalizer carried over.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    layers: Vec<QLayer>,
    input_dim: usize,
    output_dim: usize,
    normalizer: Option<crate::dataset::Normalizer>,
}

#[derive(Debug, Clone)]
enum QLayer {
    Linear {
        weights: QuantizedMatrix,
        bias: Vec<f32>,
    },
    Activation(LayerKind),
}

impl QuantizedModel {
    /// Quantizes a trained `f32` chain model.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::InvalidConfig`] if the model is not a chain of
    /// linear and element-wise layers.
    pub fn from_model(model: &Model<f32>) -> Result<QuantizedModel> {
        if !model.graph().is_chain() {
            return Err(KmlError::InvalidConfig(
                "only chain models can be quantized".into(),
            ));
        }
        let mut layers = Vec::new();
        for layer in model.graph().layers() {
            match layer.kind() {
                LayerKind::Linear => {
                    let params = layer.params();
                    layers.push(QLayer::Linear {
                        weights: QuantizedMatrix::quantize(params[0]),
                        bias: params[1].as_slice().to_vec(),
                    });
                }
                kind @ (LayerKind::Sigmoid
                | LayerKind::Relu
                | LayerKind::Tanh
                | LayerKind::Softmax) => layers.push(QLayer::Activation(kind)),
            }
        }
        Ok(QuantizedModel {
            layers,
            input_dim: model.input_dim(),
            output_dim: model.output_dim(),
            normalizer: model.normalizer().cloned(),
        })
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Bytes of parameter storage (int8 weights + f32 biases).
    pub fn param_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Linear { weights, bias } => weights.storage_bytes() + bias.len() * 4,
                QLayer::Activation(_) => 0,
            })
            .sum()
    }

    /// Runs inference on one feature vector; returns the raw output row.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::ShapeMismatch`] on dimension mismatch.
    pub fn infer(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.input_dim {
            return Err(KmlError::ShapeMismatch {
                op: "quantized infer",
                lhs: (1, features.len()),
                rhs: (1, self.input_dim),
            });
        }
        let mut row: Vec<f64> = features.to_vec();
        if let Some(n) = &self.normalizer {
            n.apply_row(&mut row)?;
        }
        let mut x: Vec<f32> = row.iter().map(|&v| v as f32).collect();
        for layer in &self.layers {
            x = match layer {
                QLayer::Linear { weights, bias } => {
                    let mut y = weights.matmul_row(&x)?;
                    for (v, b) in y.iter_mut().zip(bias) {
                        *v += b;
                    }
                    y
                }
                QLayer::Activation(kind) => match kind {
                    LayerKind::Sigmoid => x
                        .iter()
                        .map(|&v| crate::math::sigmoid(v as f64) as f32)
                        .collect(),
                    LayerKind::Relu => x.iter().map(|&v| v.max(0.0)).collect(),
                    LayerKind::Tanh => x
                        .iter()
                        .map(|&v| crate::math::tanh(v as f64) as f32)
                        .collect(),
                    LayerKind::Softmax => {
                        let mut v: Vec<f64> = x.iter().map(|&a| a as f64).collect();
                        crate::math::softmax_in_place(&mut v);
                        v.into_iter().map(|a| a as f32).collect()
                    }
                    LayerKind::Linear => unreachable!("linear handled above"),
                },
            };
        }
        Ok(x.into_iter().map(|v| v as f64).collect())
    }

    /// Predicted class (argmax of [`QuantizedModel::infer`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantizedModel::infer`].
    pub fn predict(&self, features: &[f64]) -> Result<usize> {
        let out = self.infer(features)?;
        let mut best = 0;
        for (i, v) in out.iter().enumerate() {
            if *v > out[best] {
                best = i;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Normalizer};
    use crate::loss::CrossEntropyLoss;
    use crate::model::ModelBuilder;
    use crate::optimizer::Sgd;
    use crate::KmlRng;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantize_dequantize_error_is_bounded() {
        let mut rng = KmlRng::seed_from_u64(5);
        let m = Matrix::<f32>::xavier_uniform(10, 10, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let d = q.dequantize();
        let range: f32 = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs())) * 2.0;
        let step = range / 255.0;
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            assert!(
                (a - b).abs() <= step,
                "error {} > step {step}",
                (a - b).abs()
            );
        }
        assert_eq!(q.storage_bytes(), 100); // 1 byte per entry
    }

    #[test]
    fn quantized_matmul_tracks_float_matmul() {
        let mut rng = KmlRng::seed_from_u64(7);
        let w = Matrix::<f32>::xavier_uniform(8, 6, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let x: Vec<f32> = (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let got = q.matmul_row(&x).unwrap();
        let want = Matrix::row_vector(&x).matmul(&w).unwrap();
        for (g, &wv) in got.iter().zip(want.as_slice()) {
            assert!((g - wv).abs() < 0.1, "quantized {g} vs float {wv}");
        }
    }

    fn trained_classifier() -> (Model<f32>, Dataset) {
        let mut rng = KmlRng::seed_from_u64(9);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..300 {
            let class = rng.gen_range(0..3usize);
            let c = [(0.0, 0.0), (4.0, 1.0), (1.0, 4.0)][class];
            rows.push(vec![
                c.0 + rng.gen_range(-1.0..1.0),
                c.1 + rng.gen_range(-1.0..1.0),
            ]);
            labels.push(class);
        }
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let mut f64_model = ModelBuilder::new(2)
            .linear(10)
            .sigmoid()
            .linear(3)
            .seed(4)
            .build::<f64>()
            .unwrap();
        f64_model.set_normalizer(Normalizer::fit(data.features()).unwrap());
        let mut sgd = Sgd::new(0.3, 0.9);
        for _ in 0..120 {
            f64_model
                .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
                .unwrap();
        }
        let bytes = crate::modelfile::encode(&f64_model).unwrap();
        (crate::modelfile::decode::<f32>(&bytes).unwrap(), data)
    }

    #[test]
    fn quantized_model_keeps_classification_accuracy() {
        let (mut model, data) = trained_classifier();
        let qmodel = QuantizedModel::from_model(&model).unwrap();
        let mut agree = 0;
        for i in 0..data.len() {
            let (f, _) = data.sample(i);
            if qmodel.predict(f).unwrap() == model.predict(f).unwrap() {
                agree += 1;
            }
        }
        let ratio = agree as f64 / data.len() as f64;
        assert!(ratio > 0.97, "int8 agreement {ratio:.3}");
    }

    #[test]
    fn quantized_model_memory_shrinks_markedly() {
        let (model, _) = trained_classifier();
        let qmodel = QuantizedModel::from_model(&model).unwrap();
        // Weights shrink 4×; the f32 biases stay, so the overall ratio
        // depends on layer shapes — demand at least a halving here and
        // verify the asymptotic quarter on a weight-dominated model.
        assert!(qmodel.param_bytes() * 2 < model.param_bytes());

        let big = ModelBuilder::new(64)
            .linear(64)
            .sigmoid()
            .linear(4)
            .build::<f32>()
            .unwrap();
        let qbig = QuantizedModel::from_model(&big).unwrap();
        assert!(
            (qbig.param_bytes() as f64) < big.param_bytes() as f64 * 0.3,
            "{} !< 30% of {}",
            qbig.param_bytes(),
            big.param_bytes()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (model, _) = trained_classifier();
        let qmodel = QuantizedModel::from_model(&model).unwrap();
        assert!(qmodel.infer(&[1.0]).is_err());
        let q = QuantizedMatrix::quantize(&Matrix::<f32>::zeros(3, 2));
        assert!(q.matmul_row(&[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_within_one_step(
            vals in proptest::collection::vec(-10.0f32..10.0, 4..64)
        ) {
            let cols = vals.len();
            let m = Matrix::from_vec(1, cols, vals).unwrap();
            let q = QuantizedMatrix::quantize(&m);
            let d = q.dequantize();
            let lo = m.as_slice().iter().fold(0.0f32, |a, &v| a.min(v));
            let hi = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v));
            let step = ((hi - lo).max(1e-8)) / 255.0;
            for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
                prop_assert!((a - b).abs() <= step * 1.01);
            }
        }
    }
}
