//! Model validation: accuracy, confusion matrices, k-fold cross-validation.
//!
//! The paper measures its readahead classifier "using k-fold cross-validation
//! with k = 10, and found that our model reached an average accuracy of
//! 95.5%" (§4). [`k_fold_cross_validate`] reproduces that protocol for any
//! model-factory closure, so the same harness validates neural networks and
//! decision trees.

use crate::dataset::{Dataset, Normalizer};
use crate::loss::Loss;
use crate::model::Model;
use crate::optimizer::Sgd;
use crate::scalar::Scalar;
use crate::{KmlError, KmlRng, Result};

/// Fraction of `predictions` equal to `truth`.
///
/// # Errors
///
/// Returns [`KmlError::BadDataset`] on length mismatch or empty input.
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> Result<f64> {
    if predictions.len() != truth.len() || predictions.is_empty() {
        return Err(KmlError::BadDataset(format!(
            "accuracy over {} predictions vs {} labels",
            predictions.len(),
            truth.len()
        )));
    }
    let correct = predictions
        .iter()
        .zip(truth)
        .filter(|(p, t)| p == t)
        .count();
    Ok(correct as f64 / truth.len() as f64)
}

/// A `classes × classes` confusion matrix; `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`KmlError::BadDataset`] on length mismatch or a label out of
    /// `0..classes`.
    pub fn from_predictions(
        predictions: &[usize],
        truth: &[usize],
        classes: usize,
    ) -> Result<Self> {
        if predictions.len() != truth.len() {
            return Err(KmlError::BadDataset(
                "prediction/label count mismatch".into(),
            ));
        }
        let mut counts = vec![vec![0usize; classes]; classes];
        for (&p, &t) in predictions.iter().zip(truth) {
            if p >= classes || t >= classes {
                return Err(KmlError::BadDataset(format!(
                    "label {p}/{t} out of range for {classes} classes"
                )));
            }
            counts[t][p] += 1;
        }
        Ok(ConfusionMatrix { counts })
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Per-class recall (`None` when the class has no samples).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let total: usize = self.counts[class].iter().sum();
        (total > 0).then(|| self.counts[class][class] as f64 / total as f64)
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Per-fold results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Held-out accuracy of each fold.
    pub fold_accuracies: Vec<f64>,
}

impl CrossValidation {
    /// Mean held-out accuracy across folds (the paper's 95.5% figure).
    pub fn mean_accuracy(&self) -> f64 {
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len().max(1) as f64
    }

    /// Sample standard deviation of the fold accuracies.
    pub fn std_accuracy(&self) -> f64 {
        let n = self.fold_accuracies.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_accuracy();
        let var = self
            .fold_accuracies
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        crate::math::sqrt(var)
    }
}

/// k-fold cross-validation of a neural-network recipe.
///
/// For each fold: fit a fresh normalizer **on the training split only**,
/// train `epochs` epochs with the supplied loss/optimizer settings, and
/// score on the held-out fold. `make_model` receives the fold index so
/// callers can vary seeds.
///
/// # Errors
///
/// Returns [`KmlError::BadDataset`] if `k < 2` or `k > data.len()`, and
/// propagates training errors.
pub fn k_fold_cross_validate<S: Scalar>(
    data: &Dataset,
    k: usize,
    epochs: usize,
    loss: &impl Loss,
    mut make_model: impl FnMut(usize) -> Result<Model<S>>,
    mut make_sgd: impl FnMut() -> Sgd,
    rng: &mut KmlRng,
) -> Result<CrossValidation> {
    if k < 2 || k > data.len() {
        return Err(KmlError::BadDataset(format!(
            "k = {k} invalid for {} samples",
            data.len()
        )));
    }
    let shuffled = data.shuffled(rng);
    let n = shuffled.len();
    let mut fold_accuracies = Vec::with_capacity(k);

    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let test_idx: Vec<usize> = (lo..hi).collect();
        let train_idx: Vec<usize> = (0..lo).chain(hi..n).collect();
        let train = shuffled.subset(&train_idx)?;
        let test = shuffled.subset(&test_idx)?;

        let mut model = make_model(fold)?;
        model.set_normalizer(Normalizer::fit(train.features())?);
        let mut sgd = make_sgd();
        for _ in 0..epochs {
            model.train_epoch(&train, loss, &mut sgd, rng)?;
        }
        fold_accuracies.push(model.accuracy(&test)?);
    }
    Ok(CrossValidation { fold_accuracies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropyLoss;
    use crate::model::ModelBuilder;
    use rand::{Rng, SeedableRng};

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]).unwrap(), 2.0 / 3.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn confusion_matrix_counts_and_recall() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 1, 1], 2).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.recall(0), Some(1.0));
        assert!((cm.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.accuracy(), 0.75);
    }

    #[test]
    fn confusion_matrix_validates_labels() {
        assert!(ConfusionMatrix::from_predictions(&[5], &[0], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0], &[0, 1], 2).is_err());
    }

    fn separable(n: usize, seed: u64) -> Dataset {
        let mut rng = KmlRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let class = rng.gen_range(0..3usize);
            let center = class as f64 * 4.0;
            rows.push(vec![
                center + rng.gen_range(-0.8..0.8),
                -center + rng.gen_range(-0.8..0.8),
            ]);
            labels.push(class);
        }
        Dataset::from_rows(&rows, &labels).unwrap()
    }

    #[test]
    fn k_fold_reaches_high_accuracy_on_separable_data() {
        let data = separable(240, 21);
        let mut rng = KmlRng::seed_from_u64(22);
        let cv = k_fold_cross_validate(
            &data,
            5,
            60,
            &CrossEntropyLoss,
            |fold| {
                ModelBuilder::new(2)
                    .linear(8)
                    .sigmoid()
                    .linear(3)
                    .seed(100 + fold as u64)
                    .build::<f64>()
            },
            || Sgd::new(0.5, 0.9),
            &mut rng,
        )
        .unwrap();
        assert_eq!(cv.fold_accuracies.len(), 5);
        assert!(cv.mean_accuracy() > 0.9, "mean {}", cv.mean_accuracy());
        assert!(cv.std_accuracy() < 0.2);
    }

    #[test]
    fn k_fold_validates_k() {
        let data = separable(10, 1);
        let mut rng = KmlRng::seed_from_u64(1);
        let err = k_fold_cross_validate(
            &data,
            1,
            1,
            &CrossEntropyLoss,
            |_| ModelBuilder::new(2).linear(3).build::<f64>(),
            || Sgd::new(0.1, 0.0),
            &mut rng,
        );
        assert!(err.is_err());
        let err = k_fold_cross_validate(
            &data,
            11,
            1,
            &CrossEntropyLoss,
            |_| ModelBuilder::new(2).linear(3).build::<f64>(),
            || Sgd::new(0.1, 0.0),
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn cross_validation_stats() {
        let cv = CrossValidation {
            fold_accuracies: vec![0.9, 1.0, 0.8],
        };
        assert!((cv.mean_accuracy() - 0.9).abs() < 1e-12);
        assert!((cv.std_accuracy() - 0.1).abs() < 1e-12);
    }
}
