//! Micro-benchmarks of the fleet's shared inference server: host
//! wall-clock cost of serving one tick of pending tenant windows, three
//! ways.
//!
//! - **batched** — the production path: windows grouped per model,
//!   chunked to ≤256-row batches, one blocked-GEMM forward pass per batch.
//! - **serial** — the same shared models answering one single-row pass
//!   per window. This is the bit-identity twin (`kml-core`'s
//!   batch-parity proptests prove batched == serial bit for bit), so the
//!   gap is pure GEMM amortization; the elementwise sigmoid work is
//!   identical in both and caps the ratio.
//! - **per-tenant** — the deployment counterfactual the fleet replaces:
//!   no shared server, every tenant owning its own model replica (the
//!   paper's one-model-per-machine shape, and exactly what the
//!   per-subsystem tuners do today). Identical weights, identical
//!   answers, but each window walks a different replica's weights and
//!   scratch, so the working set scales with the tenant count instead of
//!   the model count.
//!
//! A fourth variant, **batched q8**, is the same production grouping with
//! every model answering through its bounded-error int8 engine
//! (`ServeOptions::q8_serving`) — rows run two at a time through the
//! pair-pipelined register chain.
//!
//! Gates (mirrored in `BENCH_baseline.json`): median ceilings on the
//! batched f32 and q8 ticks, a ≥2× decisions/sec floor over the
//! per-tenant baseline, and a ≥1.1× floor over shared-model serial
//! serving.

use criterion::{criterion_group, Criterion};
use kml_fleet::{FleetModels, InferRequest, InferenceServer, ModelKind, ServeOptions};
use std::hint::black_box;

/// Pending windows per serving tick —
/// one window per tenant of the quick-scale fleet (2,048 tenants).
const WINDOWS: u64 = 2_048;

/// A deterministic mixed-kind request stream, the shape a fleet round
/// produces: all three models interleaved, features in the tuners' range.
/// The stream is Fisher–Yates shuffled (fixed xorshift seed) because fleet
/// windows do not arrive sorted by tenant — shards interleave — and the
/// per-tenant baseline's replica-table walk must pay that access pattern,
/// not an artificially prefetch-friendly sequential one. The shared server
/// regroups by model kind either way, so batched serving is order-blind.
fn pending_windows(n: u64) -> Vec<InferRequest> {
    let mut requests: Vec<InferRequest> = (0..n)
        .map(|t| {
            let kind = ModelKind::ALL[(t % 3) as usize];
            let dim = match kind {
                ModelKind::Iosched => 4,
                _ => 5,
            };
            let mut features = [0.0; kml_fleet::server::MAX_FEATURES];
            let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for f in features.iter_mut().take(dim) {
                x ^= x >> 31;
                x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
                *f = (x % 4_096) as f64 / 16.0;
            }
            InferRequest {
                tenant_id: t,
                kind,
                features,
                dim,
            }
        })
        .collect();
    let mut state = 0x5EED_F1EEu64;
    for i in (1..requests.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        requests.swap(i, (state % (i as u64 + 1)) as usize);
    }
    requests
}

fn bench_serve_tick(c: &mut Criterion) {
    let requests = pending_windows(WINDOWS);
    let mut group = c.benchmark_group("fleet_serve");
    // The production path: windows grouped per model, chunked to 256-row
    // batches, one forward pass per batch.
    group.bench_function("batched_tick_2048", |b| {
        let mut server = InferenceServer::new(
            FleetModels::untrained(7).expect("deterministic model build"),
            ServeOptions::default(),
        );
        b.iter(|| black_box(server.serve(&requests).expect("serving succeeds").len()));
    });
    // The q8 serving tier: same batched grouping, but every model answers
    // through its bounded-error int8 engine (pair-pipelined rows). This is
    // the deployment mode `ServeOptions::q8_serving` enables; agreement
    // with the f32 path is gated in kml-fleet's tests, speed here.
    group.bench_function("batched_tick_q8_2048", |b| {
        let mut server = InferenceServer::new(
            FleetModels::untrained(7).expect("deterministic model build"),
            ServeOptions {
                q8_serving: true,
                ..ServeOptions::default()
            },
        );
        b.iter(|| black_box(server.serve(&requests).expect("serving succeeds").len()));
    });
    // The pool fan-out tick: the same batched grouping with the ≤256-row
    // batches split into row-chunks served across 4 persistent pool
    // workers on per-slot model replicas (`ServeOptions::workers`).
    // Responses are bit-identical to the on-thread batched tick (gated in
    // kml-fleet's tests); this measures the wall-clock win. Replicas are
    // warmed up front so the steady-state tick is allocation-free. The
    // ≥1.5× speedup gate over the committed single-worker median only
    // arms on hosts with ≥4 cores — on smaller containers the workers
    // time-share and the number is meaningless.
    group.bench_function("batched_tick_w4_2048", |b| {
        let mut server = InferenceServer::new(
            FleetModels::untrained(7).expect("deterministic model build"),
            ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
        );
        server.warm_replicas().expect("models are worker-cloneable");
        let mut responses = Vec::new();
        b.iter(|| {
            server
                .serve_into(&requests, &mut responses)
                .expect("serving succeeds");
            black_box(responses.len())
        });
    });
    // Same shared models, one single-row forward pass per window.
    group.bench_function("serial_tick_2048", |b| {
        let mut server = InferenceServer::new(
            FleetModels::untrained(7).expect("deterministic model build"),
            ServeOptions {
                serial_inference: true,
                ..ServeOptions::default()
            },
        );
        b.iter(|| black_box(server.serve(&requests).expect("serving succeeds").len()));
    });
    // No server at all: a replica table indexed by tenant, each window a
    // single-row pass through its own tenant's replica, in arrival order.
    group.bench_function("per_tenant_tick_2048", |b| {
        let mut replicas: Vec<kml_core::model::Model<f32>> = (0..WINDOWS)
            .map(|t| {
                let models = FleetModels::untrained(7).expect("deterministic model build");
                match ModelKind::ALL[(t % 3) as usize] {
                    ModelKind::Readahead => models.readahead,
                    ModelKind::Iosched => models.iosched,
                    ModelKind::Netfs => models.netfs,
                }
            })
            .collect();
        b.iter(|| {
            let mut sink = 0usize;
            for req in &requests {
                let model = &mut replicas[req.tenant_id as usize];
                sink =
                    sink.wrapping_add(model.predict(req.features()).expect("inference succeeds"));
            }
            black_box(sink)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(
        std::env::var("KML_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    targets = bench_serve_tick
}

/// Median ceiling for the batched f32 tick, mirrored in
/// `BENCH_baseline.json`. The pre-SIMD committed median was 530 µs; the
/// explicit-SIMD kernels must keep the tick ≥1.5× under that
/// (530,000 / 1.5), which still leaves ~20% headroom over the measured
/// ~290 µs median on a CI-class container.
const BATCHED_TICK_CEILING_NS: f64 = 353_333.0;

/// Median ceiling for the q8 serving tick (pair-pipelined int8 engines):
/// ~1.5× headroom over the measured ~173 µs median, and well over 2×
/// faster than the committed pre-SIMD f32 tick.
const BATCHED_TICK_Q8_CEILING_NS: f64 = 260_000.0;

/// The shared batched server must deliver at least this many times the
/// decisions/sec of the per-tenant-replica deployment it replaces.
const MIN_SPEEDUP_VS_PER_TENANT: f64 = 2.0;

/// Coalescing must also beat single-row serving through the *same* shared
/// models. The elementwise activation work is identical in both paths, so
/// this ratio is structurally modest — the floor guards the GEMM
/// amortization from regressing to nothing, not a 2× claim.
const MIN_SPEEDUP_VS_SERIAL: f64 = 1.1;

/// Median ceiling for the 4-worker fan-out tick: ≥1.5× under the
/// committed single-worker median (265,280 / 1.5). Only enforced on
/// hosts with ≥4 cores — CI runners qualify; on smaller containers the
/// pool workers time-share one core and the wall-clock is meaningless,
/// so the gate self-skips (visibly) instead of flapping.
const BATCHED_TICK_W4_CEILING_NS: f64 = 176_853.0;

/// Cores below which the multi-worker wall-clock gate self-skips.
const W4_GATE_MIN_CORES: usize = 4;

fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());

    let gates = [
        ("fleet_serve/batched_tick_2048", BATCHED_TICK_CEILING_NS),
        (
            "fleet_serve/batched_tick_q8_2048",
            BATCHED_TICK_Q8_CEILING_NS,
        ),
    ];
    let summaries = criterion::summaries();
    let mut failed = false;
    for s in &summaries {
        let ceiling = gates.iter().find(|(id, _)| s.id == *id).map(|&(_, c)| c);
        let pass = ceiling.is_none_or(|c| s.median_ns <= c);
        println!(
            "{}: {} median {:.0} ns{}",
            if pass { "PASS" } else { "FAIL" },
            s.id,
            s.median_ns,
            ceiling
                .map(|c| format!(", ceiling {c:.0} ns"))
                .unwrap_or_default()
        );
        failed |= !pass;
    }
    let median = |id: &str| {
        summaries
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns)
            .unwrap_or(f64::NAN)
    };
    let batched = median("fleet_serve/batched_tick_2048");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let w4 = median("fleet_serve/batched_tick_w4_2048");
    if w4.is_finite() {
        if cores >= W4_GATE_MIN_CORES {
            let pass = w4 <= BATCHED_TICK_W4_CEILING_NS;
            println!(
                "{}: fleet_serve/batched_tick_w4_2048 median {w4:.0} ns, ceiling {BATCHED_TICK_W4_CEILING_NS:.0} ns (>=1.5x under the committed 1-worker median)",
                if pass { "PASS" } else { "FAIL" },
            );
            failed |= !pass;
        } else {
            println!(
                "SKIP: fleet_serve/batched_tick_w4_2048 gate — host has {cores} < {W4_GATE_MIN_CORES} cores (measured {w4:.0} ns; the {BATCHED_TICK_W4_CEILING_NS:.0} ns ceiling arms on >={W4_GATE_MIN_CORES}-core runners)",
            );
        }
    }
    for (baseline_id, floor) in [
        (
            "fleet_serve/per_tenant_tick_2048",
            MIN_SPEEDUP_VS_PER_TENANT,
        ),
        ("fleet_serve/serial_tick_2048", MIN_SPEEDUP_VS_SERIAL),
    ] {
        let baseline = median(baseline_id);
        if !batched.is_finite() || !baseline.is_finite() {
            continue;
        }
        let speedup = baseline / batched;
        let pass = speedup >= floor;
        println!(
            "{}: batched vs {baseline_id} speedup {speedup:.2}x (floor {floor:.1}x)",
            if pass { "PASS" } else { "FAIL" },
        );
        failed |= !pass;
    }
    if failed && std::env::var("KML_BENCH_ENFORCE").as_deref() != Ok("0") {
        eprintln!("fleet serving regressed (KML_BENCH_ENFORCE=0 skips on noisy runners)");
        std::process::exit(1);
    }
}
