//! Micro-benchmarks of the network-storage path: host wall-clock cost of
//! one application read through the full RPC pipeline (fragment fates,
//! DRC, retransmission ladder) and of the rsize tuner's hook (ring drain,
//! windowed featurization, tree inference). Ceilings for the two gated
//! entries are mirrored in `BENCH_baseline.json`; wall-clock cost here is
//! what caps E9 experiment scale, exactly like the `kernels` bench for
//! the local stack.

use criterion::{criterion_group, Criterion};
use kernel_sim::SimConfig;
use kml_collect::event::{RpcEvent, RpcEventKind};
use kml_collect::RingBuffer;
use netfs::{NetProfile, NfsMount, RsizePolicy, RsizeTuner, RsizeTunerModel};
use std::hint::black_box;

/// Pages per benchmarked application read: 1 MiB, the E9 request size.
const READ_PAGES: u64 = 256;

fn bench_mount(profile: NetProfile) -> (NfsMount, kernel_sim::FileId) {
    let mut mount = NfsMount::new(
        profile,
        SimConfig {
            cache_pages: 4096,
            ..SimConfig::default()
        },
    );
    let file = mount.create_file(1 << 18);
    (mount, file)
}

fn bench_rpc_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc_roundtrip");
    // Clean link: the pipeline's floor — fragment draws, DRC lookups, and
    // server reads with no retransmission ladder engaged.
    group.bench_function("read_1m_datacenter", |b| {
        let (mut mount, file) = bench_mount(NetProfile::datacenter(7));
        let span = (1 << 18) - READ_PAGES;
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + READ_PAGES) % span;
            black_box(mount.read(file, pos, READ_PAGES).unwrap())
        });
    });
    // Faulty link: adds per-fragment fate draws, timeouts, retransmits,
    // and duplicate-reply handling. Not gated — loss makes it noisier.
    group.bench_function("read_1m_lossy_wifi", |b| {
        let (mut mount, file) = bench_mount(NetProfile::lossy_wifi(7));
        let span = (1 << 18) - READ_PAGES;
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + READ_PAGES) % span;
            black_box(mount.read(file, pos, READ_PAGES).ok())
        });
    });
    group.finish();
}

fn reply_event(xid: u64) -> RpcEvent {
    RpcEvent {
        kind: RpcEventKind::Reply,
        xid,
        pages: 64,
        latency_ns: 2_000_000 + (xid % 7) * 300_000,
        time_ns: xid * 1_000_000,
    }
}

fn bench_rsize_tuner(c: &mut Criterion) {
    let model_bytes = netfs::train_rsize_model(7).expect("training is deterministic");
    let mut group = c.benchmark_group("rsize_tuner");
    // The per-window cost: drain 64 RPC events, roll the feature window,
    // run the decision tree, actuate. A 1 ns window plus a cache-hot
    // 1-page read (which advances the virtual clock past the boundary)
    // forces the inference path on every hook call.
    group.bench_function("on_op_infer", |b| {
        let (mut mount, file) = bench_mount(NetProfile::datacenter(7));
        let (producer, consumer) = RingBuffer::with_capacity(1 << 10).split();
        let model = RsizeTunerModel::from_bytes(&model_bytes).unwrap();
        let mut tuner = RsizeTuner::new(model, RsizePolicy::experiment_default(), consumer, 1);
        let mut xid = 0u64;
        b.iter(|| {
            for _ in 0..64 {
                xid += 1;
                producer.push(reply_event(xid));
            }
            mount.read(file, 0, 1).unwrap();
            tuner.on_op(&mut mount).unwrap();
            black_box(mount.rsize_kb())
        });
    });
    // The steady-state cost between windows: drain + feature fold only.
    group.bench_function("on_op_drain64", |b| {
        let (mut mount, _) = bench_mount(NetProfile::datacenter(7));
        let (producer, consumer) = RingBuffer::with_capacity(1 << 10).split();
        let model = RsizeTunerModel::from_bytes(&model_bytes).unwrap();
        let mut tuner = RsizeTuner::new(
            model,
            RsizePolicy::experiment_default(),
            consumer,
            u64::MAX / 2,
        );
        let mut xid = 0u64;
        b.iter(|| {
            for _ in 0..64 {
                xid += 1;
                producer.push(reply_event(xid));
            }
            tuner.on_op(&mut mount).unwrap();
            black_box(mount.rsize_kb())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(
        std::env::var("KML_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    targets = bench_rpc_roundtrip, bench_rsize_tuner
}

/// Median-ns ceilings, mirrored in `BENCH_baseline.json`. Set at roughly
/// 8× the CI-class container's measured medians so the gate trips on an
/// algorithmic regression (an accidental O(frags²) fate loop, a per-event
/// allocation in the drain path) but not on runner noise.
const ROUNDTRIP_DATACENTER_CEILING_NS: f64 = 120_000.0;
const TUNER_INFER_CEILING_NS: f64 = 360_000.0;

fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());

    let gates = [
        (
            "rpc_roundtrip/read_1m_datacenter",
            ROUNDTRIP_DATACENTER_CEILING_NS,
        ),
        ("rsize_tuner/on_op_infer", TUNER_INFER_CEILING_NS),
    ];
    let summaries = criterion::summaries();
    let mut failed = false;
    for s in &summaries {
        let ceiling = gates.iter().find(|(id, _)| s.id == *id).map(|&(_, c)| c);
        let pass = ceiling.is_none_or(|c| s.median_ns <= c);
        println!(
            "{}: {} median {:.0} ns{}",
            if pass { "PASS" } else { "FAIL" },
            s.id,
            s.median_ns,
            ceiling
                .map(|c| format!(", ceiling {c:.0} ns"))
                .unwrap_or_default()
        );
        failed |= !pass;
    }
    if failed && std::env::var("KML_BENCH_ENFORCE").as_deref() != Ok("0") {
        eprintln!("netfs path slower than ceiling (KML_BENCH_ENFORCE=0 skips on noisy runners)");
        std::process::exit(1);
    }
}
