//! E5 — the §4 overhead micro-benchmarks, measured rigorously.
//!
//! Paper reference points: data collection + normalization ≈ 49 ns per
//! event; one inference ≈ 21 µs; one training iteration ≈ 51 µs; model
//! memory 3,916 B init + 676 B inference scratch. Absolute numbers depend
//! on the host CPU; the *ordering* (collection ≪ inference < training) and
//! orders of magnitude are what must reproduce.

use criterion::{criterion_group, BatchSize, Criterion};
use kml_collect::RingBuffer;
use kml_core::loss::{CrossEntropyLoss, TargetRef};
use kml_core::matrix::Matrix;
use kml_core::model::ModelBuilder;
use kml_core::optimizer::Sgd;
use kml_core::prelude::*;
use readahead::FeatureExtractor;
use std::hint::black_box;

fn bench_collection(c: &mut Criterion) {
    // The inline hook: one wait-free ring push per tracepoint.
    let (producer, mut consumer) = RingBuffer::<(u64, u64)>::with_capacity(1 << 16).split();
    let mut i = 0u64;
    c.bench_function("overhead_collection_push", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            producer.push(black_box((i, i * 7)));
            // Drain periodically so the buffer reflects steady state.
            if i.is_multiple_of(4096) {
                while consumer.pop().is_some() {}
            }
        })
    });

    // The async-thread side: folding one record into the features.
    let mut fx = FeatureExtractor::new();
    let mut off = 0u64;
    c.bench_function("overhead_normalization_fold", |b| {
        b.iter(|| {
            off = off.wrapping_mul(6364136223846793005).wrapping_add(1);
            fx.push(black_box(&kernel_sim::TraceRecord {
                kind: kernel_sim::TraceKind::AddToPageCache,
                inode: 1,
                page_offset: off % 1_000_000,
                time_ns: off,
            }));
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    // The deployed readahead network: 5 → 15 → σ → 10 → σ → 4 in f32.
    let features = [5_000.0, 3_000.0, 1_800.0, 500.0, 128.0];

    // `overhead_inference` is the per-decision cost of the serving tier:
    // the int8 engine (`Model::enable_q8`) the fleet's q8_serving mode
    // deploys, measured the way the fleet server actually consumes it —
    // batched `predict_batch_into` calls, here a 16-request batch. Every
    // iteration is one decision; every 16th issues the batch, so the
    // reported median is the amortized per-decision cost (batch rows run
    // two at a time through the engine's software-pipelined pair kernel,
    // which is what buys back the latency a single ~250-µop narrow row
    // leaves on the table). Bounded error (≥99.5% decision agreement,
    // gated in kml-fleet), ≤100 ns — the paper's "inference must be cheap
    // enough to sit on the I/O path" number. The exact f32 forward pass
    // and the single-row q8 latency are benched separately below.
    let mut q8_model = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f32>()
        .expect("paper topology builds");
    q8_model.enable_q8().expect("paper topology quantizes");
    let batch: Vec<f64> = (0..16)
        .flat_map(|r| {
            features
                .iter()
                .enumerate()
                .map(move |(i, &f)| f + (r * 7 + i) as f64)
        })
        .collect();
    let mut classes = Vec::new();
    let mut decision = 0u32;
    c.bench_function("overhead_inference", |b| {
        b.iter(|| {
            decision += 1;
            if decision.is_multiple_of(16) {
                q8_model
                    .predict_batch_into(black_box(&batch), 16, &mut classes)
                    .expect("inference succeeds");
            }
        })
    });

    // Single-row q8 latency (one isolated decision, nothing to pipeline
    // against — the floor an unbatched caller sees).
    c.bench_function("overhead_inference_single", |b| {
        b.iter(|| {
            q8_model
                .predict(black_box(&features))
                .expect("inference succeeds")
        })
    });

    // The bit-exact f32 path (dispatched SIMD kernels, or scalar under
    // KML_FORCE_SCALAR=1) — what the per-subsystem closed loops run.
    let mut model = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f32>()
        .expect("paper topology builds");
    c.bench_function("overhead_inference_exact", |b| {
        b.iter(|| {
            model
                .predict(black_box(&features))
                .expect("inference succeeds")
        })
    });
}

fn bench_training_iteration(c: &mut Criterion) {
    let mut rng = KmlRng::seed_from_u64(3);
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..5).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let input = Matrix::<f64>::from_rows(&rows).expect("batch builds");
    c.bench_function("overhead_training_iteration", |b| {
        b.iter_batched(
            || {
                (
                    ModelBuilder::readahead_paper_topology(5, 4)
                        .build::<f64>()
                        .expect("paper topology builds"),
                    Sgd::paper_defaults(),
                )
            },
            |(mut model, mut sgd)| {
                for _ in 0..8 {
                    model
                        .train_batch(
                            black_box(&input),
                            TargetRef::Classes(&labels),
                            &CrossEntropyLoss,
                            &mut sgd,
                        )
                        .expect("training step succeeds");
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_model_file(c: &mut Criterion) {
    let model = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f32>()
        .expect("paper topology builds");
    let bytes = kml_core::modelfile::encode(&model).expect("encode succeeds");
    c.bench_function("overhead_model_decode", |b| {
        b.iter(|| kml_core::modelfile::decode::<f32>(black_box(&bytes)).expect("decode succeeds"))
    });
}

criterion_group! {
    name = benches;
    // KML_BENCH_SAMPLES trims the per-benchmark sample count for CI smoke
    // runs (default 30 matches the committed BENCH_baseline.json medians).
    config = Criterion::default().sample_size(
        std::env::var("KML_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    targets = bench_collection, bench_inference, bench_training_iteration, bench_model_file
}

/// `criterion_main!` replacement that can also export the run for trend
/// tracking: when `KML_BENCH_SNAPSHOT=<path>` is set, the medians are
/// written there as JSON in the same `id → ns` shape `BENCH_baseline.json`
/// uses, so a run is diffable against the committed pre-optimization
/// baseline.
fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());
    if let Ok(path) = std::env::var("KML_BENCH_SNAPSHOT") {
        let mut json = String::from("{\n");
        let all = criterion::summaries();
        for (i, s) in all.iter().enumerate() {
            let sep = if i + 1 == all.len() { "" } else { "," };
            json.push_str(&format!("  \"{}\": {:.1}{}\n", s.id, s.median_ns, sep));
        }
        json.push_str("}\n");
        std::fs::write(&path, json).expect("writing bench snapshot");
        println!("bench snapshot written to {path}");
    }

    // Regression gates against the committed BENCH_baseline.json numbers:
    // the blocked-kernel work must hold >= 2x on the training iteration
    // (215,570 ns committed baseline → 107,785 ns gate), the serving-tier
    // int8 decision (batch-amortized, see `bench_inference`) must stay at
    // or under 100 ns with the single-row latency under 250 ns, and the
    // exact f32 path must keep the original inference bar (987.1 ns
    // pre-PR2 baseline → 658 ns gate — wide enough to pass under
    // KML_FORCE_SCALAR=1 too; the two q8 gates assume the AVX2 vector
    // path and are only meaningful on the default dispatch). On by
    // default so the bench-smoke CI job catches regressions;
    // KML_BENCH_ENFORCE=0 opts out for exploratory runs on noisy machines.
    if std::env::var("KML_BENCH_ENFORCE").as_deref() != Ok("0") {
        let summaries = criterion::summaries();
        let median = |id: &str| summaries.iter().find(|s| s.id == id).map(|s| s.median_ns);
        let mut failed = false;
        for (id, gate_ns) in [
            ("overhead_training_iteration", 107_785.0),
            ("overhead_inference", 100.0),
            ("overhead_inference_single", 250.0),
            ("overhead_inference_exact", 658.0),
        ] {
            let Some(m) = median(id) else {
                continue; // filtered out on this invocation
            };
            let verdict = if m <= gate_ns { "PASS" } else { "FAIL" };
            println!("{verdict}: {id} median {m:.1} ns (gate {gate_ns:.0} ns)");
            failed |= m > gate_ns;
        }
        if failed {
            eprintln!("overhead gate exceeded (KML_BENCH_ENFORCE=0 skips on noisy runners)");
            std::process::exit(1);
        }
    }
}
