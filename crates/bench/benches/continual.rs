//! Micro-benchmarks of the continual-learning loop (DESIGN.md §13):
//! what the closed loop pays per window while nothing is wrong, and what
//! one full retrain-and-package cycle costs when something is.
//!
//! - **window_observe** — the per-window observation hot path exactly as
//!   `ContinualController::observe_window` runs it when no drift fires:
//!   one deterministic-reservoir `offer` plus one drift-detector
//!   `observe`. This rides inside every tuner window, so it must be
//!   invisible next to the window's own inference cost.
//! - **retrain_and_package** — `train_candidate` over a full 64-sample
//!   reservoir at the E14 quick-scale step budget: normalizer fit,
//!   seeded rebuild, full-batch SGD, and `.kmlm` packaging — the whole
//!   unit of work the background retrainer performs off the hot path.
//!
//! Gates (mirrored in `BENCH_baseline.json`): the observation path must
//! stay under 1 µs — two orders below the loop's own per-window
//! inference — and a retrain cycle must finish under 250 ms so a
//! candidate is staged within a handful of wall-clock windows of the
//! trigger rather than arriving after the shift has moved on.

use criterion::{criterion_group, Criterion};
use kml_continual::{
    train_candidate, DriftConfig, DriftDetector, Reservoir, ReservoirSample, RetrainSpec,
    RESERVOIR_DIM,
};
use kml_lifecycle::ArtifactKind;
use std::hint::black_box;

/// A two-phase reservoir at capacity: half random-phase, half shifted,
/// in the same log-compressed pattern-feature space E14 serves.
fn full_reservoir() -> Vec<ReservoirSample> {
    (0..64u64)
        .map(|j| {
            let jit = ((j * 7) % 11) as f64 * 0.05;
            let shifted = j % 2 == 1;
            ReservoirSample {
                id: j,
                priority: 0,
                features: if shifted {
                    [0.0, 0.0, 4.1 + jit, 1.0, 0.0]
                } else {
                    [0.0, 0.0, 14.2 + jit, 12.0 + jit, 0.0]
                },
                label: usize::from(shifted),
            }
        })
        .collect()
}

fn bench_continual(c: &mut Criterion) {
    let mut group = c.benchmark_group("continual");

    // The quiescent per-window cost: offer + observe, no trigger.
    group.bench_function("window_observe", |b| {
        let mut reservoir = Reservoir::new(64, 0xBE7C_5EED);
        let mut detector = DriftDetector::new(
            RESERVOIR_DIM,
            DriftConfig {
                reference_windows: 6,
                block_windows: 6,
                threshold: 8.0,
                trigger_blocks: 2,
                abs_floor: 1.0,
            },
        );
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let jit = (id % 11) as f64 * 0.05;
            let features = [0.0, 0.0, 14.2 + jit, 12.0 + jit, 0.0];
            let kept = reservoir.offer(id, black_box(features), 0);
            let drifted = detector.observe(black_box(&features));
            black_box((kept, drifted))
        });
    });

    // One full background-retrainer work unit at E14 quick scale.
    group.bench_function("retrain_and_package", |b| {
        let samples = full_reservoir();
        let spec = RetrainSpec {
            kind: ArtifactKind::Readahead,
            classes: 2,
            epochs: 1_500,
            seed: 0xBE7C_7EA1,
        };
        let mut token = 0u64;
        b.iter(|| {
            token += 1;
            black_box(
                train_candidate(black_box(&spec), token, black_box(&samples))
                    .expect("retrain cycle")
                    .len(),
            )
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(
        std::env::var("KML_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    targets = bench_continual
}

/// The per-window observation must be noise next to the window's own
/// inference (~60 µs on the netfs hook): 1 µs ceiling.
const WINDOW_OBSERVE_CEILING_NS: f64 = 1_000.0;

/// A retrain-and-package cycle must come back within a handful of
/// wall-clock windows of the trigger: 250 ms ceiling.
const RETRAIN_CYCLE_CEILING_NS: f64 = 250_000_000.0;

fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());

    let gates = [
        ("continual/window_observe", WINDOW_OBSERVE_CEILING_NS),
        ("continual/retrain_and_package", RETRAIN_CYCLE_CEILING_NS),
    ];
    let summaries = criterion::summaries();
    let mut failed = false;
    for s in &summaries {
        let ceiling = gates.iter().find(|(id, _)| s.id == *id).map(|&(_, c)| c);
        let pass = ceiling.is_none_or(|c| s.median_ns <= c);
        println!(
            "{}: {} median {:.0} ns{}",
            if pass { "PASS" } else { "FAIL" },
            s.id,
            s.median_ns,
            ceiling
                .map(|c| format!(", ceiling {c:.0} ns"))
                .unwrap_or_default()
        );
        failed |= !pass;
    }
    if failed && std::env::var("KML_BENCH_ENFORCE").as_deref() != Ok("0") {
        eprintln!("continual loop cost regressed (KML_BENCH_ENFORCE=0 skips on noisy runners)");
        std::process::exit(1);
    }
}
