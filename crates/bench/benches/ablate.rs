//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! matrix dtype (f32 / f64 / Q16.16 fixed point) and ring-buffer capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kml_collect::RingBuffer;
use kml_core::fixed::Fix32;
use kml_core::matrix::Matrix;
use kml_core::model::ModelBuilder;
use kml_core::prelude::*;
use kml_core::scalar::Scalar;
use std::hint::black_box;

/// §3.1: "KML supports integer, floating-point, and double precision
/// matrices" — the speed side of the accuracy-vs-cost trade-off.
fn bench_dtype(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_dtype_inference");
    let features = [5_000.0, 3_000.0, 1_800.0, 500.0, 128.0];

    fn model<S: Scalar>() -> kml_core::model::Model<S> {
        ModelBuilder::readahead_paper_topology(5, 4)
            .build::<S>()
            .expect("paper topology builds")
    }

    let mut m32 = model::<f32>();
    group.bench_function("f32", |b| {
        b.iter(|| m32.predict(black_box(&features)).expect("predict"))
    });
    let mut m64 = model::<f64>();
    group.bench_function("f64", |b| {
        b.iter(|| m64.predict(black_box(&features)).expect("predict"))
    });
    let mut mq = model::<Fix32>();
    group.bench_function("q16_fixed", |b| {
        b.iter(|| mq.predict(black_box(&features)).expect("predict"))
    });
    group.finish();

    let mut group = c.benchmark_group("ablate_dtype_matmul_32x32");
    fn mm<S: Scalar>() -> (Matrix<S>, Matrix<S>) {
        let mut rng = KmlRng::seed_from_u64(5);
        (
            Matrix::<S>::xavier_uniform(32, 32, &mut rng),
            Matrix::<S>::xavier_uniform(32, 32, &mut rng),
        )
    }
    let (a, b32) = mm::<f32>();
    group.bench_function("f32", |b| {
        b.iter(|| a.matmul(black_box(&b32)).expect("matmul"))
    });
    let (a, b64) = mm::<f64>();
    group.bench_function("f64", |b| {
        b.iter(|| a.matmul(black_box(&b64)).expect("matmul"))
    });
    let (a, bq) = mm::<Fix32>();
    group.bench_function("q16_fixed", |b| {
        b.iter(|| a.matmul(black_box(&bq)).expect("matmul"))
    });
    group.finish();
}

/// §3.1: the circular buffer caps memory; larger buffers survive longer
/// producer bursts before losing samples. This measures raw push/pop cost
/// across capacities (loss behaviour is covered by unit tests).
fn bench_ringbuf(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_ringbuf_capacity");
    for capacity in [64usize, 1024, 16_384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                let (producer, mut consumer) = RingBuffer::<u64>::with_capacity(cap).split();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    producer.push(black_box(i));
                    if i.is_multiple_of(8) {
                        while consumer.pop().is_some() {}
                    }
                });
            },
        );
    }
    group.finish();
}

/// From-scratch math vs std: the cost of kernel-safe approximations.
fn bench_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_math_approximations");
    let xs: Vec<f64> = (0..256).map(|i| (i as f64 - 128.0) / 16.0).collect();
    group.bench_function("kml_exp", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| kml_core::math::exp(black_box(x)))
                .sum::<f64>()
        })
    });
    group.bench_function("std_exp", |b| {
        b.iter(|| xs.iter().map(|&x| black_box(x).exp()).sum::<f64>())
    });
    group.bench_function("kml_sigmoid", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| kml_core::math::sigmoid(black_box(x)))
                .sum::<f64>()
        })
    });
    let qs: Vec<Fix32> = xs.iter().map(|&x| Fix32::from_f64(x)).collect();
    group.bench_function("fixed_sigmoid_piecewise", |b| {
        b.iter(|| {
            qs.iter()
                .map(|&x| Scalar::sigmoid(black_box(x)).to_f64())
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dtype, bench_ringbuf, bench_math
}
criterion_main!(benches);
