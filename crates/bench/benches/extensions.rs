//! Benchmarks for the future-work extensions: recurrent-model inference
//! and training cost (how much heavier than the deployed feed-forward
//! model — the §6 "parallel training threads" motivation), int8 quantized
//! inference, and the I/O-scheduler dispatch path.

use criterion::{criterion_group, criterion_main, Criterion};
use kml_core::matrix::Matrix;
use kml_core::model::ModelBuilder;
use kml_core::prelude::*;
use kml_core::quant::QuantizedModel;
use kml_core::recurrent::{Lstm, Rnn};
use std::hint::black_box;

fn bench_recurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("recurrent_inference");
    let mut rng = KmlRng::seed_from_u64(3);
    let seq = {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        Matrix::<f64>::from_rows(&rows).expect("builds")
    };
    let mut rnn = Rnn::<f64>::new(3, 12, 4, &mut rng);
    group.bench_function("rnn_16steps", |b| {
        b.iter(|| rnn.predict(black_box(&seq)).expect("predict"))
    });
    let mut lstm = Lstm::<f64>::new(3, 8, 4, &mut rng);
    group.bench_function("lstm_16steps", |b| {
        b.iter(|| lstm.predict(black_box(&seq)).expect("predict"))
    });
    // The feed-forward comparison point (per-window summary features).
    let mut ff = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f64>()
        .expect("builds");
    let features = [100.0, 3000.0, 1800.0, 50.0, 128.0];
    group.bench_function("feedforward_window", |b| {
        b.iter(|| ff.predict(black_box(&features)).expect("predict"))
    });
    group.finish();

    let mut group = c.benchmark_group("recurrent_training_step");
    use kml_core::loss::{CrossEntropyLoss, Loss, TargetRef};
    use kml_core::optimizer::Sgd;
    let mut sgd = Sgd::new(0.01, 0.9);
    group.bench_function("rnn_bptt_16steps", |b| {
        b.iter(|| {
            let logits = rnn.forward(black_box(&seq)).expect("forward");
            let g = CrossEntropyLoss
                .grad(&logits, TargetRef::Classes(&[1]))
                .expect("grad");
            rnn.backward(&g).expect("backward");
            sgd.step(&mut rnn.param_grads()).expect("step");
        })
    });
    let mut sgd2 = Sgd::new(0.01, 0.9);
    group.bench_function("lstm_bptt_16steps", |b| {
        b.iter(|| {
            let logits = lstm.forward(black_box(&seq)).expect("forward");
            let g = CrossEntropyLoss
                .grad(&logits, TargetRef::Classes(&[1]))
                .expect("grad");
            lstm.backward(&g).expect("backward");
            sgd2.step(&mut lstm.param_grads()).expect("step");
        })
    });
    group.finish();
}

fn bench_quantized(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_inference");
    let mut model = ModelBuilder::readahead_paper_topology(5, 4)
        .build::<f32>()
        .expect("builds");
    let qmodel = QuantizedModel::from_model(&model).expect("quantizes");
    let features = [100.0, 3000.0, 1800.0, 50.0, 128.0];
    group.bench_function("f32", |b| {
        b.iter(|| model.predict(black_box(&features)).expect("predict"))
    });
    group.bench_function("int8", |b| {
        b.iter(|| qmodel.predict(black_box(&features)).expect("predict"))
    });
    group.finish();
}

fn bench_iosched(c: &mut Criterion) {
    use iosched::{IoRequest, IoScheduler, SchedulerConfig};
    use kernel_sim::DeviceProfile;

    let mut group = c.benchmark_group("iosched_dispatch");
    group.bench_function("submit_drain_burst32", |b| {
        b.iter(|| {
            let mut sched = IoScheduler::new(
                DeviceProfile::nvme(),
                SchedulerConfig {
                    batch_wait_ns: 50_000,
                    max_batch: 64,
                },
            );
            for i in 0..32u64 {
                sched.submit(IoRequest {
                    inode: 1,
                    page: i * 4,
                    npages: 4,
                    write: false,
                    arrival_ns: i * 1000,
                });
            }
            black_box(sched.drain(100_000).len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_recurrent, bench_quantized, bench_iosched
}
criterion_main!(benches);
