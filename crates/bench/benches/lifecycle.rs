//! Micro-benchmarks of the model-lifecycle swap path: how long a live
//! serving path is exposed to a model change.
//!
//! - **swap_publish_fleet** — [`InferenceServer::swap_model`]: the atomic
//!   generation publish into the fleet's per-kind swap cell, with the
//!   replacement model already decoded (the decode happens off the
//!   serving path in `iter_batched` setup). This is the only instant a
//!   serving tick can observe a swap at all.
//! - **install_loop** — `KmlTuner::install_artifact`: the closed-loop
//!   swap point, including the full `.kmlm` checksum verification and
//!   model decode — the whole pause a loop window can see.
//! - **artifact_roundtrip** — decode + re-encode of the readahead
//!   `.kmlm` artifact, the unit of work a model push costs end to end.
//!
//! Gate (mirrored in `BENCH_baseline.json`): neither swap flavour may
//! stall serving longer than one batched fleet tick — the same
//! 353,333 ns ceiling the fleet bench enforces on the tick itself — so
//! a hot-swap costs at most one tick of latency to the fleet, never a
//! visible outage.

use criterion::{criterion_group, BatchSize, Criterion};
use kml_collect::RingBuffer;
use kml_fleet::{FleetModels, InferenceServer, ModelKind, ServeOptions};
use kml_lifecycle::{load_model_for, save_model, ArtifactKind, LifecycleTarget};
use readahead::tuner::{KmlTuner, RaPolicy, TunerModel};
use std::hint::black_box;

/// The packaged readahead artifact every benchmark swaps: the same
/// deterministic build the fleet serves, `.kmlm`-encoded once up front.
fn readahead_artifact() -> Vec<u8> {
    let mut model = FleetModels::untrained(7)
        .expect("deterministic model build")
        .readahead;
    save_model(ArtifactKind::Readahead, &mut model).expect("artifact packaging")
}

fn bench_lifecycle(c: &mut Criterion) {
    let artifact = readahead_artifact();
    let mut group = c.benchmark_group("lifecycle");

    // The fleet-side publish: decode in setup, measure only the swap.
    group.bench_function("swap_publish_fleet", |b| {
        let mut server = InferenceServer::new(
            FleetModels::untrained(7).expect("deterministic model build"),
            ServeOptions::default(),
        );
        b.iter_batched(
            || {
                load_model_for::<f32>(&artifact, ArtifactKind::Readahead)
                    .expect("valid artifact")
                    .model
            },
            |model| {
                black_box(
                    server
                        .swap_model(ModelKind::Readahead, model)
                        .expect("swap succeeds"),
                )
            },
            BatchSize::SmallInput,
        );
    });

    // The loop-side install: checksum + decode + swap, all on the clock.
    group.bench_function("install_loop", |b| {
        let (_producer, consumer) = RingBuffer::with_capacity(64).split();
        let initial = load_model_for::<f32>(&artifact, ArtifactKind::Readahead)
            .expect("valid artifact")
            .model;
        let mut tuner = KmlTuner::new(
            TunerModel::NeuralNet(Box::new(initial)),
            RaPolicy::new(vec![16, 64, 256, 1024]),
            consumer,
            1_000_000,
            128,
        );
        let mut generation = 1u64;
        b.iter(|| {
            generation += 1;
            tuner
                .install_artifact(black_box(&artifact), generation)
                .expect("valid artifact");
        });
    });

    group.bench_function("artifact_roundtrip", |b| {
        b.iter(|| {
            let mut m = load_model_for::<f32>(black_box(&artifact), ArtifactKind::Readahead)
                .expect("valid artifact")
                .model;
            black_box(
                save_model(ArtifactKind::Readahead, &mut m)
                    .expect("artifact packaging")
                    .len(),
            )
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(
        std::env::var("KML_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    targets = bench_lifecycle
}

/// A model swap may stall serving for at most one batched fleet tick —
/// the fleet bench's own `BATCHED_TICK_CEILING_NS`, mirrored in
/// `BENCH_baseline.json`. Applied to both the fleet publish and the
/// loop-side install (which pays checksum + decode inside the pause).
const SWAP_PAUSE_CEILING_NS: f64 = 353_333.0;

fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());

    let gates = [
        ("lifecycle/swap_publish_fleet", SWAP_PAUSE_CEILING_NS),
        ("lifecycle/install_loop", SWAP_PAUSE_CEILING_NS),
    ];
    let summaries = criterion::summaries();
    let mut failed = false;
    for s in &summaries {
        let ceiling = gates.iter().find(|(id, _)| s.id == *id).map(|&(_, c)| c);
        let pass = ceiling.is_none_or(|c| s.median_ns <= c);
        println!(
            "{}: {} median {:.0} ns{}",
            if pass { "PASS" } else { "FAIL" },
            s.id,
            s.median_ns,
            ceiling
                .map(|c| format!(", ceiling {c:.0} ns"))
                .unwrap_or_default()
        );
        failed |= !pass;
    }
    if failed && std::env::var("KML_BENCH_ENFORCE").as_deref() != Ok("0") {
        eprintln!("lifecycle swap pause regressed (KML_BENCH_ENFORCE=0 skips on noisy runners)");
        std::process::exit(1);
    }
}
