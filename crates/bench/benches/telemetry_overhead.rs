//! Telemetry hot-path overhead gate.
//!
//! The kml-telemetry subsystem instruments the I/O path itself, so its own
//! cost must be far below what it measures: the acceptance bar is **under
//! 100 ns median** for a counter increment and a histogram record (the
//! paper's whole collection hook budget is ~49 ns/event). This bench both
//! reports the numbers and *enforces* the bar — `cargo bench -p bench
//! --bench telemetry_overhead` exits nonzero on regression — and shows the
//! disabled paths cost (near) nothing.

use criterion::{criterion_group, Criterion};
use kml_telemetry::{Counter, Gauge, Histogram, Registry, Span};
use std::hint::black_box;

fn bench_counter(c: &mut Criterion) {
    let reg = Registry::new();
    let live = reg.counter("bench.counter_total");
    c.bench_function("telemetry_counter_inc_live", |b| {
        b.iter(|| black_box(&live).inc())
    });
    let noop = Counter::noop();
    c.bench_function("telemetry_counter_inc_noop", |b| {
        b.iter(|| black_box(&noop).inc())
    });
}

fn bench_gauge(c: &mut Criterion) {
    let reg = Registry::new();
    let live = reg.gauge("bench.gauge");
    let mut v = 0u64;
    c.bench_function("telemetry_gauge_set_live", |b| {
        b.iter(|| {
            v = v.wrapping_add(3);
            black_box(&live).set(v)
        })
    });
    let noop = Gauge::noop();
    c.bench_function("telemetry_gauge_set_noop", |b| {
        b.iter(|| black_box(&noop).set(7))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let reg = Registry::new();
    let live = reg.histogram("bench.latency_ns");
    let mut v = 1u64;
    c.bench_function("telemetry_histogram_record_live", |b| {
        b.iter(|| {
            // Vary the value so branch prediction can't collapse bucket_of.
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(&live).record(v >> 32)
        })
    });
    let noop = Histogram::noop();
    c.bench_function("telemetry_histogram_record_noop", |b| {
        b.iter(|| black_box(&noop).record(42))
    });
}

fn bench_span(c: &mut Criterion) {
    let reg = Registry::new();
    let live = reg.histogram("bench.span_ns");
    c.bench_function("telemetry_span_live", |b| {
        // A span is two clock reads + one record; it brackets real work in
        // the loop, so it has a looser (but still sub-µs) budget.
        b.iter(|| Span::start(black_box(&live)).finish())
    });
    let noop = Histogram::noop();
    c.bench_function("telemetry_span_noop", |b| {
        b.iter(|| Span::start(black_box(&noop)).finish())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_counter, bench_gauge, bench_histogram, bench_span
}

fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());

    // Enforce the acceptance bar on the hot-path primitives.
    let summaries = criterion::summaries();
    let median = |id: &str| {
        summaries
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns)
            .unwrap_or(f64::NAN)
    };
    let mut failed = false;
    for (id, budget_ns) in [
        ("telemetry_counter_inc_live", 100.0),
        ("telemetry_histogram_record_live", 100.0),
        ("telemetry_gauge_set_live", 100.0),
    ] {
        let m = median(id);
        if m.is_nan() {
            continue; // filtered out on this invocation
        }
        let verdict = if m < budget_ns { "PASS" } else { "FAIL" };
        println!("{verdict}: {id} median {m:.1} ns (budget {budget_ns:.0} ns)");
        failed |= m >= budget_ns;
    }
    // The disabled handles must be effectively free (ZST or one branch);
    // allow generous slack for timer noise but catch accidental work.
    for id in [
        "telemetry_counter_inc_noop",
        "telemetry_histogram_record_noop",
    ] {
        let m = median(id);
        if m.is_nan() {
            continue;
        }
        let verdict = if m < 20.0 { "PASS" } else { "FAIL" };
        println!("{verdict}: {id} median {m:.1} ns (budget 20 ns)");
        failed |= m >= 20.0;
    }
    if failed {
        eprintln!("telemetry hot path exceeded its overhead budget");
        std::process::exit(1);
    }
}
