//! Micro-benchmarks of the storage-stack kernels the experiments lean on:
//! page-cache operations, the readahead state machine, and simulated
//! device request streams. These bound how much simulator overhead could
//! distort the experiment clock (it cannot — the clock is simulated — but
//! wall-clock cost caps experiment scale).

use criterion::{criterion_group, criterion_main, Criterion};
use kernel_sim::cache::PageCache;
use kernel_sim::readahead::RaState;
use kernel_sim::{DeviceProfile, Sim, SimConfig};
use std::hint::black_box;

fn bench_page_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_cache");
    group.bench_function("hit_touch", |b| {
        let mut cache = PageCache::new(4096);
        for p in 0..4096 {
            cache.insert((1, p), false);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 4096;
            black_box(cache.touch((1, p)))
        });
    });
    group.bench_function("insert_evict_cycle", |b| {
        let mut cache = PageCache::new(1024);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(cache.insert((1, p), false))
        });
    });
    group.finish();
}

fn bench_readahead_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("readahead_state_machine");
    group.bench_function("sequential_stream", |b| {
        let mut ra = RaState::new(256);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(ra.on_access(p, 1, !p.is_multiple_of(4), 1 << 30))
        });
    });
    group.bench_function("random_blocks", |b| {
        let mut ra = RaState::new(256);
        let mut x = 7u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(ra.on_access(x % (1 << 30), 4, false, 1 << 30))
        });
    });
    group.finish();
}

fn bench_sim_read_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_read_path");
    group.sample_size(20);
    group.bench_function("sequential_4k_pages", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::nvme(),
                cache_pages: 2048,
                ..SimConfig::default()
            });
            let f = sim.create_file(1 << 16);
            for p in 0..4096u64 {
                sim.read(f, p, 1).unwrap();
            }
            black_box(sim.now_ns())
        });
    });
    group.bench_function("random_block_reads_x512", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::sata_ssd(),
                cache_pages: 2048,
                ..SimConfig::default()
            });
            let f = sim.create_file(1 << 20);
            let mut x = 3u64;
            for _ in 0..512 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.read(f, (x >> 12) % ((1 << 20) - 4), 4).unwrap();
            }
            black_box(sim.now_ns())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_page_cache, bench_readahead_machine, bench_sim_read_paths
}
criterion_main!(benches);
