//! Micro-benchmarks of the storage-stack kernels the experiments lean on:
//! page-cache operations, the readahead state machine, simulated device
//! request streams, and the blocked GEMM micro-kernels (reported as
//! GFLOP/s, with a committed floor mirrored in `BENCH_baseline.json`).
//! These bound how much simulator overhead could distort the experiment
//! clock (it cannot — the clock is simulated — but wall-clock cost caps
//! experiment scale).

use criterion::{criterion_group, Criterion};
use kernel_sim::cache::PageCache;
use kernel_sim::readahead::RaState;
use kernel_sim::{DeviceProfile, Sim, SimConfig};
use kml_core::matrix::Matrix;
use kml_core::scratch::ScratchArena;
use std::hint::black_box;

/// Square GEMM size for the GFLOP/s entries: big enough that the panel
/// packing and KC-blocking paths all engage, small enough for smoke runs.
const GEMM_DIM: usize = 128;

fn bench_page_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_cache");
    group.bench_function("hit_touch", |b| {
        let mut cache = PageCache::new(4096);
        for p in 0..4096 {
            cache.insert((1, p), false);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 4096;
            black_box(cache.touch((1, p)))
        });
    });
    group.bench_function("insert_evict_cycle", |b| {
        let mut cache = PageCache::new(1024);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(cache.insert((1, p), false))
        });
    });
    group.finish();
}

fn bench_readahead_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("readahead_state_machine");
    group.bench_function("sequential_stream", |b| {
        let mut ra = RaState::new(256);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(ra.on_access(p, 1, !p.is_multiple_of(4), 1 << 30))
        });
    });
    group.bench_function("random_blocks", |b| {
        let mut ra = RaState::new(256);
        let mut x = 7u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(ra.on_access(x % (1 << 30), 4, false, 1 << 30))
        });
    });
    group.finish();
}

fn bench_sim_read_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_read_path");
    group.sample_size(20);
    group.bench_function("sequential_4k_pages", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::nvme(),
                cache_pages: 2048,
                ..SimConfig::default()
            });
            let f = sim.create_file(1 << 16);
            for p in 0..4096u64 {
                sim.read(f, p, 1).unwrap();
            }
            black_box(sim.now_ns())
        });
    });
    group.bench_function("random_block_reads_x512", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::sata_ssd(),
                cache_pages: 2048,
                ..SimConfig::default()
            });
            let f = sim.create_file(1 << 20);
            let mut x = 3u64;
            for _ in 0..512 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.read(f, (x >> 12) % ((1 << 20) - 4), 4).unwrap();
            }
            black_box(sim.now_ns())
        });
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    fn square<S: kml_core::scalar::Scalar>(seed: u64) -> Matrix<S> {
        let vals: Vec<f64> = (0..GEMM_DIM * GEMM_DIM)
            .map(|i| ((i as u64).wrapping_mul(seed) % 97) as f64 * 0.02 - 0.97)
            .collect();
        Matrix::from_f64_vec(GEMM_DIM, GEMM_DIM, &vals).unwrap()
    }
    let mut group = c.benchmark_group("gemm");
    group.bench_function("gemm_f32_128", |b| {
        let (x, y) = (square::<f32>(37), square::<f32>(53));
        let mut out = Matrix::zeros(GEMM_DIM, GEMM_DIM);
        let mut pack = ScratchArena::new();
        b.iter(|| {
            x.matmul_into_packed(black_box(&y), &mut out, &mut pack)
                .unwrap();
            black_box(out.get(0, 0))
        });
    });
    group.bench_function("gemm_f64_128", |b| {
        let (x, y) = (square::<f64>(37), square::<f64>(53));
        let mut out = Matrix::zeros(GEMM_DIM, GEMM_DIM);
        let mut pack = ScratchArena::new();
        b.iter(|| {
            x.matmul_into_packed(black_box(&y), &mut out, &mut pack)
                .unwrap();
            black_box(out.get(0, 0))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(
        std::env::var("KML_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    targets = bench_page_cache, bench_readahead_machine, bench_sim_read_paths, bench_gemm
}

/// GFLOP/s floor for the f32 GEMM entry, mirrored in `BENCH_baseline.json`.
/// The explicit-SIMD kernels measure ~65 GFLOP/s on a CI-class AVX2
/// container (the blocked scalar path alone does ~12); the floor sits a
/// little over a third of that so it trips on a regression to the scalar
/// path — or any lost vectorization — but not on runner noise.
const GEMM_F32_FLOOR_GFLOPS: f64 = 24.0;

fn main() {
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            filter = Some(arg);
        }
    }
    benches(filter.as_deref());

    // Report the GEMM entries in GFLOP/s (2·m·n·k floating-point ops per
    // product) and enforce the committed floor on the f32 kernel.
    let flops = 2.0 * (GEMM_DIM as f64).powi(3);
    let summaries = criterion::summaries();
    let mut failed = false;
    // Group benches report as `gemm/gemm_*`.
    for s in summaries.iter().filter(|s| s.id.contains("gemm_")) {
        let gflops = flops / s.median_ns;
        let gated = s.id.ends_with("gemm_f32_128");
        let pass = !gated || gflops >= GEMM_F32_FLOOR_GFLOPS;
        println!(
            "{}: {} {:.2} GFLOP/s (median {:.0} ns{})",
            if pass { "PASS" } else { "FAIL" },
            s.id,
            gflops,
            s.median_ns,
            if gated {
                format!(", floor {GEMM_F32_FLOOR_GFLOPS:.1} GFLOP/s")
            } else {
                String::new()
            }
        );
        failed |= !pass;
    }
    if failed && std::env::var("KML_BENCH_ENFORCE").as_deref() != Ok("0") {
        eprintln!("GEMM throughput under floor (KML_BENCH_ENFORCE=0 skips on noisy runners)");
        std::process::exit(1);
    }
}
