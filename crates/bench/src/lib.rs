//! Shared plumbing for the `repro` harness and the criterion benches:
//! experiment-scale presets, text-table rendering, and CSV output.
//!
//! Every table and figure of the paper maps to one `repro` subcommand (see
//! `src/bin/repro.rs` and EXPERIMENTS.md); the criterion benches in
//! `benches/` cover the §4 overhead micro-numbers and the DESIGN.md
//! ablations.

use std::fmt::Write as _;

/// Renders a text table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// let t = bench::render_table(
///     &["workload", "speedup"],
///     &[vec!["readrandom".into(), "1.65x".into()]],
/// );
/// assert!(t.contains("readrandom"));
/// assert!(t.contains("speedup"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Serializes rows as CSV (no quoting — experiment output is numeric).
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes experiment output under `results/` (created on demand) and
/// returns the path written.
///
/// # Errors
///
/// Returns an I/O error if the directory or file cannot be written.
pub fn write_results(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Geometric mean of a slice of ratios (used for summary rows).
///
/// Returns 0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["xxxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in all rows.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 1], "2");
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = to_csv(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
