//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--json] <experiment>
//!
//!   study      E1  readahead-vs-throughput curves + best-value table (§4)
//!   accuracy   E2  k-fold cross-validation of the readahead NN (§4)
//!   table2     E3  Table 2: per-workload KML speedups on NVMe and SSD
//!   figure2    E4  Figure 2: mixgraph timeline (ops/sec + readahead size)
//!   overheads  E5  §4 micro-overheads (collection / inference / training /
//!                  memory footprint)
//!   dtree      E6  decision-tree tuner comparison (§4)
//!   rl         —   reinforcement-learning bandit tuner (§6 future work)
//!   iosched    —   second use case: I/O-scheduler batching tuner (§6)
//!   netfs      E9  third use case: NFS rsize tuning over simulated
//!                  networks (DESIGN.md §8)
//!   fleet      E10 multi-tenant fleet serving with a shared
//!                  batched-inference model server (DESIGN.md §9)
//!   lifecycle  E12 model lifecycle: `.kmlm` hot-swap, shadow evaluation,
//!                  watchdog promotion + rollback (DESIGN.md §11);
//!                  `--corrupt` instead proves a corrupted artifact is
//!                  refused with a typed error (the command exits non-zero)
//!   continual  E14 closed-loop online learning: drift detection on a live
//!                  workload pivot, reservoir retrain on the background
//!                  trainer, shadow staging, earned promotion — plus a
//!                  no-drift control that never retrains (DESIGN.md §13)
//!   ablate     —   window-length and activation ablations (DESIGN.md §5)
//!   all        everything above
//! ```
//!
//! `--quick` uses the reduced test-scale configuration (seconds instead of
//! minutes); EXPERIMENTS.md records full-scale output. `--json`
//! additionally writes machine-readable JSON-lines for table2, overheads,
//! dtree, netfs, fleet, and lifecycle under `results/`; every line
//! carries a `schema` field naming its experiment family.
//!
//! `--threads=N` (or the `KML_REPRO_THREADS` environment variable) sets the
//! worker count for the embarrassingly-parallel sweeps (study cells, table2
//! workload×device grid, dtree grid, figure2 repeats, rl, iosched). Every
//! task builds its own simulator from a deterministic per-task seed and
//! results are collected in task-index order, so emitted tables, CSV, and
//! JSON-lines are byte-identical at any worker count (modulo wall-clock
//! lines). Default: the machine's available parallelism.
//!
//! Unit conventions: durations are reported in ns, sizes in bytes.

use kernel_sim::DeviceProfile;
use kml_platform::threading;
use kvstore::Workload;
use readahead::closed_loop::{self, VANILLA_RA_KB};
use readahead::model::{train_paper_model, LoopConfig, TrainedReadahead};
use readahead::study::ReadaheadStudy;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let corrupt = args.iter().any(|a| a == "--corrupt");
    if let Some(n) = parse_threads(&args) {
        // Single knob: route the flag through the env var so library-level
        // sweeps (ReadaheadStudy::run) see the same worker count.
        std::env::set_var(threading::WORKERS_ENV, n.to_string());
    }
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let _ = it.next(); // consume the flag's value
            continue;
        }
        if !a.starts_with("--") {
            positional.push(a.as_str());
        }
    }
    let cmd = positional.first().copied().unwrap_or("all");
    let cfg = if quick {
        LoopConfig::quick()
    } else {
        LoopConfig::default()
    };
    println!(
        "# KML reproduction harness — {} scale\n",
        if quick { "quick" } else { "full" }
    );

    let result = match cmd {
        "study" => cmd_study(&cfg),
        "accuracy" => cmd_accuracy(&cfg),
        "table2" => cmd_table2(&cfg, json),
        "figure2" => cmd_figure2(&cfg),
        "overheads" => cmd_overheads(&cfg, json),
        "dtree" => cmd_dtree(&cfg, json),
        "rl" => cmd_rl(&cfg),
        "iosched" => cmd_iosched(),
        "netfs" => cmd_netfs(quick, json),
        "fleet" => cmd_fleet(&cfg, quick, json),
        "lifecycle" => cmd_lifecycle(quick, json, corrupt),
        "continual" => cmd_continual(quick, json),
        "ablate" => cmd_ablate(&cfg),
        "all" => cmd_all(&cfg, quick, json),
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "experiments: study accuracy table2 figure2 overheads dtree rl iosched netfs fleet lifecycle continual ablate all"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

type DynResult = Result<(), Box<dyn std::error::Error>>;

/// `--threads=N` or `--threads N` → `Some(N)` (N ≥ 1).
fn parse_threads(args: &[String]) -> Option<usize> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
        if a == "--threads" {
            return args.get(i + 1)?.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

/// Trains once per process: `repro all` runs several experiments that all
/// deploy the same (deterministic) models, so the result is shared.
fn trained_model(
    cfg: &LoopConfig,
) -> Result<&'static TrainedReadahead, Box<dyn std::error::Error>> {
    use std::sync::OnceLock;
    static CELL: OnceLock<TrainedReadahead> = OnceLock::new();
    if CELL.get().is_none() {
        let t0 = Instant::now();
        eprintln!("[training the readahead models — study + collection + SGD]");
        let trained = train_paper_model(cfg)?;
        eprintln!("[trained in {:.1?}]", t0.elapsed());
        let _ = CELL.set(trained);
    }
    Ok(CELL.get().expect("set above"))
}

fn cmd_all(cfg: &LoopConfig, quick: bool, json: bool) -> DynResult {
    cmd_study(cfg)?;
    cmd_accuracy(cfg)?;
    cmd_table2(cfg, json)?;
    cmd_figure2(cfg)?;
    cmd_dtree(cfg, json)?;
    cmd_overheads(cfg, json)?;
    cmd_rl(cfg)?;
    cmd_iosched()?;
    cmd_netfs(quick, json)?;
    cmd_fleet(cfg, quick, json)?;
    cmd_lifecycle(quick, json, false)?;
    cmd_continual(quick, json)?;
    cmd_ablate(cfg)
}

/// Prefixes every JSON-lines object produced elsewhere (e.g. telemetry
/// snapshots) with a `schema` field so downstream consumers can route
/// lines without guessing from the filename.
fn with_schema(json_lines: &str, schema: &str) -> String {
    let mut out = String::with_capacity(json_lines.len());
    for line in json_lines.lines() {
        if let Some(rest) = line.strip_prefix('{') {
            out.push_str(&format!(
                "{{\"schema\":{},{rest}\n",
                kml_telemetry::json_str(schema)
            ));
        } else if !line.is_empty() {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Writes a `.jsonl` results file with every object stamped with the
/// kernel backend that produced it: `"backend"` is the dispatched SIMD
/// backend (`scalar` under `KML_FORCE_SCALAR=1`) and `"q8"` whether the
/// int8 serving engine's vector fast path is live on it — so downstream
/// consumers can segment result lines by code path without re-deriving
/// host capabilities.
fn write_json_results(name: &str, json_lines: &str) -> Result<std::path::PathBuf, std::io::Error> {
    let backend = kml_telemetry::json_str(kml_core::simd::backend_name());
    let q8 = kml_core::simd::q8_vector_active();
    let mut out = String::with_capacity(json_lines.len());
    for line in json_lines.lines() {
        if let Some(rest) = line.strip_prefix('{') {
            out.push_str(&format!("{{\"backend\":{backend},\"q8\":{q8},{rest}\n"));
        } else if !line.is_empty() {
            out.push_str(line);
            out.push('\n');
        }
    }
    bench::write_results(name, &out)
}

/// E10 — fleet-scale serving: thousands of seed-derived tenants sharing
/// one batched-inference model server (DESIGN.md §9).
fn cmd_fleet(cfg: &LoopConfig, quick: bool, json: bool) -> DynResult {
    use kml_fleet::fleet::{kind_name, workload_name};
    use kml_fleet::{run_fleet, FleetConfig};

    println!("## E10: multi-tenant fleet serving (DESIGN.md §9)\n");
    let fleet_cfg = if quick {
        FleetConfig {
            tenants: 2_048,
            rounds: 4,
            ..FleetConfig::default()
        }
    } else {
        FleetConfig {
            tenants: 8_192,
            rounds: 6,
            ..FleetConfig::default()
        }
    };

    // Train the three shared classifiers the server deploys — the same
    // recipes the per-subsystem experiments use, f32-deployed like the
    // paper's kernel modules.
    let t0 = Instant::now();
    eprintln!("[training the three fleet classifiers]");
    let models = trained_fleet_models(cfg)?;
    eprintln!("[trained in {:.1?}]", t0.elapsed());

    let report = run_fleet(&fleet_cfg, models)?;
    let s = &report.summary;

    let mean_batch = if s.forward_passes == 0 {
        0.0
    } else {
        s.decisions_returned as f64 / s.forward_passes as f64
    };
    let summary_rows = vec![
        vec!["tenants".into(), s.tenants.to_string()],
        vec!["serving rounds".into(), s.rounds.to_string()],
        vec!["shards".into(), s.shards.to_string()],
        vec!["windows submitted".into(), s.windows_submitted.to_string()],
        vec![
            "decisions returned".into(),
            s.decisions_returned.to_string(),
        ],
        vec!["model forward passes".into(), s.forward_passes.to_string()],
        vec!["mean batch size".into(), format!("{mean_batch:.1}")],
        vec!["tenant ops recorded".into(), s.latency.count.to_string()],
        vec!["op latency p50".into(), format!("{} ns", s.latency.p50)],
        vec!["op latency p99".into(), format!("{} ns", s.latency.p99)],
        vec!["op latency max".into(), format!("{} ns", s.latency.max)],
    ];
    let mut table = bench::render_table(&["metric", "value"], &summary_rows);
    table.push('\n');

    let kind_rows: Vec<Vec<String>> = (0..3)
        .map(|i| {
            vec![
                kind_name(i).into(),
                s.kind_counts[i].to_string(),
                s.decisions_applied[i].to_string(),
            ]
        })
        .collect();
    table.push_str(&bench::render_table(
        &["model", "tenants", "decisions applied"],
        &kind_rows,
    ));
    table.push('\n');

    let workload_rows: Vec<Vec<String>> = (0..7)
        .map(|i| vec![workload_name(i).into(), s.workload_counts[i].to_string()])
        .collect();
    table.push_str(&bench::render_table(
        &["workload (Zipf popularity order)", "tenants"],
        &workload_rows,
    ));
    table.push('\n');

    let batch_rows: Vec<Vec<String>> = s
        .batch_sizes
        .iter()
        .map(|&(size, n)| vec![size.to_string(), n.to_string()])
        .collect();
    table.push_str(&bench::render_table(
        &["batch size", "batches"],
        &batch_rows,
    ));

    println!("{table}");
    // Wall-clock throughput is machine-dependent by nature: stdout only,
    // never in the byte-compared results files.
    println!(
        "tuner-decision throughput: {:.0} tenant-windows/sec (wall {:.2}s)",
        report.tenant_windows_per_sec(),
        report.wall_secs
    );
    // Phase spans recorded by the fleet engine. These are wall-clock
    // facts (and overlap by design in the pipelined engine), so they are
    // stdout-only too. Only `run_fleet` records these histograms, so the
    // global registry holds exactly this run's rounds.
    let snap = kml_telemetry::Registry::global().snapshot();
    let pool_workers = snap.gauge("kml.pool_workers").unwrap_or(0);
    println!("phase breakdown ({} pool workers):", pool_workers);
    for (label, name) in [
        (
            "run   (round start -> last shard simulated)",
            "fleet.phase_run_ns",
        ),
        (
            "serve (round start -> last chunk applied)  ",
            "fleet.phase_serve_ns",
        ),
        (
            "apply (summed in-worker scatter time)      ",
            "fleet.phase_apply_ns",
        ),
    ] {
        if let Some(h) = snap.histogram(name) {
            println!(
                "  {label}: mean {:8.2} ms/round, p99 {:8.2} ms, max {:8.2} ms",
                h.mean() / 1e6,
                h.p99 as f64 / 1e6,
                h.max as f64 / 1e6
            );
        }
    }
    println!(
        "Shape: every submitted window is answered exactly once; batching\n\
         collapses ~{}x forward passes into {} and changes nothing else.\n",
        s.decisions_returned
            .checked_div(s.forward_passes)
            .unwrap_or(0),
        s.forward_passes
    );
    let path = bench::write_results("e10_fleet.txt", &table)?;
    println!("written to {}\n", path.display());

    if json {
        let mut json_lines = format!(
            "{{\"schema\":\"fleet\",\"experiment\":\"e10_fleet\",\"tenants\":{},\"rounds\":{},\"shards\":{},\"windows_submitted\":{},\"decisions_returned\":{},\"forward_passes\":{},\"latency_count\":{},\"latency_p50_ns\":{},\"latency_p95_ns\":{},\"latency_p99_ns\":{},\"latency_max_ns\":{}}}\n",
            s.tenants,
            s.rounds,
            s.shards,
            s.windows_submitted,
            s.decisions_returned,
            s.forward_passes,
            s.latency.count,
            s.latency.p50,
            s.latency.p95,
            s.latency.p99,
            s.latency.max,
        );
        for i in 0..3 {
            json_lines.push_str(&format!(
                "{{\"schema\":\"fleet\",\"experiment\":\"e10_fleet\",\"model\":{},\"tenants\":{},\"decisions_applied\":{}}}\n",
                kml_telemetry::json_str(kind_name(i)),
                s.kind_counts[i],
                s.decisions_applied[i],
            ));
        }
        for i in 0..7 {
            json_lines.push_str(&format!(
                "{{\"schema\":\"fleet\",\"experiment\":\"e10_fleet\",\"workload\":{},\"tenants\":{}}}\n",
                kml_telemetry::json_str(workload_name(i)),
                s.workload_counts[i],
            ));
        }
        for &(size, n) in &s.batch_sizes {
            json_lines.push_str(&format!(
                "{{\"schema\":\"fleet\",\"experiment\":\"e10_fleet\",\"batch_size\":{size},\"batches\":{n}}}\n"
            ));
        }
        let jp = write_json_results("e10_fleet.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
        // Phase breakdown: schema-tagged but printed to stdout ONLY —
        // wall-clock timings must never reach the byte-compared results
        // files (CI hashes e10_fleet.jsonl across worker counts).
        for (phase, name) in [
            ("run", "fleet.phase_run_ns"),
            ("serve", "fleet.phase_serve_ns"),
            ("apply", "fleet.phase_apply_ns"),
        ] {
            if let Some(h) = snap.histogram(name) {
                println!(
                    "{{\"schema\":\"fleet_phase\",\"experiment\":\"e10_fleet\",\"phase\":\"{phase}\",\"rounds\":{},\"mean_ns\":{:.0},\"p99_ns\":{},\"max_ns\":{},\"pool_workers\":{pool_workers}}}",
                    h.count,
                    h.mean(),
                    h.p99,
                    h.max,
                );
            }
        }
    }
    Ok(())
}

/// The three f32-deployed classifiers `repro fleet` serves — trained with
/// the same deterministic recipes the per-subsystem experiments use.
fn trained_fleet_models(
    cfg: &LoopConfig,
) -> Result<kml_fleet::FleetModels, Box<dyn std::error::Error>> {
    let data = readahead::datagen::training_dataset(&cfg.datagen)?;
    let ra64 = readahead::model::train_network(&data, cfg.epochs, 7)?;
    let readahead_f32 = {
        let bytes = kml_core::modelfile::encode(&ra64)?;
        kml_core::modelfile::decode::<f32>(&bytes)?
    };
    let iosched_f32 = iosched::SchedTuner::train_model(7)?;
    let netfs_f32 = {
        let bytes = netfs::train_rsize_model(7)?;
        kml_core::modelfile::decode::<f32>(&bytes)?
    };
    Ok(kml_fleet::FleetModels {
        readahead: readahead_f32,
        iosched: iosched_f32,
        netfs: netfs_f32,
    })
}

/// E12 — model lifecycle: versioned `.kmlm` artifacts hot-swapped into a
/// live closed loop, with shadow evaluation, watchdog promotion, and
/// automatic rollback of a regressed generation (DESIGN.md §11).
///
/// The arc is entirely virtual-clock-driven and therefore byte-identical
/// at any `--threads` count: a sequential reader streams through a cold
/// file while the readahead tuner serves generation 1 (trained to the
/// 1024 KiB class); a behaviourally-equal candidate (same class, distinct
/// seed, bitwise-different weights) rides shadow until the watchdog
/// promotes it after K clean windows; then an operator install pushes a
/// deliberately regressed build (trained to the 16 KiB class), whose
/// actuation collapses streaming throughput until the watchdog rolls the
/// loop back — and the post-rollback windows prove the loop is actuating
/// on the restored generation's decisions.
fn cmd_lifecycle(quick: bool, json: bool, corrupt: bool) -> DynResult {
    use kernel_sim::{Sim, SimConfig, PAGE_SIZE};
    use kml_collect::RingBuffer;
    use kml_lifecycle::{
        load_model_for, ArtifactKind, LifecycleController, LifecycleEvent, WatchdogConfig,
    };
    use readahead::tuner::{KmlTuner, RaPolicy, TunerModel};

    // The two-point policy the DST lifecycle scenarios use: the model's
    // class choice is the whole knob, so a regressed model is visible in
    // throughput within a window or two.
    const POLICY_KB: [u32; 2] = [16, 1024];
    const INITIAL_RA_KB: u32 = 128;
    const WINDOW_NS: u64 = 200_000;
    const OPS_PER_WINDOW: u64 = 48;
    const PAGES_PER_OP: u64 = 4;

    println!("## E12: model lifecycle — hot-swap, shadow, rollback (DESIGN.md §11)\n");

    let epochs = if quick { 60 } else { 160 };
    let t0 = Instant::now();
    eprintln!("[training active / candidate / regressed lifecycle artifacts]");
    // class 1 = 1024 KiB (active and candidate, distinct seeds), class 0
    // = 16 KiB (the regression). Trained in parallel; sharded SGD is
    // byte-identical to serial and results are collected in spec order,
    // so the artifacts don't depend on the worker count.
    let specs: [(usize, u64); 3] = [(1, 11), (1, 23), (0, 37)];
    let trained = threading::pool_map(&specs, threading::default_workers(), |_, &(class, seed)| {
        lifecycle_artifact(class, POLICY_KB.len(), seed, epochs)
    });
    let mut it = trained.into_iter();
    let active = it.next().expect("3 specs")?;
    let candidate = it.next().expect("3 specs")?;
    let regressed = it.next().expect("3 specs")?;
    eprintln!("[trained in {:.1?}]", t0.elapsed());

    if corrupt {
        let mut bad = active.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xA5;
        println!(
            "deliberately flipping byte {mid} of the {}-byte active artifact\n",
            active.len()
        );
        return match load_model_for::<f32>(&bad, ArtifactKind::Readahead) {
            Ok(_) => Err("corrupted artifact was ACCEPTED — the integrity gate is broken".into()),
            Err(e) => {
                println!("load rejected with a typed error, nothing installed:\n  {e}\n");
                Err(format!("corrupt artifact refused as designed: {e}").into())
            }
        };
    }

    // The serving loop: a cold sequential stream over a file much larger
    // than the page cache, so the readahead in force is the throughput.
    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::nvme(),
        cache_pages: 4_096,
        default_ra_kb: INITIAL_RA_KB,
        ..SimConfig::default()
    });
    let (producer, consumer) = RingBuffer::with_capacity(4_096).split();
    sim.attach_trace(producer);
    let file_pages: u64 = 1 << 16;
    let file = sim.create_file(file_pages);
    let gen1 = load_model_for::<f32>(&active, ArtifactKind::Readahead)?;
    let mut tuner = KmlTuner::new(
        TunerModel::NeuralNet(Box::new(gen1.model)),
        RaPolicy::new(POLICY_KB.to_vec()),
        consumer,
        WINDOW_NS,
        INITIAL_RA_KB,
    );
    let cfg = WatchdogConfig {
        // One-window baseline: actuation lags an install by the tuner's
        // two-window hysteresis, so the first post-install window still
        // runs mostly under the outgoing readahead and baselines high —
        // the regressed generation is judged against healthy throughput.
        baseline_windows: 1,
        promote_after: 3,
        regress_windows: 2,
        regress_ratio: 0.7,
    };
    let mut controller = LifecycleController::new(cfg, &mut tuner, active.clone())?;

    let mut cursor: u64 = 0;
    let run_window = |sim: &mut Sim, tuner: &mut KmlTuner, cursor: &mut u64| -> DynResult2<f64> {
        let start = sim.now_ns();
        for _ in 0..OPS_PER_WINDOW {
            if *cursor + PAGES_PER_OP > file_pages {
                *cursor = 0;
            }
            sim.read(file, *cursor, PAGES_PER_OP)?;
            *cursor += PAGES_PER_OP;
            tuner.on_op(sim)?;
        }
        let dt = (sim.now_ns() - start).max(1);
        // bytes / ns → MB per virtual second.
        Ok((OPS_PER_WINDOW * PAGES_PER_OP * PAGE_SIZE) as f64 * 1e3 / dt as f64)
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut w = 0u64;
    let push_row = |rows: &mut Vec<Vec<String>>,
                    w: u64,
                    phase: &str,
                    generation: u64,
                    ra_kb: u32,
                    mbps: f64,
                    event: String| {
        rows.push(vec![
            w.to_string(),
            phase.into(),
            generation.to_string(),
            ra_kb.to_string(),
            format!("{mbps:.1}"),
            event,
        ]);
    };

    // Phase 1 — generation 1 serves and the loop settles on its class.
    for _ in 0..3 {
        w += 1;
        let tp = run_window(&mut sim, &mut tuner, &mut cursor)?;
        controller.observe_window(&mut tuner, tp)?;
        push_row(
            &mut rows,
            w,
            "serve",
            tuner.model_generation(),
            tuner.current_ra_kb(),
            tp,
            String::new(),
        );
    }

    // Phase 2 — stage the candidate; the watchdog promotes it after K
    // clean windows, freezing its shadow agreement at promotion time.
    controller.stage_shadow(&mut tuner, candidate.clone())?;
    let mut promoted: Option<(u64, u64, u64, f64)> = None;
    for _ in 0..8 {
        w += 1;
        let tp = run_window(&mut sim, &mut tuner, &mut cursor)?;
        let ev = controller.observe_window(&mut tuner, tp)?;
        let note = match ev {
            Some(LifecycleEvent::Promoted {
                from,
                to,
                agreement_pct,
            }) => {
                promoted = Some((w, from, to, agreement_pct));
                format!("promoted {from}→{to} (agreement {agreement_pct:.1}%)")
            }
            _ => String::new(),
        };
        push_row(
            &mut rows,
            w,
            "shadow",
            tuner.model_generation(),
            tuner.current_ra_kb(),
            tp,
            note,
        );
        if promoted.is_some() {
            break;
        }
    }
    let (promote_window, promote_from, gen2, agreement_pct) =
        promoted.ok_or("the watchdog never promoted the staged candidate")?;

    // Phase 3 — the promoted generation serves (and re-baselines).
    for _ in 0..2 {
        w += 1;
        let tp = run_window(&mut sim, &mut tuner, &mut cursor)?;
        controller.observe_window(&mut tuner, tp)?;
        push_row(
            &mut rows,
            w,
            "serve",
            tuner.model_generation(),
            tuner.current_ra_kb(),
            tp,
            String::new(),
        );
    }

    // Phase 4 — operator-push the regressed build; its 16 KiB actuation
    // collapses the stream and the watchdog rolls the loop back.
    let gen3 = controller.install(&mut tuner, regressed.clone())?;
    let mut rolled: Option<(u64, u64, u64)> = None;
    for _ in 0..10 {
        w += 1;
        let tp = run_window(&mut sim, &mut tuner, &mut cursor)?;
        let ev = controller.observe_window(&mut tuner, tp)?;
        let note = match ev {
            Some(LifecycleEvent::RolledBack { from, to }) => {
                rolled = Some((w, from, to));
                format!("rolled back {from}→{to}")
            }
            _ => String::new(),
        };
        push_row(
            &mut rows,
            w,
            "regressed",
            tuner.model_generation(),
            tuner.current_ra_kb(),
            tp,
            note,
        );
        if rolled.is_some() {
            break;
        }
    }
    let (rollback_window, rollback_from, rollback_to) =
        rolled.ok_or("the watchdog never rolled back the regressed generation")?;
    if rollback_from != gen3 || rollback_to != gen2 {
        return Err(format!(
            "rollback restored generation {rollback_to} from {rollback_from} \
             (expected {gen3}→{gen2})"
        )
        .into());
    }
    if tuner.model_generation() != gen2 {
        return Err(format!(
            "after rollback the loop holds generation {} (expected {gen2})",
            tuner.model_generation()
        )
        .into());
    }

    // Phase 5 — the proof windows: every decision the loop takes after
    // the rollback is tagged with the restored generation, and the knob
    // recovers to the healthy class.
    let decisions_before = tuner.decisions().len();
    for _ in 0..3 {
        w += 1;
        let tp = run_window(&mut sim, &mut tuner, &mut cursor)?;
        controller.observe_window(&mut tuner, tp)?;
        push_row(
            &mut rows,
            w,
            "restored",
            tuner.model_generation(),
            tuner.current_ra_kb(),
            tp,
            String::new(),
        );
    }
    let fresh = &tuner.decisions()[decisions_before..];
    if fresh.is_empty() {
        return Err("no tuner decisions in the post-rollback proof windows".into());
    }
    if let Some(d) = fresh.iter().find(|d| d.generation != gen2) {
        return Err(format!(
            "post-rollback decision tagged generation {} (expected {gen2})",
            d.generation
        )
        .into());
    }
    let final_ra = tuner.current_ra_kb();
    if final_ra != 1024 {
        return Err(format!(
            "loop did not re-actuate 1024 KiB after the rollback (holds {final_ra})"
        )
        .into());
    }

    let mut table = bench::render_table(
        &[
            "window",
            "phase",
            "gen",
            "ra KiB",
            "MB/s (virtual)",
            "event",
        ],
        &rows,
    );
    table.push('\n');
    table.push_str(&format!(
        "promoted:    candidate {promote_from}→{gen2} at window {promote_window} \
         after {} clean windows (shadow agreement {agreement_pct:.1}%)\n\
         rolled back: {rollback_from}→{rollback_to} at window {rollback_window} \
         after {} regressed windows\n\
         restored:    {} post-rollback decisions all tagged generation {gen2}; \
         readahead re-actuated to {final_ra} KiB\n",
        cfg.promote_after,
        cfg.regress_windows,
        fresh.len(),
    ));
    println!("{table}");
    let path = bench::write_results("e12_lifecycle.txt", &table)?;
    println!("written to {}\n", path.display());

    if json {
        let mut json_lines = String::new();
        for r in &rows {
            json_lines.push_str(&format!(
                "{{\"schema\":\"lifecycle\",\"experiment\":\"e12_lifecycle\",\"window\":{},\"phase\":{},\"generation\":{},\"ra_kb\":{},\"mbps\":{},\"event\":{}}}\n",
                r[0],
                kml_telemetry::json_str(&r[1]),
                r[2],
                r[3],
                r[4],
                kml_telemetry::json_str(&r[5]),
            ));
        }
        json_lines.push_str(&format!(
            "{{\"schema\":\"lifecycle\",\"experiment\":\"e12_lifecycle\",\"promoted_window\":{promote_window},\"agreement_pct\":{agreement_pct:.1},\"rollback_window\":{rollback_window},\"restored_generation\":{gen2},\"final_ra_kb\":{final_ra},\"post_rollback_decisions\":{}}}\n",
            fresh.len(),
        ));
        let jp = write_json_results("e12_lifecycle.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
    }
    Ok(())
}

type DynResult2<T> = Result<T, Box<dyn std::error::Error>>;

/// Trains one constant-class lifecycle artifact: the paper topology fit
/// to a single-label dataset over seed-derived feature rows (the spread
/// keeps the normalizer healthy; the constant label makes the model's
/// class choice independent of the window it sees), f32-deployed through
/// the model file and packaged as checksummed `.kmlm` bytes. String
/// errors so the trainer can cross `parallel_map`'s `Send` boundary.
fn lifecycle_artifact(
    class: usize,
    classes: usize,
    seed: u64,
    epochs: usize,
) -> Result<Vec<u8>, String> {
    use kml_core::dataset::{Dataset, Normalizer};
    use kml_core::loss::CrossEntropyLoss;
    use kml_core::model::ModelBuilder;
    use kml_core::optimizer::Sgd;
    use kml_core::KmlRng;
    use rand::SeedableRng;

    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    // Ranges bracket what the E12 stream actually produces: up to a few
    // thousand tracepoints per window, offsets inside a 2^16-page file,
    // small sequential deltas, and every readahead the policy can hold.
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|_| {
            vec![
                1.0 + next() * 2_000.0,  // tracepoints in window
                next() * 65_536.0,       // mean page offset
                next() * 20_000.0,       // offset stddev
                1.0 + next() * 2_000.0,  // mean |Δoffset|
                16.0 + next() * 1_008.0, // readahead in force (KiB)
            ]
        })
        .collect();
    let labels = vec![class; rows.len()];
    let data = Dataset::from_rows(&rows, &labels).map_err(|e| e.to_string())?;

    let mut model = ModelBuilder::readahead_paper_topology(readahead::NUM_FEATURES, classes)
        .seed(seed)
        .build::<f64>()
        .map_err(|e| e.to_string())?;
    model.set_normalizer(Normalizer::fit(data.features()).map_err(|e| e.to_string())?);
    let mut sgd = Sgd::paper_defaults();
    let mut rng = KmlRng::seed_from_u64(seed ^ 0xA5A5);
    for _ in 0..epochs {
        model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .map_err(|e| e.to_string())?;
    }
    let bytes = kml_core::modelfile::encode(&model).map_err(|e| e.to_string())?;
    let mut m32 = kml_core::modelfile::decode::<f32>(&bytes).map_err(|e| e.to_string())?;
    kml_lifecycle::save_model(kml_lifecycle::ArtifactKind::Readahead, &mut m32)
        .map_err(|e| e.to_string())
}

/// E14 — closed-loop online learning (DESIGN.md §13): a live loop served
/// by a constant class-0 model pivots from random to sequential reads;
/// the drift detector fires on the sustained feature shift, the
/// background retrainer trains a candidate from the reservoir, the
/// candidate shadow-stages and earns promotion after clean windows, and
/// every post-promotion decision is stamped with the new generation while
/// the readahead recovers to the sequential class. A control arc without
/// the pivot proves the loop never retrains on a stationary workload.
fn cmd_continual(quick: bool, json: bool) -> DynResult {
    use kernel_sim::{FileId, Sim, SimConfig, PAGE_SIZE};
    use kml_collect::RingBuffer;
    use kml_continual::{
        train_candidate, BackgroundRetrainer, ContinualConfig, ContinualController, DriftConfig,
        ReservoirSample, RetrainMode, RetrainSpec,
    };
    use kml_lifecycle::{ArtifactKind, LifecycleEvent, WatchdogConfig};
    use kml_platform::Persona;
    use readahead::tuner::{KmlTuner, RaPolicy, TunerModel};

    const POLICY_KB: [u32; 2] = [16, 1024];
    const INITIAL_RA_KB: u32 = 128;
    const WINDOW_NS: u64 = 200_000;
    const PAGES_PER_OP: u64 = 4;
    const FILE_PAGES: u64 = 1 << 16;
    // Observation windows per phase: enough random windows to freeze the
    // drift reference, enough shifted ones for trigger + retrain +
    // shadow + post-promotion proof.
    const RANDOM_WINDOWS: u64 = 12;
    const SHIFTED_WINDOWS: u64 = 40;

    println!("## E14: continual learning — drift, retrain, earned promotion (DESIGN.md §13)\n");

    // Full-batch steps over a ≤64-sample reservoir — cheap enough that
    // "quick" barely differs, and enough of them that the boundary is
    // actually learned rather than approximated.
    let epochs = if quick { 1_500 } else { 3_000 };
    let spec = RetrainSpec {
        kind: ArtifactKind::Readahead,
        classes: POLICY_KB.len(),
        epochs,
        seed: 0xE14_7EA1,
    };

    // Generation 1: trained through the retrainer's own packaging path on
    // a random-phase cluster labeled class 0 — it holds the 16 KiB class
    // no matter what it sees, so the pivot genuinely hurts until the loop
    // retrains its way out.
    let t0 = Instant::now();
    eprintln!("[training the generation-1 artifact]");
    let gen1_samples: Vec<ReservoirSample> = (0..32u64)
        .map(|j| {
            let jit = |k: u64| ((j * 7 + k) % 11) as f64 * 0.05;
            ReservoirSample {
                id: j,
                priority: 0,
                // The random-phase cluster in the loop's pattern-feature
                // space (see `Arc14::phi`): ~14 bits of per-window offset
                // spread, ~12 bits of mean jump distance.
                features: [0.0, 0.0, 14.2 + jit(0), 12.0 + jit(1), 0.0],
                label: 0,
            }
        })
        .collect();
    let gen1 = train_candidate(&spec, 0, &gen1_samples)?;
    eprintln!("[trained in {:.1?}]", t0.elapsed());

    let continual_cfg = ContinualConfig {
        // Blocks of 6 put the trigger ~12 windows past the pivot, so the
        // reservoir the retrainer samples holds both phases in balance.
        drift: DriftConfig {
            reference_windows: 6,
            block_windows: 6,
            threshold: 8.0,
            trigger_blocks: 2,
            abs_floor: 1.0,
        },
        reservoir_capacity: 64,
        seed: 0xE14_5EED,
        min_samples: 16,
        watchdog: WatchdogConfig {
            baseline_windows: 1,
            promote_after: 3,
            regress_windows: 2,
            regress_ratio: 0.5,
        },
        spec,
    };

    // One driven loop: a fresh sim + tuner + controller, windows observed
    // through the full reservoir → drift → retrain → watchdog path, the
    // model's decision actuated after observation so a just-promoted
    // generation stamps the very window it won.
    struct Arc14 {
        sim: Sim,
        tuner: KmlTuner,
        controller: Option<ContinualController>,
        file: FileId,
        cursor: u64,
        lcg: u64,
        window_start_ns: u64,
        pages_since: u64,
        total_records: f64,
        sum_offset: f64,
        sum_offset2: f64,
        rows: Vec<Vec<String>>,
        windows: u64,
        promoted_at: Option<u64>,
        decisions_at_promotion: usize,
    }

    impl Arc14 {
        fn new(gen1: &[u8], cfg: &ContinualConfig, background: bool) -> DynResult2<Self> {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::nvme(),
                cache_pages: 4_096,
                default_ra_kb: INITIAL_RA_KB,
                ..SimConfig::default()
            });
            let (producer, consumer) = RingBuffer::with_capacity(4_096).split();
            sim.attach_trace(producer);
            let file = sim.create_file(FILE_PAGES);
            let mut tuner = KmlTuner::new(
                TunerModel::Remote,
                RaPolicy::new(POLICY_KB.to_vec()),
                consumer,
                WINDOW_NS,
                INITIAL_RA_KB,
            );
            let mode = if background {
                RetrainMode::Background(BackgroundRetrainer::spawn(Persona::Kernel, cfg.spec)?)
            } else {
                RetrainMode::Inline
            };
            let controller = ContinualController::new(*cfg, &mut tuner, gen1.to_vec(), mode)?;
            let window_start_ns = sim.now_ns();
            Ok(Arc14 {
                sim,
                tuner,
                controller: Some(controller),
                file,
                cursor: 0,
                lcg: 0xE14,
                window_start_ns,
                pages_since: 0,
                total_records: 0.0,
                sum_offset: 0.0,
                sum_offset2: 0.0,
                rows: Vec::new(),
                windows: 0,
                promoted_at: None,
                decisions_at_promotion: 0,
            })
        }

        /// Actuation-invariant pattern features for one window. The raw
        /// extractor's mean/std channels are cumulative over the run, so
        /// this first recovers per-window statistics from the running
        /// totals, then keeps only the channels the loop's own decisions
        /// cannot move: a promoted model that changes the readahead size
        /// changes the op count and knob channels of every later window,
        /// and a model keyed on those would drift out of its own training
        /// distribution the moment it won. Log2 compression matches the
        /// generation-1 cluster and keeps the phase step a few clean bits.
        fn phi(&mut self, raw: &[f64; 5]) -> [f64; 5] {
            let n = raw[0];
            let w_std = if n > 0.0 {
                let total = self.total_records + n;
                let sum = raw[1] * total;
                let sum2 = (raw[2] * raw[2] + raw[1] * raw[1]) * total;
                let wm = (sum - self.sum_offset) / n;
                let we2 = (sum2 - self.sum_offset2) / n;
                self.total_records = total;
                self.sum_offset = sum;
                self.sum_offset2 = sum2;
                (we2 - wm * wm).max(0.0).sqrt()
            } else {
                0.0
            };
            [0.0, 0.0, (1.0 + w_std).log2(), (1.0 + raw[3]).log2(), 0.0]
        }

        /// Runs ops of one phase until `until` total windows have been
        /// observed, recording a row per window.
        fn drive(&mut self, phase: &str, random: bool, until: u64) -> DynResult2<()> {
            let file = self.file;
            while self.windows < until {
                let page = if random {
                    self.lcg = self
                        .lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (self.lcg >> 33) % (FILE_PAGES - PAGES_PER_OP)
                } else {
                    let p = self.cursor;
                    self.cursor = (self.cursor + PAGES_PER_OP) % (FILE_PAGES - PAGES_PER_OP);
                    p
                };
                self.sim.read(file, page, PAGES_PER_OP)?;
                self.pages_since += PAGES_PER_OP;
                let Some(features) = self.tuner.poll_window(&mut self.sim) else {
                    continue;
                };
                self.windows += 1;
                let now = self.sim.now_ns();
                let dt = (now - self.window_start_ns).max(1);
                let mbps = (self.pages_since * PAGE_SIZE) as f64 * 1e3 / dt as f64;
                self.window_start_ns = now;
                self.pages_since = 0;
                let label = KmlTuner::heuristic_class(&features);
                let phi = self.phi(&features);
                let controller = self.controller.as_mut().expect("not shut down");
                let out = controller.observe_window(&mut self.tuner, &phi, label, mbps)?;
                let mut note = String::new();
                if out.drifted {
                    note = format!("drift (score {:.1})", controller.last_drift_score());
                }
                if out.retrained {
                    note = format!(
                        "{note}{}retrained on {} reservoir samples → staged",
                        if note.is_empty() { "" } else { "; " },
                        controller.reservoir_len()
                    );
                }
                match out.lifecycle {
                    Some(LifecycleEvent::Promoted {
                        from,
                        to,
                        agreement_pct,
                    }) => {
                        self.promoted_at = Some(self.windows);
                        self.decisions_at_promotion = self.tuner.decisions().len();
                        note = format!("promoted {from}→{to} (agreement {agreement_pct:.1}%)");
                    }
                    Some(LifecycleEvent::RolledBack { from, to }) => {
                        note = format!("rolled back {from}→{to}");
                    }
                    None => {}
                }
                let class = self.tuner.predict_active(&phi).map_err(|e| {
                    Box::<dyn std::error::Error>::from(format!("predict failed: {e:?}"))
                })?;
                self.tuner.apply_class(&mut self.sim, class);
                self.rows.push(vec![
                    self.windows.to_string(),
                    phase.into(),
                    self.tuner.model_generation().to_string(),
                    self.tuner.current_ra_kb().to_string(),
                    format!("{mbps:.1}"),
                    note,
                ]);
            }
            Ok(())
        }

        fn shutdown(&mut self) -> DynResult2<()> {
            if let Some(c) = self.controller.take() {
                c.shutdown()?;
            }
            Ok(())
        }
    }

    // The drift arc: random phase, then the pivot — on the background
    // retrainer, the deployed shape (bytes are identical to inline).
    let mut arc = Arc14::new(&gen1, &continual_cfg, true)?;
    arc.drive("random", true, RANDOM_WINDOWS)?;
    arc.drive("shifted", false, RANDOM_WINDOWS + SHIFTED_WINDOWS)?;
    let controller = arc.controller.as_ref().expect("not shut down");
    let (drift_events, retrains, promotions, rollbacks) = (
        controller.drift_events(),
        controller.retrains(),
        controller.promotions(),
        controller.rollbacks(),
    );
    let generation = controller.generation();
    let reservoir_hash = controller.reservoir_hash();
    if promotions == 0 {
        return Err("the shifted arc never promoted a retrained candidate".into());
    }
    if generation != 1 + promotions {
        return Err(format!(
            "active generation {generation} after {promotions} promotions (expected {})",
            1 + promotions
        )
        .into());
    }
    let promoted_at = arc.promoted_at.expect("promotions > 0");
    let fresh = &arc.tuner.decisions()[arc.decisions_at_promotion..];
    if fresh.is_empty() {
        return Err("no decisions in the post-promotion proof windows".into());
    }
    if let Some(d) = fresh.iter().find(|d| d.generation != generation) {
        return Err(format!(
            "post-promotion decision tagged generation {} (expected {generation})",
            d.generation
        )
        .into());
    }
    let fresh_len = fresh.len();
    let final_ra = arc.tuner.current_ra_kb();
    if final_ra != 1024 {
        return Err(format!(
            "loop did not recover the sequential 1024 KiB class (holds {final_ra})"
        )
        .into());
    }
    arc.shutdown()?;

    // The control arc: same loop, same windows, no pivot — the reservoir
    // fills, the detector monitors, and nothing ever fires.
    let mut control = Arc14::new(&gen1, &continual_cfg, false)?;
    control.drive("control", true, RANDOM_WINDOWS + SHIFTED_WINDOWS)?;
    let cctl = control.controller.as_ref().expect("not shut down");
    let control_counts = (
        cctl.drift_events(),
        cctl.retrains(),
        cctl.promotions(),
        cctl.generation(),
    );
    if control_counts != (0, 0, 0, 1) {
        return Err(format!(
            "the no-drift control was not silent: {} drift, {} retrains, {} promotions, generation {}",
            control_counts.0, control_counts.1, control_counts.2, control_counts.3
        )
        .into());
    }
    control.shutdown()?;

    let mut table = bench::render_table(
        &[
            "window",
            "phase",
            "gen",
            "ra KiB",
            "MB/s (virtual)",
            "event",
        ],
        &arc.rows,
    );
    table.push('\n');
    table.push_str(&format!(
        "arc:     {drift_events} drift trigger(s) → {retrains} retrain(s) → \
         {promotions} promotion(s), {rollbacks} rollback(s); promoted at window {promoted_at}\n\
         proof:   {fresh_len} post-promotion decisions all tagged generation {generation}; \
         readahead recovered to {final_ra} KiB\n\
         control: 0 drift, 0 retrains, 0 promotions over {} stationary windows \
         (generation stayed 1)\n\
         reservoir contents hash: {reservoir_hash:#018x}\n",
        RANDOM_WINDOWS + SHIFTED_WINDOWS,
    ));
    println!("{table}");
    let path = bench::write_results("e14_continual.txt", &table)?;
    println!("written to {}\n", path.display());

    if json {
        let mut json_lines = String::new();
        for r in &arc.rows {
            json_lines.push_str(&format!(
                "{{\"schema\":\"continual\",\"experiment\":\"e14_continual\",\"window\":{},\"phase\":{},\"generation\":{},\"ra_kb\":{},\"mbps\":{},\"event\":{}}}\n",
                r[0],
                kml_telemetry::json_str(&r[1]),
                r[2],
                r[3],
                r[4],
                kml_telemetry::json_str(&r[5]),
            ));
        }
        json_lines.push_str(&format!(
            "{{\"schema\":\"continual\",\"experiment\":\"e14_continual\",\"drift_events\":{drift_events},\"retrains\":{retrains},\"promotions\":{promotions},\"rollbacks\":{rollbacks},\"promoted_window\":{promoted_at},\"final_generation\":{generation},\"final_ra_kb\":{final_ra},\"post_promotion_decisions\":{fresh_len},\"control_drift_events\":0,\"control_retrains\":0,\"control_promotions\":0,\"reservoir_hash\":\"{reservoir_hash:#018x}\"}}\n",
        ));
        let jp = write_json_results("e14_continual.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
    }
    Ok(())
}

/// E9 — third use case: the same framework tuning an NFS-like mount's
/// `rsize` over simulated network links (DESIGN.md §8).
fn cmd_netfs(quick: bool, json: bool) -> DynResult {
    use netfs::{NetProfile, NetRunConfig, FIXED_RSIZES_KB};

    println!("## E9: NFS rsize tuning over simulated networks (DESIGN.md §8)\n");
    let cfg = if quick {
        NetRunConfig::quick()
    } else {
        NetRunConfig::paper()
    };
    let t0 = Instant::now();
    eprintln!("[training the rsize link classifier]");
    let model_bytes = netfs::train_rsize_model(7)?;
    eprintln!("[trained in {:.1?}]", t0.elapsed());
    // One profile per task: each comparison builds its own transport, server,
    // and tuner from the profile seed, so fan-out is deterministic and the
    // rows come back in profile order.
    let profiles = NetProfile::experiment_profiles(7);
    let outcomes = threading::pool_map(&profiles, threading::default_workers(), |_, &profile| {
        netfs::compare(profile, &model_bytes, &cfg)
    });
    let mut rows = Vec::new();
    let mut json_lines = String::new();
    let mut speedups = Vec::new();
    for outcome in outcomes {
        let outcome = outcome?;
        let mut row = vec![outcome.profile.to_string()];
        for (_, report) in &outcome.fixed {
            row.push(format!("{:.1}", report.mb_per_sec));
        }
        row.push(format!("{:.1}", outcome.kml.mb_per_sec));
        row.push(format!("{:.2}x", outcome.speedup_vs_best_fixed));
        row.push(outcome.decisions.len().to_string());
        speedups.push(outcome.speedup_vs_best_fixed);
        if json {
            let fixed: Vec<String> = outcome
                .fixed
                .iter()
                .map(|(kb, r)| format!("\"fixed_{kb}k_mb_s\":{:.4}", r.mb_per_sec))
                .collect();
            json_lines.push_str(&format!(
                "{{\"schema\":\"netfs\",\"experiment\":\"e9_netfs\",\"profile\":{},{},\"kml_mb_s\":{:.4},\"speedup_vs_best_fixed\":{:.4},\"decisions\":{},\"retransmits\":{},\"timeouts\":{}}}\n",
                kml_telemetry::json_str(outcome.profile),
                fixed.join(","),
                outcome.kml.mb_per_sec,
                outcome.speedup_vs_best_fixed,
                outcome.decisions.len(),
                outcome.kml.stats.retransmits,
                outcome.kml.stats.timeouts,
            ));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("profile".to_string())
        .chain(FIXED_RSIZES_KB.iter().map(|kb| format!("{kb}K MB/s")))
        .chain([
            "KML MB/s".into(),
            "vs best fixed".into(),
            "decisions".into(),
        ])
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table = bench::render_table(&header_refs, &rows);
    println!("{table}");
    println!(
        "geomean vs best fixed rsize: {:.2}x\n\
         Shape: on the clean datacenter link every large rsize ties and KML\n\
         matches the best fixed choice; on lossy/phased links no fixed rsize\n\
         wins everywhere and the tuner's per-window switching pulls ahead.\n",
        bench::geometric_mean(&speedups)
    );
    let path = bench::write_results("e9_netfs.txt", &table)?;
    println!("written to {}\n", path.display());
    if json {
        let jp = write_json_results("e9_netfs.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
    }
    Ok(())
}

/// §6 future work — the second use case: the same framework tuning the
/// block layer's request-batching window.
fn cmd_iosched() -> DynResult {
    use iosched::{run_sched_workload, IoScheduler, SchedTuner, SchedWorkload, SchedulerConfig};

    println!("## I/O-scheduler use case (§6 future work)\n");
    const REQUESTS: u64 = 4_096;
    const PATIENT_NS: u64 = 150_000;
    let workloads = [
        SchedWorkload::DependentRandom,
        SchedWorkload::MergeableBurst,
        SchedWorkload::Phased,
    ];
    // Each traffic pattern trains and evaluates its own tuner — independent
    // tasks, deterministic seeds, row order fixed by the workload list.
    let results = threading::pool_map(
        &workloads,
        threading::default_workers(),
        |_, &workload| -> kml_core::Result<Vec<String>> {
            let run_static = |wait| {
                let mut sched = IoScheduler::new(
                    DeviceProfile::sata_ssd(),
                    SchedulerConfig {
                        batch_wait_ns: wait,
                        max_batch: 256,
                    },
                );
                run_sched_workload(&mut sched, workload, REQUESTS, 11, |_, _, _| {})
            };
            let eager = run_static(0);
            let patient = run_static(PATIENT_NS);
            let mut sched = IoScheduler::new(DeviceProfile::sata_ssd(), SchedulerConfig::default());
            let mut tuner = SchedTuner::train([0, PATIENT_NS], 5)?;
            let tuned = run_sched_workload(&mut sched, workload, REQUESTS, 11, |s, req, now| {
                tuner
                    .on_request(s, req, now)
                    .expect("tuner inference succeeds");
            });
            Ok(vec![
                workload.name().into(),
                format!("{:.0}", eager.requests_per_sec),
                format!("{:.0}", patient.requests_per_sec),
                format!("{:.0}", tuned.requests_per_sec),
                format!("{:.0} ns", tuned.mean_latency_ns),
            ])
        },
    );
    let rows = results.into_iter().collect::<kml_core::Result<Vec<_>>>()?;
    println!(
        "{}",
        bench::render_table(
            &[
                "traffic",
                "eager req/s",
                "patient req/s",
                "KML req/s",
                "KML latency"
            ],
            &rows
        )
    );
    println!(
        "Shape: dependent-random traffic wants the eager config, mergeable\n\
         bursts want the patient one, and the KML tuner tracks the better of\n\
         the two per phase — the readahead result at a different layer.\n"
    );
    Ok(())
}

/// §6 future work — the reinforcement-learning bandit against the
/// supervised tuner and vanilla, with zero training data.
fn cmd_rl(cfg: &LoopConfig) -> DynResult {
    println!("## RL extension: UCB1 bandit tuner (§6 future work)\n");
    let trained = trained_model(cfg)?;
    // The bandit needs windows to explore; give it a longer run.
    let mut rl_cfg = cfg.clone();
    rl_cfg.eval_ops = cfg.eval_ops * 3;
    let mut tasks = Vec::new();
    for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
        for workload in [Workload::ReadRandom, Workload::MixGraph] {
            tasks.push((device, workload));
        }
    }
    let results = threading::pool_map(
        &tasks,
        threading::default_workers(),
        |_, &(device, workload)| -> kml_core::Result<Vec<String>> {
            let vanilla = closed_loop::run_vanilla(workload, device, &rl_cfg);
            let (nn, _) = closed_loop::run_kml(workload, device, trained, &rl_cfg)?;
            let (bandit, _) = closed_loop::run_bandit(workload, device, &rl_cfg);
            Ok(vec![
                format!("{}/{}", workload.name(), device.name),
                format!("{:.2}x", nn.ops_per_sec / vanilla.ops_per_sec),
                format!("{:.2}x", bandit.ops_per_sec / vanilla.ops_per_sec),
            ])
        },
    );
    let rows = results.into_iter().collect::<kml_core::Result<Vec<_>>>()?;
    println!(
        "{}",
        bench::render_table(&["workload/device", "supervised NN", "RL bandit"], &rows)
    );
    println!(
        "The bandit needs no training data or workload classes — it pays for\n\
         that with exploration windows, so the supervised tuner converges\n\
         faster on known workloads while the bandit generalizes to anything.\n"
    );
    Ok(())
}

/// E1 — §4 "Studying the problem".
fn cmd_study(cfg: &LoopConfig) -> DynResult {
    println!("## E1: readahead-vs-throughput study (§4, motivating curves)\n");
    let workloads = Workload::training_set();
    for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
        let study = ReadaheadStudy::run(device, &workloads, &cfg.study);
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for w in workloads {
            for cell in study.curve(w) {
                csv_rows.push(vec![
                    w.name().into(),
                    cell.ra_kb.to_string(),
                    format!("{:.0}", cell.ops_per_sec),
                ]);
            }
            let best = study.best_ra_kb(w);
            let best_tp = study.throughput(w, best).unwrap_or(0.0);
            let default_tp = nearest_throughput(&study, w, VANILLA_RA_KB);
            rows.push(vec![
                w.name().into(),
                format!("{best}"),
                format!("{best_tp:.0}"),
                format!("{default_tp:.0}"),
                format!("{:.2}x", best_tp / default_tp.max(1e-9)),
            ]);
        }
        println!("### device: {}\n", device.name);
        println!(
            "{}",
            bench::render_table(
                &[
                    "workload",
                    "best ra (KiB)",
                    "ops/s @ best",
                    "ops/s @ 128KiB",
                    "headroom"
                ],
                &rows
            )
        );
        let csv = bench::to_csv(&["workload", "ra_kb", "ops_per_sec"], &csv_rows);
        let path = bench::write_results(&format!("e1_study_{}.csv", device.name), &csv)?;
        println!("curves written to {}\n", path.display());
    }
    println!(
        "Shape check (paper): no single readahead value maximizes throughput\n\
         for all workloads; sequential prefers large values, random small.\n"
    );
    Ok(())
}

fn nearest_throughput(study: &ReadaheadStudy, w: Workload, ra_kb: u32) -> f64 {
    study.throughput(w, ra_kb).unwrap_or_else(|| {
        // Sweep may not contain the exact default; take the closest cell.
        study
            .curve(w)
            .iter()
            .min_by_key(|c| c.ra_kb.abs_diff(ra_kb))
            .map(|c| c.ops_per_sec)
            .unwrap_or(0.0)
    })
}

/// E2 — k-fold cross-validation accuracy.
fn cmd_accuracy(cfg: &LoopConfig) -> DynResult {
    println!("## E2: readahead NN k-fold cross-validation (§4)\n");
    let trained = trained_model(cfg)?;
    let cv = &trained.cross_validation;
    for (i, acc) in cv.fold_accuracies.iter().enumerate() {
        println!("fold {i}: {:.1}%", acc * 100.0);
    }
    println!(
        "\nmean accuracy: {:.1}% (± {:.1}%)   [paper: 95.5% at k=10]\n",
        cv.mean_accuracy() * 100.0,
        cv.std_accuracy() * 100.0
    );
    Ok(())
}

/// E3 — Table 2.
fn cmd_table2(cfg: &LoopConfig, json: bool) -> DynResult {
    println!("## E3: Table 2 — KML readahead NN speedups\n");
    let trained = trained_model(cfg)?;
    // One independent closed-loop comparison per (workload, device) cell,
    // fanned out across the worker pool; results come back in grid order so
    // the table and JSON-lines match a sequential run byte for byte.
    let mut tasks = Vec::new();
    for workload in Workload::all() {
        for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
            tasks.push((workload, device));
        }
    }
    let outcomes = threading::pool_map(
        &tasks,
        threading::default_workers(),
        |_, &(workload, device)| closed_loop::compare(workload, device, trained, cfg),
    );
    let mut rows = Vec::new();
    let mut nvme_speedups = Vec::new();
    let mut ssd_speedups = Vec::new();
    let mut json_lines = String::new();
    let mut grid = outcomes.into_iter();
    for workload in Workload::all() {
        let mut row = vec![workload.name().to_string()];
        let mut cells = Vec::new();
        for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
            let outcome = grid.next().expect("one outcome per grid cell")?;
            row.push(format!("{:.2}x", outcome.speedup));
            cells.push(outcome.speedup);
            if device.name == "nvme" {
                nvme_speedups.push(outcome.speedup);
            } else {
                ssd_speedups.push(outcome.speedup);
            }
        }
        json_lines.push_str(&format!(
            "{{\"schema\":\"table2\",\"experiment\":\"e3_table2\",\"workload\":{},\"nvme_speedup\":{:.4},\"ssd_speedup\":{:.4}}}\n",
            kml_telemetry::json_str(workload.name()),
            cells[0],
            cells[1],
        ));
        rows.push(row);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.2}x", bench::geometric_mean(&nvme_speedups)),
        format!("{:.2}x", bench::geometric_mean(&ssd_speedups)),
    ]);
    let table = bench::render_table(&["benchmark", "NVMe", "SSD"], &rows);
    println!("{table}");
    println!(
        "Paper Table 2: readseq 0.96/1.02, readrandom 1.65/2.30,\n\
         readreverse 1.04/1.12, readrandomwriterandom 1.55/2.20,\n\
         updaterandom 1.53/2.22, mixgraph 1.51/2.09 (NVMe/SSD).\n\
         Shape: SSD gains exceed NVMe gains; readseq ≈ 1.0x; random/mixed win.\n"
    );
    let path = bench::write_results("e3_table2.txt", &table)?;
    println!("written to {}\n", path.display());
    if json {
        json_lines.push_str(&format!(
            "{{\"schema\":\"table2\",\"experiment\":\"e3_table2\",\"workload\":\"geomean\",\"nvme_speedup\":{:.4},\"ssd_speedup\":{:.4}}}\n",
            bench::geometric_mean(&nvme_speedups),
            bench::geometric_mean(&ssd_speedups),
        ));
        let jp = write_json_results("e3_table2.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
    }
    Ok(())
}

/// E4 — Figure 2 timeline.
fn cmd_figure2(cfg: &LoopConfig) -> DynResult {
    println!("## E4: Figure 2 — mixgraph timeline on NVMe\n");
    let trained = trained_model(cfg)?;
    // The paper runs the benchmark 15 times and averages; we run a smaller
    // ensemble at quick scale.
    let repeats = if cfg.eval_ops <= 10_000 { 3 } else { 5 };
    // Ensemble members are independent runs seeded by repeat index; run them
    // concurrently and keep CSV rows grouped by repeat, as sequentially.
    let reps: Vec<usize> = (0..repeats).collect();
    let outcomes = threading::pool_map(&reps, threading::default_workers(), |_, &rep| {
        let mut run_cfg = cfg.clone();
        run_cfg.seed = cfg.seed + rep as u64;
        closed_loop::compare(Workload::MixGraph, DeviceProfile::nvme(), trained, &run_cfg)
    });
    let mut all_rows = Vec::new();
    let mut speedups = Vec::new();
    for (rep, outcome) in outcomes.into_iter().enumerate() {
        let outcome = outcome?;
        speedups.push(outcome.speedup);
        for p in &outcome.timeline {
            all_rows.push(vec![
                rep.to_string(),
                p.t_ms.to_string(),
                format!("{:.0}", p.ops_per_sec),
                p.ra_kb.to_string(),
                format!("{:.0}", p.infer_ns_mean),
            ]);
        }
    }
    let csv = bench::to_csv(
        &["run", "t_ms", "ops_per_sec", "ra_kb", "infer_ns_mean"],
        &all_rows,
    );
    let path = bench::write_results("e4_figure2.csv", &csv)?;
    println!(
        "{} timeline points over {repeats} runs written to {}",
        all_rows.len(),
        path.display()
    );
    println!(
        "mean mixgraph speedup: {:.2}x   [paper: ~1.51x on NVMe over 15 runs]\n\
         Expect readahead-size fluctuations early in each run (cold caches),\n\
         settling as the classifier locks onto the workload.\n",
        bench::geometric_mean(&speedups)
    );
    Ok(())
}

/// E6 — decision-tree comparison.
fn cmd_dtree(cfg: &LoopConfig, json: bool) -> DynResult {
    println!("## E6: decision-tree tuner vs neural network (§4)\n");
    let trained = trained_model(cfg)?;
    let mut rows = Vec::new();
    let mut nn_means = Vec::new();
    let mut dt_means = Vec::new();
    let mut json_lines = String::new();
    for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
        // vanilla / NN / tree triples per workload are independent cells.
        let workloads = Workload::all();
        let triples = threading::pool_map(
            &workloads,
            threading::default_workers(),
            |_, &workload| -> kml_core::Result<(f64, f64)> {
                let vanilla = closed_loop::run_vanilla(workload, device, cfg);
                let (nn, _) = closed_loop::run_kml(workload, device, trained, cfg)?;
                let (dt, _) = closed_loop::run_kml_tree(workload, device, trained, cfg)?;
                Ok((
                    nn.ops_per_sec / vanilla.ops_per_sec,
                    dt.ops_per_sec / vanilla.ops_per_sec,
                ))
            },
        );
        let mut nn_speedups = Vec::new();
        let mut dt_speedups = Vec::new();
        for triple in triples {
            let (nn, dt) = triple?;
            nn_speedups.push(nn);
            dt_speedups.push(dt);
        }
        let nn_mean = bench::geometric_mean(&nn_speedups);
        let dt_mean = bench::geometric_mean(&dt_speedups);
        rows.push(vec![
            device.name.into(),
            format!("{:.2}x", nn_mean),
            format!("{:.2}x", dt_mean),
        ]);
        json_lines.push_str(&format!(
            "{{\"schema\":\"dtree\",\"experiment\":\"e6_dtree\",\"device\":{},\"nn_geomean\":{:.4},\"dtree_geomean\":{:.4},\"tree_training_accuracy\":{:.4}}}\n",
            kml_telemetry::json_str(device.name),
            nn_mean,
            dt_mean,
            trained.tree_training_accuracy,
        ));
        nn_means.push(nn_mean);
        dt_means.push(dt_mean);
    }
    println!(
        "{}",
        bench::render_table(&["device", "NN geomean", "DTree geomean"], &rows)
    );
    println!(
        "tree training accuracy: {:.1}%\n\
         Paper: DT improved SSD 55% / NVMe 26% on average — inferior to the NN.\n",
        trained.tree_training_accuracy * 100.0
    );
    if json {
        let jp = write_json_results("e6_dtree.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
    }
    Ok(())
}

/// E5 — §4 overhead micro-numbers (wall-clock; see also `cargo bench`).
fn cmd_overheads(cfg: &LoopConfig, json: bool) -> DynResult {
    use kml_collect::RingBuffer;
    use kml_core::loss::{CrossEntropyLoss, Loss, TargetRef};
    use kml_core::matrix::Matrix;
    use kml_core::optimizer::Sgd;
    use readahead::FeatureExtractor;

    println!("## E5: KML overheads (§4)\n");
    let trained = trained_model(cfg)?;

    // Data collection: ring push + feature fold, per tracepoint record.
    let (producer, mut consumer) = RingBuffer::with_capacity(1 << 16).split();
    let mut fx = FeatureExtractor::new();
    let record = kernel_sim::TraceRecord {
        kind: kernel_sim::TraceKind::AddToPageCache,
        inode: 3,
        page_offset: 12345,
        time_ns: 0,
    };
    const N: u64 = 2_000_000;
    let t0 = Instant::now();
    for i in 0..N {
        let mut r = record;
        r.page_offset = i;
        producer.push(r);
        if i % 512 == 0 {
            while let Some(rec) = consumer.pop() {
                fx.push(&rec);
            }
        }
    }
    while let Some(rec) = consumer.pop() {
        fx.push(&rec);
    }
    let collect_ns = t0.elapsed().as_nanos() as f64 / N as f64;

    // Inference: one feature vector through the deployed f32 network.
    let mut network = {
        let bytes = kml_core::modelfile::encode(&trained.network)?;
        kml_core::modelfile::decode::<f32>(&bytes)?
    };
    let features = [5_000.0, 3_000.0, 1_800.0, 500.0, 128.0];
    let reps = 20_000;
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        sink = sink.wrapping_add(network.predict(&features)?);
    }
    let infer_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

    // Training iteration: one batch forward+backward+SGD step (f64, as the
    // paper trains in user space).
    let data = readahead::datagen::training_dataset(&cfg.datagen)?;
    let mut train_model = readahead::model::train_network(&data, 1, 7)?;
    let mut sgd = Sgd::paper_defaults();
    let batch: Vec<Vec<f64>> = (0..16)
        .map(|i| data.sample(i % data.len()).0.to_vec())
        .collect();
    let labels: Vec<usize> = (0..16).map(|i| data.sample(i % data.len()).1).collect();
    let input = Matrix::<f64>::from_rows(&batch)?;
    let reps = 5_000;
    let t0 = Instant::now();
    for _ in 0..reps {
        train_model.train_batch(
            &input,
            TargetRef::Classes(&labels),
            &CrossEntropyLoss,
            &mut sgd,
        )?;
    }
    let train_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    let _ = CrossEntropyLoss.tag(); // keep the import honest
    std::hint::black_box(sink);

    // Blocked-GEMM throughput: the 128³ packed f32 kernel in GFLOP/s, the
    // same shape the `kernels` bench gates against its committed floor.
    let gemm_dim = 128usize;
    let square = |seed: u64| -> Result<Matrix<f32>, Box<dyn std::error::Error>> {
        let vals: Vec<f64> = (0..gemm_dim * gemm_dim)
            .map(|i| ((i as u64).wrapping_mul(seed) % 97) as f64 * 0.02 - 0.97)
            .collect();
        Ok(Matrix::from_f64_vec(gemm_dim, gemm_dim, &vals)?)
    };
    let (ga, gb) = (square(37)?, square(53)?);
    let mut gout = Matrix::zeros(gemm_dim, gemm_dim);
    let mut gpack = kml_core::scratch::ScratchArena::new();
    ga.matmul_into_packed(&gb, &mut gout, &mut gpack)?; // warm the arena
    let reps = 50;
    let t0 = Instant::now();
    for _ in 0..reps {
        ga.matmul_into_packed(&gb, &mut gout, &mut gpack)?;
    }
    let gemm_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    let matmul_gflops = 2.0 * (gemm_dim as f64).powi(3) / gemm_ns;
    std::hint::black_box(gout.get(0, 0));

    let rows = vec![
        vec![
            "data collection + normalization".into(),
            format!("{collect_ns:.0} ns/event"),
            "49 ns".into(),
        ],
        vec![
            "inference".into(),
            format!("{infer_ns:.0} ns"),
            "21000 ns".into(),
        ],
        vec![
            "training iteration (batch 16)".into(),
            format!("{train_ns:.0} ns"),
            "51000 ns".into(),
        ],
        vec![
            "blocked matmul 128³ (f32)".into(),
            format!("{matmul_gflops:.2} GFLOP/s"),
            "—".into(),
        ],
        vec![
            "model init memory".into(),
            format!("{} bytes", network.init_memory_bytes()),
            "3916 bytes".into(),
        ],
        vec![
            "inference scratch memory (analytic)".into(),
            format!("{} bytes", network.inference_scratch_bytes()),
            "676 bytes".into(),
        ],
        vec![
            "inference scratch memory (measured arena high-water)".into(),
            format!("{} bytes", network.measured_scratch_bytes()),
            "676 bytes".into(),
        ],
    ];
    let table = bench::render_table(&["metric", "measured", "paper"], &rows);
    println!("{table}");
    println!(
        "Shape: collection ≪ inference < training; model memory ~4 KB.\n\
         (Absolute numbers depend on the host CPU; run `cargo bench -p bench`\n\
         for statistically rigorous versions of the same measurements.)\n"
    );
    let path = bench::write_results("e5_overheads.txt", &table)?;
    println!("written to {}\n", path.display());

    // In-loop self-measurement: the offline numbers above time the
    // primitives in isolation; the telemetry subsystem measures the same
    // stages *inside* a live closed-loop run, per-stage span histograms and
    // all. Both views should agree on the shape (collect ≪ infer ≪ train).
    println!("### E5b: in-loop self-measurement (kml-telemetry spans)\n");
    let run = closed_loop::run_kml_instrumented(
        Workload::ReadRandom,
        DeviceProfile::sata_ssd(),
        trained,
        cfg,
    )?;
    let snap = &run.telemetry;
    println!("{}", snap.render_table());
    if let Some(h) = snap.histogram("readahead.loop.infer_ns") {
        println!(
            "in-loop inference: median {} ns over {} decisions \
             (offline micro-bench above: {:.0} ns)",
            h.p50, h.count, infer_ns
        );
    }
    println!("ring records dropped during run: {}\n", run.ring_dropped);

    if json {
        let mut json_lines = String::new();
        for (metric, value, unit) in [
            ("collect_per_event", collect_ns, "ns"),
            ("inference", infer_ns, "ns"),
            ("train_batch16", train_ns, "ns"),
            ("train_ns_mean", train_ns, "ns"),
            ("matmul_gflops", matmul_gflops, "gflops"),
            (
                "model_init_memory",
                network.init_memory_bytes() as f64,
                "bytes",
            ),
            (
                "inference_scratch_memory",
                network.inference_scratch_bytes() as f64,
                "bytes",
            ),
            (
                "measured_scratch_high_water",
                network.measured_scratch_bytes() as f64,
                "bytes",
            ),
        ] {
            json_lines.push_str(&format!(
                "{{\"schema\":\"overheads\",\"experiment\":\"e5_overheads\",\"metric\":{},\"value\":{:.1},\"unit\":{}}}\n",
                kml_telemetry::json_str(metric),
                value,
                kml_telemetry::json_str(unit),
            ));
        }
        json_lines.push_str(&with_schema(&snap.to_json_lines("e5_inloop"), "overheads"));
        let jp = write_json_results("e5_overheads.jsonl", &json_lines)?;
        println!("json-lines written to {}\n", jp.display());
    }
    Ok(())
}

/// Ablations from DESIGN.md §5 that are cheap enough to run here:
/// feature-window length and activation function.
fn cmd_ablate(cfg: &LoopConfig) -> DynResult {
    use kml_core::dataset::Normalizer;
    use kml_core::loss::CrossEntropyLoss;
    use kml_core::model::ModelBuilder;
    use kml_core::optimizer::Sgd;
    use kml_core::KmlRng;
    use rand::SeedableRng;

    println!("## Ablations (DESIGN.md §5)\n");

    // Window length: collect with different windows, compare NN accuracy.
    println!("### feature-window length\n");
    let mut rows = Vec::new();
    let base = cfg.datagen.window_ns;
    for window_ns in [base / 4, base, base * 4] {
        let mut dcfg = cfg.datagen.clone();
        dcfg.window_ns = window_ns;
        let data = readahead::datagen::training_dataset(&dcfg)?;
        let mut model = readahead::model::train_network(&data, cfg.epochs, 11)?;
        let acc = model.accuracy(&data)?;
        rows.push(vec![
            format!("{:.1} ms", window_ns as f64 / 1e6),
            data.len().to_string(),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    println!(
        "{}",
        bench::render_table(&["window", "samples", "train accuracy"], &rows)
    );

    // Activation: sigmoid (paper) vs relu vs tanh on the same data.
    println!("### activation function\n");
    let data = readahead::datagen::training_dataset(&cfg.datagen)?;
    let mut rows = Vec::new();
    for (name, builder) in [
        (
            "sigmoid (paper)",
            ModelBuilder::new(5)
                .linear(15)
                .sigmoid()
                .linear(10)
                .sigmoid()
                .linear(4),
        ),
        (
            "relu",
            ModelBuilder::new(5)
                .linear(15)
                .relu()
                .linear(10)
                .relu()
                .linear(4),
        ),
        (
            "tanh",
            ModelBuilder::new(5)
                .linear(15)
                .tanh()
                .linear(10)
                .tanh()
                .linear(4),
        ),
    ] {
        let mut model = builder.seed(13).build::<f64>()?;
        model.set_normalizer(Normalizer::fit(data.features())?);
        let mut sgd = Sgd::paper_defaults();
        let mut rng = KmlRng::seed_from_u64(17);
        let mut final_loss = f64::NAN;
        for _ in 0..cfg.epochs {
            final_loss = model.train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)?;
        }
        let acc = model.accuracy(&data)?;
        rows.push(vec![
            name.into(),
            format!("{final_loss:.3}"),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    println!(
        "{}",
        bench::render_table(&["activation", "final loss", "train accuracy"], &rows)
    );
    // Hysteresis: the two-window agreement requirement before actuating.
    println!("### actuation hysteresis\n");
    let trained = trained_model(cfg)?;
    let mut rows = Vec::new();
    for workload in [Workload::ReadRandom, Workload::MixGraph] {
        let vanilla =
            closed_loop::run_vanilla(workload, DeviceProfile::sata_ssd(), &trained_cfg(cfg));
        let (with, _) = closed_loop::run_kml(workload, DeviceProfile::sata_ssd(), trained, cfg)?;
        let (without, _) =
            closed_loop::run_kml_no_hysteresis(workload, DeviceProfile::sata_ssd(), trained, cfg)?;
        rows.push(vec![
            workload.name().into(),
            format!("{:.2}x", with.ops_per_sec / vanilla.ops_per_sec),
            format!("{:.2}x", without.ops_per_sec / vanilla.ops_per_sec),
        ]);
    }
    println!(
        "{}",
        bench::render_table(&["workload (ssd)", "with hysteresis", "without"], &rows)
    );
    println!("(dtype and ring-buffer ablations: `cargo bench -p bench --bench ablate`)\n");
    Ok(())
}

/// The loop config used for the hysteresis baseline (kept identical to the
/// tuned runs).
fn trained_cfg(cfg: &LoopConfig) -> LoopConfig {
    cfg.clone()
}
