//! The assembled storage-stack simulator.
//!
//! [`Sim`] wires the page cache, readahead state machines, block device, and
//! tracepoints into the closed loop of the paper's Figure 1: workloads call
//! [`Sim::read`]/[`Sim::write`]; misses run the readahead heuristic and
//! charge device time; inserted pages fire `add_to_page_cache`; dirty
//! pages written back fire `writeback_dirty_page`; and the KML application
//! retunes [`Sim::set_ra_kb`] based on what it observes — which changes
//! every subsequent cost.
//!
//! Time is a simulated nanosecond clock advanced by each operation, so
//! throughput = ops / simulated seconds is deterministic.

use crate::cache::{CacheStats, PageCache};
use crate::device::{BlockDevice, DeviceProfile, DeviceStats};
use crate::fault::{FaultPlan, FaultStats, IoResult};
use crate::ra_kb_to_pages;
use crate::readahead::{RaAction, RaState};
use crate::trace::{TraceKind, TraceRecord, TraceSink};
use kml_collect::ringbuf::Producer;
use kml_telemetry::{Counter, Gauge, Histogram, Registry};

/// Telemetry handles for one simulator instance. Each [`Sim`] owns its own
/// set (default no-op) so parallel sims in tests never share counters;
/// [`Sim::attach_telemetry`] binds them to a caller-provided registry.
#[derive(Debug)]
struct SimTelemetry {
    registry: Registry,
    cache_hits: Counter,
    cache_misses: Counter,
    read_latency_ns: Histogram,
    write_latency_ns: Histogram,
    read_request_bytes: Histogram,
    write_request_bytes: Histogram,
    dirty_pages: Gauge,
}

impl SimTelemetry {
    fn noop() -> Self {
        SimTelemetry {
            registry: Registry::noop(),
            cache_hits: Counter::noop(),
            cache_misses: Counter::noop(),
            read_latency_ns: Histogram::noop(),
            write_latency_ns: Histogram::noop(),
            read_request_bytes: Histogram::noop(),
            write_request_bytes: Histogram::noop(),
            dirty_pages: Gauge::noop(),
        }
    }

    fn bind(registry: &Registry) -> Self {
        SimTelemetry {
            registry: registry.clone(),
            cache_hits: registry.counter("sim.cache.hit_total"),
            cache_misses: registry.counter("sim.cache.miss_total"),
            read_latency_ns: registry.histogram("sim.device.read_latency_ns"),
            write_latency_ns: registry.histogram("sim.device.write_latency_ns"),
            read_request_bytes: registry.histogram("sim.device.read_request_bytes"),
            write_request_bytes: registry.histogram("sim.device.write_request_bytes"),
            dirty_pages: registry.gauge("sim.cache.dirty_pages"),
        }
    }
}

/// Handle to a simulated file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(usize);

/// `posix_fadvise`/`madvise`-style access hints (see [`Sim::fadvise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential access: double the readahead window.
    Sequential,
    /// Expect random access: disable readahead (one page).
    Random,
    /// No special pattern: restore the default window.
    Normal,
    /// Prefetch this range now.
    WillNeed {
        /// First page of the range.
        page: u64,
        /// Pages in the range.
        npages: u64,
    },
    /// Drop this range from the cache (flushing dirty pages).
    DontNeed {
        /// First page of the range.
        page: u64,
        /// Pages in the range.
        npages: u64,
    },
}

#[derive(Debug)]
struct FileState {
    inode: u64,
    pages: u64,
    ra: RaState,
}

/// Configuration of a simulation instance.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Block-device timing model.
    pub device: DeviceProfile,
    /// Page-cache capacity in 4 KiB pages.
    pub cache_pages: usize,
    /// Default per-file readahead in KiB (Linux ships 128).
    pub default_ra_kb: u32,
    /// Cost of serving one page from the cache, ns.
    pub cache_hit_ns: u64,
    /// Dirty fraction of the cache that triggers writeback.
    pub dirty_threshold: f64,
    /// Pages flushed per writeback round.
    pub writeback_batch: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 16_384, // 64 MiB
            default_ra_kb: 128,
            cache_hit_ns: 400,
            dirty_threshold: 0.25,
            writeback_batch: 64,
        }
    }
}

/// Aggregated statistics of a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Page-cache counters.
    pub cache: CacheStats,
    /// Device counters.
    pub device: DeviceStats,
    /// Logical read requests served.
    pub logical_reads: u64,
    /// Logical write requests served.
    pub logical_writes: u64,
}

/// The simulated storage stack.
#[derive(Debug)]
pub struct Sim {
    cfg: SimConfig,
    clock_ns: u64,
    cache: PageCache,
    device: BlockDevice,
    files: Vec<FileState>,
    trace: TraceSink,
    next_inode: u64,
    logical_reads: u64,
    logical_writes: u64,
    telemetry: SimTelemetry,
    /// Logical operations left before a cache-pressure squeeze lifts
    /// (0 = not squeezed).
    squeeze_remaining: u64,
}

impl Sim {
    /// Creates a simulator from the configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Sim {
            cfg,
            clock_ns: 0,
            cache: PageCache::new(cfg.cache_pages),
            device: BlockDevice::new(cfg.device),
            files: Vec::new(),
            trace: TraceSink::disabled(),
            next_inode: 1,
            logical_reads: 0,
            logical_writes: 0,
            telemetry: SimTelemetry::noop(),
            squeeze_remaining: 0,
        }
    }

    /// Attaches (or with `None`, detaches) a seeded fault schedule. Device
    /// requests then may fail, tear, spike, or stall, and logical operations
    /// may squeeze the page cache. Detaching also lifts any active squeeze.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        if plan.is_none() && self.squeeze_remaining > 0 {
            self.squeeze_remaining = 0;
            self.cache.set_capacity(self.cfg.cache_pages);
        }
        self.device.set_fault_plan(plan);
    }

    /// Counters of faults injected so far (zero without a plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.device.fault_stats()
    }

    /// Pages currently resident in the cache (DST invariant checks).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Dirty pages currently resident (DST invariant checks).
    pub fn cache_dirty(&self) -> usize {
        self.cache.dirty_count()
    }

    /// Current cache capacity — the configured size, or less during a
    /// fault-injected squeeze (DST invariant checks).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Attaches a KML ring-buffer producer that will receive tracepoint
    /// records (the paper's data-collection hooks).
    pub fn attach_trace(&mut self, producer: Producer<TraceRecord>) {
        self.trace = TraceSink::new(producer);
    }

    /// Tracepoint records emitted into the attached ring so far (0 when no
    /// ring is attached). With a drained consumer this must reconcile
    /// exactly: emitted = consumed + dropped.
    pub fn trace_emitted(&self) -> u64 {
        self.trace.emitted()
    }

    /// Binds this simulator's metrics (`sim.cache.*`, `sim.device.*`) to a
    /// telemetry registry. Until called, all recording is no-op.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = SimTelemetry::bind(registry);
    }

    /// The registry this simulator records into (a no-op registry until
    /// [`Sim::attach_telemetry`] is called). Components layered on top of
    /// the sim register their own metrics here so one run shares one scope.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry.registry
    }

    /// Creates a file of `pages` 4 KiB pages; returns its handle.
    pub fn create_file(&mut self, pages: u64) -> FileId {
        let inode = self.next_inode;
        self.next_inode += 1;
        self.files.push(FileState {
            inode,
            pages,
            ra: RaState::new(ra_kb_to_pages(self.cfg.default_ra_kb)),
        });
        FileId(self.files.len() - 1)
    }

    /// Size of a file in pages.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn file_pages(&self, f: FileId) -> u64 {
        self.files[f.0].pages
    }

    /// Inode number of a file (matches tracepoint records).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn file_inode(&self, f: FileId) -> u64 {
        self.files[f.0].inode
    }

    /// Current simulated time, ns since start.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the clock by pure compute time (workload think time).
    pub fn advance(&mut self, ns: u64) {
        self.clock_ns += ns;
    }

    /// Sets one file's readahead limit in KiB (`ra_pages` in struct file).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn set_file_ra_kb(&mut self, f: FileId, kb: u32) {
        self.files[f.0].ra.set_ra_pages(ra_kb_to_pages(kb));
    }

    /// Sets every file's readahead limit (the block-device ioctl analogue).
    pub fn set_ra_kb(&mut self, kb: u32) {
        let pages = ra_kb_to_pages(kb);
        for file in &mut self.files {
            file.ra.set_ra_pages(pages);
        }
    }

    /// Current readahead limit of a file, in KiB.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn file_ra_kb(&self, f: FileId) -> u32 {
        (self.files[f.0].ra.ra_pages() * crate::PAGE_SIZE / 1024) as u32
    }

    /// Applies a `posix_fadvise`/`madvise`-style hint to a file — the manual
    /// tuning interface the paper's KML replaces ("hints that users can
    /// provide through system calls such as fadvise and madvise"):
    ///
    /// - [`Advice::Sequential`] doubles the file's readahead limit (as
    ///   `POSIX_FADV_SEQUENTIAL` does in Linux).
    /// - [`Advice::Random`] collapses it to a single page (readahead off).
    /// - [`Advice::Normal`] restores the device default.
    /// - [`Advice::WillNeed`] prefetches the given range immediately.
    /// - [`Advice::DontNeed`] drops the range's clean pages from the cache.
    ///
    /// Returns the cost in ns (nonzero only for `WillNeed`/`DontNeed`), or
    /// the [`crate::IoError`] if an injected fault failed the prefetch or
    /// the dirty flush (the clock still advances by the time consumed).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn fadvise(&mut self, f: FileId, advice: Advice) -> IoResult<u64> {
        let mut cost = 0;
        let res = self.fadvise_inner(f, advice, &mut cost);
        self.clock_ns += cost;
        res.map(|()| cost)
    }

    fn fadvise_inner(&mut self, f: FileId, advice: Advice, cost: &mut u64) -> IoResult<()> {
        let default_pages = ra_kb_to_pages(self.cfg.default_ra_kb);
        match advice {
            Advice::Sequential => {
                let cur = self.files[f.0].ra.ra_pages();
                self.files[f.0].ra.set_ra_pages(cur * 2);
            }
            Advice::Random => self.files[f.0].ra.set_ra_pages(1),
            Advice::Normal => self.files[f.0].ra.set_ra_pages(default_pages),
            Advice::WillNeed { page, npages } => {
                let end = (page + npages).min(self.files[f.0].pages);
                if end > page {
                    self.fetch(f, page, end - page, u64::MAX, cost)?;
                }
            }
            Advice::DontNeed { page, npages } => {
                let inode = self.files[f.0].inode;
                let end = (page + npages).min(self.files[f.0].pages);
                // Flush dirty pages in range first, then forget them.
                let mut dirty_in_range = Vec::new();
                for p in page..end {
                    if self.cache.contains((inode, p)) && self.cache.forget((inode, p)) {
                        dirty_in_range.push((inode, p));
                    }
                }
                self.charge_runs(&dirty_in_range, cost)?;
                for &(ino, p) in &dirty_in_range {
                    self.emit(TraceKind::WritebackDirtyPage, ino, p);
                }
            }
        }
        Ok(())
    }

    /// Reads `npages` starting at `page`; returns the operation's cost in ns
    /// (the clock advances by the same amount). Reads past EOF are clamped.
    ///
    /// With a fault plan attached the read may fail with [`crate::IoError`];
    /// the clock still advances by the time the failed attempt consumed, and
    /// pages fetched before the failure stay cached. Without a plan the call
    /// never fails.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn read(&mut self, f: FileId, page: u64, npages: u64) -> IoResult<u64> {
        let mut cost = 0;
        let res = self.read_inner(f, page, npages, &mut cost);
        self.clock_ns += cost;
        res.map(|()| cost)
    }

    fn read_inner(&mut self, f: FileId, page: u64, npages: u64, cost: &mut u64) -> IoResult<()> {
        self.logical_reads += 1;
        self.apply_pressure(cost)?;
        let file_pages = self.files[f.0].pages;
        let end = (page + npages).min(file_pages);
        for p in page..end {
            let inode = self.files[f.0].inode;
            // touch() counts the hit/miss and promotes on hit.
            let cached = self.cache.touch((inode, p));
            if cached {
                self.telemetry.cache_hits.inc();
            } else {
                self.telemetry.cache_misses.inc();
            }
            let action = self.files[f.0].ra.on_access(p, npages, cached, file_pages);
            match action {
                RaAction::None => {}
                RaAction::Sync { start, len } | RaAction::Async { start, len } => {
                    self.fetch(f, start, len, p, cost)?;
                }
            }
            // Safety net: if readahead declined (EOF edge) the page still
            // needs a single-page demand fetch.
            if !cached && !self.cache.contains((inode, p)) {
                self.fetch(f, p, 1, p, cost)?;
            }
            *cost += self.cfg.cache_hit_ns;
        }
        Ok(())
    }

    /// A page-fault-driven access, as an `mmap`ed file generates (paper §5:
    /// KML "also intercepts mmap-based file accesses"): the fault touches
    /// exactly one page, so the readahead heuristic sees `req_len == 1`
    /// regardless of how much the application will eventually read.
    /// Returns the fault's cost in ns (or the injected I/O error).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn mmap_read(&mut self, f: FileId, page: u64) -> IoResult<u64> {
        self.read(f, page, 1)
    }

    /// Writes `npages` starting at `page` (full-page buffered writes:
    /// no read-modify-write); returns the cost in ns. May trigger
    /// threshold writeback.
    ///
    /// With a fault plan attached the operation may fail with
    /// [`crate::IoError`] when an eviction or threshold writeback hits an
    /// injected device error. Written pages stay dirty in the cache; pages
    /// whose threshold writeback failed are re-marked dirty, so no resident
    /// data is silently lost (the analogue of `AS_EIO` + redirty in Linux).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle from this simulator.
    pub fn write(&mut self, f: FileId, page: u64, npages: u64) -> IoResult<u64> {
        let mut cost = 0;
        let res = self.write_inner(f, page, npages, &mut cost);
        self.telemetry
            .dirty_pages
            .set(self.cache.dirty_count() as u64);
        self.clock_ns += cost;
        res.map(|()| cost)
    }

    fn write_inner(&mut self, f: FileId, page: u64, npages: u64, cost: &mut u64) -> IoResult<()> {
        self.logical_writes += 1;
        self.apply_pressure(cost)?;
        let inode = self.files[f.0].inode;
        let file_pages = self.files[f.0].pages;
        let end = (page + npages).min(file_pages);
        for p in page..end {
            let was_cached = self.cache.contains((inode, p));
            // insert() promotes existing pages and evicts for new ones.
            let evicted = self.cache.insert((inode, p), false);
            if !was_cached {
                self.emit(TraceKind::AddToPageCache, inode, p);
            }
            // The logical write itself always lands in the cache; only the
            // eviction flush can fail, after the new page is accounted for.
            self.cache.mark_dirty((inode, p));
            self.flush_victims(&evicted, cost)?;
            *cost += self.cfg.cache_hit_ns;
        }
        // Threshold writeback, like the flusher threads kicking in.
        let threshold = (self.cfg.dirty_threshold * self.cfg.cache_pages as f64) as usize;
        if self.cache.dirty_count() > threshold {
            let flushed = self.cache.writeback(self.cfg.writeback_batch);
            if let Err(e) = self.charge_runs(&flushed, cost) {
                // Failed flush: conservatively re-dirty the whole batch so
                // nothing resident is silently dropped; it will be retried.
                for &k in &flushed {
                    self.cache.mark_dirty(k);
                }
                return Err(e);
            }
            for &(ino, p) in &flushed {
                self.emit(TraceKind::WritebackDirtyPage, ino, p);
            }
        }
        Ok(())
    }

    /// Flushes every dirty page to the device (`fsync`-ish; SSTable builds
    /// call this so table data reaches the device before being read back).
    ///
    /// On an injected write error the un-flushed pages are re-marked dirty
    /// and the error is returned — like `fsync` reporting `EIO` with the
    /// data still pending.
    pub fn sync(&mut self) -> IoResult<()> {
        let mut cost = 0;
        let flushed = self.cache.writeback(usize::MAX);
        let res = self.charge_runs(&flushed, &mut cost);
        match res {
            Ok(()) => {
                for &(ino, p) in &flushed {
                    self.emit(TraceKind::WritebackDirtyPage, ino, p);
                }
            }
            Err(_) => {
                for &k in &flushed {
                    self.cache.mark_dirty(k);
                }
            }
        }
        self.telemetry
            .dirty_pages
            .set(self.cache.dirty_count() as u64);
        self.clock_ns += cost;
        res
    }

    /// Drops the whole page cache (the paper clears caches between runs).
    /// Dirty pages are flushed first (`sync; echo 3 > drop_caches`).
    ///
    /// If the flush hits an injected write error the cache is NOT cleared
    /// (the dirty pages are re-marked and kept) and the error is returned.
    pub fn drop_caches(&mut self) -> IoResult<()> {
        let mut cost = 0;
        let flushed = self.cache.writeback(usize::MAX);
        let res = self.charge_runs(&flushed, &mut cost);
        self.clock_ns += cost;
        match res {
            Ok(()) => {
                self.cache.clear();
                self.telemetry.dirty_pages.set(0);
                Ok(())
            }
            Err(e) => {
                for &k in &flushed {
                    self.cache.mark_dirty(k);
                }
                self.telemetry
                    .dirty_pages
                    .set(self.cache.dirty_count() as u64);
                Err(e)
            }
        }
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> SimStats {
        SimStats {
            cache: self.cache.stats(),
            device: self.device.stats(),
            logical_reads: self.logical_reads,
            logical_writes: self.logical_writes,
        }
    }

    /// Resets statistics (not contents, not the clock).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        self.device.reset();
        self.logical_reads = 0;
        self.logical_writes = 0;
    }

    /// Consults the fault schedule for cache-pressure squeezes; called once
    /// per logical operation. No-op without an attached plan.
    fn apply_pressure(&mut self, cost: &mut u64) -> IoResult<()> {
        if self.squeeze_remaining > 0 {
            self.squeeze_remaining -= 1;
            if self.squeeze_remaining == 0 {
                // Pressure lifted: the cache may fill back up.
                self.cache.set_capacity(self.cfg.cache_pages);
            }
            return Ok(());
        }
        let Some(sq) = self.device.fault_plan_mut().and_then(|p| p.on_logical_op()) else {
            return Ok(());
        };
        let cap = ((self.cfg.cache_pages as f64 * sq.frac) as usize).max(1);
        let evicted = self.cache.set_capacity(cap);
        self.squeeze_remaining = sq.ops;
        self.flush_victims(&evicted, cost)
    }

    /// Fetches the uncached pages of `[start, start+len)` from the device,
    /// inserting them into the cache. `demand` is the page the application
    /// actually asked for (inserted non-speculative). On an injected fault
    /// the pages of already-completed runs stay cached and `cost` holds the
    /// time consumed so far (including the failed attempt).
    fn fetch(
        &mut self,
        f: FileId,
        start: u64,
        len: u64,
        demand: u64,
        cost: &mut u64,
    ) -> IoResult<()> {
        let inode = self.files[f.0].inode;
        let file_pages = self.files[f.0].pages;
        let end = (start + len).min(file_pages);
        // Group uncached pages into contiguous runs: each run is one
        // device request (bigger readahead ⇒ fewer, larger requests).
        let mut run_start: Option<u64> = None;
        let mut run_len = 0;
        for p in start..=end {
            let uncached = p < end && !self.cache.contains((inode, p));
            if uncached {
                if run_start.is_none() {
                    run_start = Some(p);
                    run_len = 0;
                }
                run_len += 1;
            } else if let Some(rs) = run_start.take() {
                let service_ns = match self.device.read(inode, rs, run_len) {
                    Ok(ns) => ns,
                    Err(e) => {
                        *cost += e.ns;
                        return Err(e);
                    }
                };
                self.telemetry.read_latency_ns.record(service_ns);
                self.telemetry
                    .read_request_bytes
                    .record(run_len * crate::PAGE_SIZE);
                *cost += service_ns;
                for q in rs..rs + run_len {
                    let evicted = self.cache.insert((inode, q), q != demand);
                    self.flush_victims(&evicted, cost)?;
                    self.emit(TraceKind::AddToPageCache, inode, q);
                }
                run_len = 0;
            }
        }
        Ok(())
    }

    /// Writes dirty eviction victims back to the device. On an injected
    /// write error the victims are already evicted — the loss is *reported*
    /// through the error, never silent.
    fn flush_victims(&mut self, victims: &[((u64, u64), bool)], cost: &mut u64) -> IoResult<()> {
        let dirty: Vec<(u64, u64)> = victims
            .iter()
            .filter(|(_, dirty)| *dirty)
            .map(|(k, _)| *k)
            .collect();
        self.charge_runs(&dirty, cost)?;
        for &(ino, p) in &dirty {
            self.emit(TraceKind::WritebackDirtyPage, ino, p);
        }
        Ok(())
    }

    /// Charges device write time for a set of pages, merging contiguous
    /// same-inode pages into single requests. Stops at the first failed
    /// request; `cost` accumulates time consumed by completed requests and
    /// the failed attempt.
    fn charge_runs(&mut self, pages: &[(u64, u64)], cost: &mut u64) -> IoResult<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let mut sorted = pages.to_vec();
        sorted.sort_unstable();
        let (mut run_inode, mut run_start) = sorted[0];
        let mut run_len = 1;
        for &(ino, p) in &sorted[1..] {
            if ino == run_inode && p == run_start + run_len {
                run_len += 1;
            } else {
                self.charge_write(run_inode, run_start, run_len, cost)?;
                run_inode = ino;
                run_start = p;
                run_len = 1;
            }
        }
        self.charge_write(run_inode, run_start, run_len, cost)
    }

    /// One merged device write request, recorded in telemetry.
    fn charge_write(
        &mut self,
        inode: u64,
        start: u64,
        npages: u64,
        cost: &mut u64,
    ) -> IoResult<()> {
        match self.device.write(inode, start, npages) {
            Ok(service_ns) => {
                self.telemetry.write_latency_ns.record(service_ns);
                self.telemetry
                    .write_request_bytes
                    .record(npages * crate::PAGE_SIZE);
                *cost += service_ns;
                Ok(())
            }
            Err(e) => {
                *cost += e.ns;
                Err(e)
            }
        }
    }

    fn emit(&mut self, kind: TraceKind, inode: u64, page_offset: u64) {
        let time_ns = self.clock_ns;
        self.trace.emit(TraceRecord {
            kind,
            inode,
            page_offset,
            time_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kml_collect::RingBuffer;

    fn small_sim(device: DeviceProfile) -> Sim {
        Sim::new(SimConfig {
            device,
            cache_pages: 256,
            ..SimConfig::default()
        })
    }

    #[test]
    fn warm_reads_cost_cache_hits_only() {
        let mut sim = small_sim(DeviceProfile::nvme());
        let f = sim.create_file(128);
        sim.read(f, 0, 64).unwrap();
        let warm = sim.read(f, 0, 64).unwrap();
        assert_eq!(warm, 64 * sim.cfg.cache_hit_ns);
    }

    #[test]
    fn sequential_read_batches_device_requests() {
        let mut sim = small_sim(DeviceProfile::sata_ssd());
        let f = sim.create_file(4096);
        for chunk in 0..32 {
            sim.read(f, chunk * 8, 8).unwrap(); // a 32 KiB-block sequential scan
        }
        let stats = sim.stats();
        // 256 pages read but far fewer device requests thanks to readahead.
        assert!(stats.device.pages_read >= 256);
        assert!(
            stats.device.read_requests < 32,
            "requests: {}",
            stats.device.read_requests
        );
    }

    #[test]
    fn larger_readahead_speeds_sequential_scans() {
        let mut costs = Vec::new();
        for ra in [8u32, 128, 1024] {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::sata_ssd(),
                cache_pages: 8192,
                default_ra_kb: ra,
                ..SimConfig::default()
            });
            let f = sim.create_file(4096);
            let mut cost = 0;
            for page in 0..4096 {
                cost += sim.read(f, page, 1).unwrap();
            }
            costs.push(cost);
        }
        assert!(
            costs[0] > costs[1] && costs[1] > costs[2],
            "sequential scan costs should fall with readahead: {costs:?}"
        );
    }

    #[test]
    fn smaller_readahead_speeds_random_block_reads() {
        let mut costs = Vec::new();
        for ra in [16u32, 128, 1024] {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::sata_ssd(),
                cache_pages: 1024,
                default_ra_kb: ra,
                ..SimConfig::default()
            });
            let f = sim.create_file(1 << 20); // 4 GiB: cache can't help
            let mut cost = 0;
            let mut x = 12345u64;
            for _ in 0..500 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let block = (x >> 20) % ((1 << 20) / 4);
                cost += sim.read(f, block * 4, 4).unwrap(); // 16 KiB block read
            }
            costs.push(cost);
        }
        assert!(
            costs[0] < costs[1] && costs[1] < costs[2],
            "random block reads should slow down with readahead: {costs:?}"
        );
    }

    #[test]
    fn wasted_prefetch_visible_under_oversized_readahead() {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 512,
            default_ra_kb: 1024,
            ..SimConfig::default()
        });
        let f = sim.create_file(1 << 18);
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sim.read(f, (x >> 16) % (1 << 18), 1).unwrap();
        }
        assert!(
            sim.stats().cache.wasted_prefetch > 1000,
            "wasted: {}",
            sim.stats().cache.wasted_prefetch
        );
    }

    #[test]
    fn writes_dirty_pages_and_threshold_writeback_fires() {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 64,
            dirty_threshold: 0.25,
            writeback_batch: 8,
            ..SimConfig::default()
        });
        let f = sim.create_file(4096);
        for p in 0..40 {
            sim.write(f, p, 1).unwrap();
        }
        let stats = sim.stats();
        assert!(stats.cache.writebacks > 0, "no writeback happened");
        assert!(stats.device.pages_written > 0);
    }

    #[test]
    fn dirty_eviction_charges_device_write() {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 16,
            dirty_threshold: 0.99, // keep threshold writeback out of the way
            ..SimConfig::default()
        });
        let f = sim.create_file(4096);
        for p in 0..16 {
            sim.write(f, p, 1).unwrap();
        }
        // Reading far away evicts the dirty pages.
        sim.read(f, 2000, 16).unwrap();
        assert!(sim.stats().device.pages_written > 0);
    }

    #[test]
    fn drop_caches_forces_cold_reads() {
        let mut sim = small_sim(DeviceProfile::nvme());
        let f = sim.create_file(64);
        sim.read(f, 0, 32).unwrap();
        sim.drop_caches().unwrap();
        let before = sim.stats().device.pages_read;
        sim.read(f, 0, 32).unwrap();
        assert!(sim.stats().device.pages_read > before);
    }

    #[test]
    fn tracepoints_record_inode_offset_time() {
        let (p, mut c) = RingBuffer::with_capacity(4096).split();
        let mut sim = small_sim(DeviceProfile::nvme());
        sim.attach_trace(p);
        let f = sim.create_file(128);
        let inode = sim.file_inode(f);
        sim.read(f, 0, 8).unwrap();
        sim.write(f, 100, 1).unwrap();
        let records: Vec<TraceRecord> = c.drain().collect();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.inode == inode));
        assert!(records.iter().any(|r| r.kind == TraceKind::AddToPageCache));
        // Timestamps are monotone non-decreasing.
        assert!(records.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
    }

    #[test]
    fn set_ra_kb_changes_file_limits() {
        let mut sim = small_sim(DeviceProfile::nvme());
        let a = sim.create_file(64);
        let b = sim.create_file(64);
        sim.set_file_ra_kb(a, 8);
        assert_eq!(sim.file_ra_kb(a), 8);
        assert_eq!(sim.file_ra_kb(b), 128);
        sim.set_ra_kb(512);
        assert_eq!(sim.file_ra_kb(a), 512);
        assert_eq!(sim.file_ra_kb(b), 512);
    }

    #[test]
    fn reads_past_eof_are_clamped() {
        let mut sim = small_sim(DeviceProfile::nvme());
        let f = sim.create_file(10);
        let cost = sim.read(f, 8, 10).unwrap(); // only pages 8, 9 exist
        assert!(cost > 0);
        let stats = sim.stats();
        assert!(stats.device.pages_read <= 10);
    }

    #[test]
    fn clock_advances_with_every_operation() {
        let mut sim = small_sim(DeviceProfile::sata_ssd());
        let f = sim.create_file(128);
        let t0 = sim.now_ns();
        sim.read(f, 0, 8).unwrap();
        let t1 = sim.now_ns();
        assert!(t1 > t0);
        sim.advance(1_000_000);
        assert_eq!(sim.now_ns(), t1 + 1_000_000);
    }

    #[test]
    fn mmap_faults_drive_readahead_like_single_page_reads() {
        let mut sim = small_sim(DeviceProfile::sata_ssd());
        let f = sim.create_file(4096);
        // Sequential faulting builds a readahead stream: far fewer device
        // requests than pages touched.
        for p in 0..512 {
            sim.mmap_read(f, p).unwrap();
        }
        let stats = sim.stats();
        assert!(stats.device.pages_read >= 512);
        assert!(
            stats.device.read_requests < 64,
            "requests: {}",
            stats.device.read_requests
        );
        // Faults fire tracepoints like any other access path.
        assert!(stats.cache.insertions >= 512);
    }

    #[test]
    fn fadvise_sequential_and_random_retune_windows() {
        let mut sim = small_sim(DeviceProfile::nvme());
        let f = sim.create_file(1 << 16);
        assert_eq!(sim.file_ra_kb(f), 128);
        sim.fadvise(f, Advice::Sequential).unwrap();
        assert_eq!(sim.file_ra_kb(f), 256);
        sim.fadvise(f, Advice::Random).unwrap();
        assert_eq!(sim.file_ra_kb(f), 4); // one page
        sim.fadvise(f, Advice::Normal).unwrap();
        assert_eq!(sim.file_ra_kb(f), 128);
    }

    #[test]
    fn fadvise_willneed_prefetches_range() {
        let mut sim = small_sim(DeviceProfile::sata_ssd());
        let f = sim.create_file(256);
        let cost = sim
            .fadvise(
                f,
                Advice::WillNeed {
                    page: 0,
                    npages: 64,
                },
            )
            .unwrap();
        assert!(cost > 0);
        // A subsequent read is all cache hits.
        let warm = sim.read(f, 0, 64).unwrap();
        assert_eq!(warm, 64 * sim.cfg.cache_hit_ns);
    }

    #[test]
    fn fadvise_dontneed_drops_and_flushes() {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 256,
            dirty_threshold: 0.99,
            ..SimConfig::default()
        });
        let f = sim.create_file(256);
        sim.read(f, 0, 16).unwrap();
        sim.write(f, 0, 4).unwrap(); // dirty the head of the range
        let before_writes = sim.stats().device.pages_written;
        let cost = sim
            .fadvise(
                f,
                Advice::DontNeed {
                    page: 0,
                    npages: 16,
                },
            )
            .unwrap();
        assert!(cost > 0, "dirty flush must cost device time");
        assert!(sim.stats().device.pages_written > before_writes);
        // The range is cold again.
        let before_reads = sim.stats().device.pages_read;
        sim.read(f, 0, 4).unwrap();
        assert!(sim.stats().device.pages_read > before_reads);
    }

    #[test]
    fn telemetry_mirrors_sim_stats() {
        let reg = Registry::new();
        let mut sim = small_sim(DeviceProfile::sata_ssd());
        sim.attach_telemetry(&reg);
        let f = sim.create_file(512);
        sim.read(f, 0, 64).unwrap(); // cold
        sim.read(f, 0, 64).unwrap(); // warm: pure hits
        sim.write(f, 100, 8).unwrap();
        sim.sync().unwrap();
        let stats = sim.stats();
        if reg.is_enabled() {
            let snap = reg.snapshot();
            assert_eq!(snap.counter("sim.cache.hit_total"), Some(stats.cache.hits));
            assert_eq!(
                snap.counter("sim.cache.miss_total"),
                Some(stats.cache.misses)
            );
            let rd = snap.histogram("sim.device.read_latency_ns").unwrap();
            assert_eq!(rd.count, stats.device.read_requests);
            let wr = snap.histogram("sim.device.write_latency_ns").unwrap();
            assert_eq!(wr.count, stats.device.write_requests);
            // sync() flushed everything.
            assert_eq!(snap.gauge("sim.cache.dirty_pages"), Some(0));
            let bytes = snap.histogram("sim.device.read_request_bytes").unwrap();
            assert_eq!(bytes.sum, stats.device.pages_read * crate::PAGE_SIZE);
        }
    }

    #[test]
    fn detached_sim_records_nothing() {
        let mut sim = small_sim(DeviceProfile::nvme());
        let f = sim.create_file(64);
        sim.read(f, 0, 32).unwrap();
        assert!(sim.telemetry().snapshot().is_empty());
    }

    #[test]
    fn fadvise_random_beats_default_for_random_block_reads() {
        // The manual-hint baseline the paper's KML automates: a programmer
        // who knows the workload is random can fadvise(RANDOM) and get much
        // of the benefit — without adaptivity when the workload changes.
        let run = |hint: bool| {
            let mut sim = Sim::new(SimConfig {
                device: DeviceProfile::sata_ssd(),
                cache_pages: 1024,
                ..SimConfig::default()
            });
            let f = sim.create_file(1 << 20);
            if hint {
                sim.fadvise(f, Advice::Random).unwrap();
            }
            let t0 = sim.now_ns();
            let mut x = 12345u64;
            for _ in 0..400 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.read(f, ((x >> 20) % ((1 << 20) / 4)) * 4, 4).unwrap();
            }
            sim.now_ns() - t0
        };
        let unhinted = run(false);
        let hinted = run(true);
        assert!(
            hinted < unhinted,
            "fadvise(RANDOM) {hinted} should beat default {unhinted}"
        );
    }

    #[test]
    fn injected_read_error_surfaces_and_clock_still_advances() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut sim = small_sim(DeviceProfile::nvme());
        sim.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 2,
            read_error: 1.0,
            ..FaultConfig::off()
        })));
        let f = sim.create_file(128);
        let t0 = sim.now_ns();
        let err = sim.read(f, 0, 8).unwrap_err();
        assert!(sim.now_ns() > t0, "failed attempt must consume time");
        assert_eq!(err.completed, 0);
        assert!(sim.fault_stats().read_errors >= 1);
        // Detach the plan: the same read now succeeds.
        sim.set_fault_plan(None);
        sim.read(f, 0, 8).unwrap();
    }

    #[test]
    fn failed_sync_keeps_pages_dirty_for_retry() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 256,
            dirty_threshold: 0.99,
            ..SimConfig::default()
        });
        let f = sim.create_file(256);
        sim.write(f, 0, 8).unwrap();
        assert_eq!(sim.cache_dirty(), 8);
        sim.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 9,
            write_error: 1.0,
            ..FaultConfig::off()
        })));
        sim.sync().unwrap_err();
        // Nothing silently lost: the batch is dirty again.
        assert_eq!(sim.cache_dirty(), 8);
        sim.set_fault_plan(None);
        sim.sync().unwrap();
        assert_eq!(sim.cache_dirty(), 0);
        assert_eq!(sim.stats().device.pages_written, 8);
    }

    #[test]
    fn cache_squeeze_shrinks_then_lifts() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 128,
            ..SimConfig::default()
        });
        let f = sim.create_file(4096);
        sim.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 1,
            cache_squeeze: 1.0, // squeeze on the first logical op
            squeeze_frac: 0.25,
            squeeze_ops: 3,
            ..FaultConfig::off()
        })));
        sim.read(f, 0, 1).unwrap();
        assert_eq!(sim.cache_capacity(), 32);
        assert!(sim.cache_len() <= 32);
        // After squeeze_ops more operations the pressure lifts. Detach the
        // plan first so no *new* squeeze starts.
        sim.set_fault_plan(None);
        assert_eq!(sim.cache_capacity(), 128);
    }

    #[test]
    fn squeeze_lifts_by_itself_after_configured_ops() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 128,
            ..SimConfig::default()
        });
        let f = sim.create_file(4096);
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 1,
            cache_squeeze: 1.0,
            squeeze_frac: 0.5,
            squeeze_ops: 2,
            ..FaultConfig::off()
        });
        // Neuter further squeezes after the first by draining the trigger:
        // install, trigger once, then set a plan that cannot squeeze.
        sim.set_fault_plan(Some(plan.clone()));
        sim.read(f, 0, 1).unwrap();
        assert_eq!(sim.cache_capacity(), 64);
        plan = FaultPlan::new(FaultConfig::off());
        sim.device.set_fault_plan(Some(plan));
        sim.read(f, 1, 1).unwrap(); // squeeze_remaining 2 -> 1
        sim.read(f, 2, 1).unwrap(); // 1 -> 0: capacity restored
        assert_eq!(sim.cache_capacity(), 128);
    }
}
