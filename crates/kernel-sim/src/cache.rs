//! LRU page cache with dirty tracking and prefetch accounting.
//!
//! Models the part of the Linux memory-management subsystem the readahead
//! model observes and perturbs: pages enter via demand reads or readahead
//! (`add_to_page_cache` tracepoint territory), are recycled in LRU order,
//! dirty pages require writeback before reclaim, and pages brought in by
//! readahead that get evicted untouched are counted as **wasted prefetch**
//! — the quantity bad readahead tuning inflates.

use crate::fxhash::FxHashMap;

/// Key of a cached page: (inode number, page index within the file).
pub type PageKey = (u64, u64);

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry {
    key: PageKey,
    prev: usize,
    next: usize,
    dirty: bool,
    /// Brought in by readahead and not yet referenced by a real access.
    speculative: bool,
}

/// Cumulative page-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the page.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages inserted.
    pub insertions: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Evicted pages that readahead fetched but nothing ever used.
    pub wasted_prefetch: u64,
    /// Dirty pages flushed.
    pub writebacks: u64,
}

/// A fixed-capacity LRU page cache.
///
/// # Example
///
/// ```
/// use kernel_sim::cache::PageCache;
///
/// let mut c = PageCache::new(2);
/// c.insert((1, 0), false);
/// c.insert((1, 1), false);
/// assert!(c.touch((1, 0))); // hit, moves to MRU
/// c.insert((1, 2), false);  // evicts (1,1), the LRU
/// assert!(!c.touch((1, 1)));
/// assert!(c.touch((1, 0)));
/// ```
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    /// Resident-page index. FxHash instead of the default SipHash: the key
    /// is hashed once per simulated I/O, keys are internal (no HashDoS
    /// surface), and Fx is seedless, keeping runs bit-reproducible.
    map: FxHashMap<PageKey, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    /// Most recently used entry.
    head: usize,
    /// Least recently used entry.
    tail: usize,
    dirty_count: usize,
    stats: CacheStats,
}

impl PageCache {
    /// Creates a cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "page cache capacity must be positive");
        PageCache {
            capacity,
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            dirty_count: 0,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Dirty pages currently resident.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Whether the page is resident (does not update LRU or stats).
    pub fn contains(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Looks up a page as a real access: on hit, promotes it to MRU, clears
    /// its speculative flag, counts a hit, and returns true; on miss, counts
    /// a miss and returns false.
    pub fn touch(&mut self, key: PageKey) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.link_front(idx);
                self.entries[idx].speculative = false;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Inserts a page (idempotent: re-inserting promotes and merges flags).
    /// `speculative` marks readahead-fetched pages. Returns the pages that
    /// were evicted (with their dirty flags) to make room — the caller is
    /// responsible for writing dirty victims back to the device.
    pub fn insert(&mut self, key: PageKey, speculative: bool) -> Vec<(PageKey, bool)> {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.link_front(idx);
            // A demand insert over a speculative page de-speculates it.
            if !speculative {
                self.entries[idx].speculative = false;
            }
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.map.len() >= self.capacity {
            if let Some(victim) = self.evict_lru() {
                evicted.push(victim);
            } else {
                break;
            }
        }
        let entry = Entry {
            key,
            prev: NIL,
            next: NIL,
            dirty: false,
            speculative,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i] = entry;
                i
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
        self.stats.insertions += 1;
        evicted
    }

    /// Marks a resident page dirty; returns false if the page is absent.
    pub fn mark_dirty(&mut self, key: PageKey) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                if !self.entries[idx].dirty {
                    self.entries[idx].dirty = true;
                    self.dirty_count += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Flushes up to `max` dirty pages in LRU order, clearing their dirty
    /// bits; returns their keys (the caller charges device write time and
    /// fires `writeback_dirty_page` tracepoints).
    pub fn writeback(&mut self, max: usize) -> Vec<PageKey> {
        let mut flushed = Vec::new();
        let mut idx = self.tail;
        while idx != NIL && flushed.len() < max {
            if self.entries[idx].dirty {
                self.entries[idx].dirty = false;
                self.dirty_count -= 1;
                self.stats.writebacks += 1;
                flushed.push(self.entries[idx].key);
            }
            idx = self.entries[idx].prev;
        }
        flushed
    }

    /// Changes the capacity (the fault layer's cache-pressure squeeze).
    /// Shrinking evicts LRU pages until the cache fits; the victims (with
    /// their dirty flags) are returned for the caller to write back.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<(PageKey, bool)> {
        assert!(capacity > 0, "page cache capacity must be positive");
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            match self.evict_lru() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        evicted
    }

    /// Removes one specific page (the `DontNeed` path); returns whether the
    /// page was dirty (the caller must write it back). No-op when absent.
    pub fn forget(&mut self, key: PageKey) -> bool {
        let Some(&idx) = self.map.get(&key) else {
            return false;
        };
        let dirty = self.entries[idx].dirty;
        if dirty {
            self.dirty_count -= 1;
        }
        self.unlink(idx);
        self.map.remove(&key);
        self.free.push(idx);
        dirty
    }

    /// Drops every page (the benchmark-between-runs `drop_caches`).
    /// Dirty pages are silently discarded — callers flush first if the data
    /// matters (mirrors `echo 3 > drop_caches` after `sync`).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.dirty_count = 0;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Hit ratio over all lookups so far (0 when there were none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            0.0
        } else {
            self.stats.hits as f64 / total as f64
        }
    }

    fn evict_lru(&mut self) -> Option<(PageKey, bool)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.entries[idx].key;
        let dirty = self.entries[idx].dirty;
        if dirty {
            self.dirty_count -= 1;
        }
        if self.entries[idx].speculative {
            self.stats.wasted_prefetch += 1;
        }
        self.unlink(idx);
        self.map.remove(&key);
        self.free.push(idx);
        self.stats.evictions += 1;
        Some((key, dirty))
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn link_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = PageCache::new(3);
        c.insert((1, 0), false);
        c.insert((1, 1), false);
        c.insert((1, 2), false);
        c.touch((1, 0)); // 0 becomes MRU; LRU order now 1, 2, 0
        let ev = c.insert((1, 3), false);
        assert_eq!(ev, vec![((1, 1), false)]);
        let ev = c.insert((1, 4), false);
        assert_eq!(ev, vec![((1, 2), false)]);
        assert!(c.contains((1, 0)));
    }

    #[test]
    fn reinsert_promotes_instead_of_duplicating() {
        let mut c = PageCache::new(2);
        c.insert((1, 0), false);
        c.insert((1, 1), false);
        c.insert((1, 0), false); // promote, no eviction
        assert_eq!(c.len(), 2);
        let ev = c.insert((1, 2), false);
        assert_eq!(ev, vec![((1, 1), false)]); // 1 was LRU after promotion
    }

    #[test]
    fn dirty_pages_reported_on_eviction() {
        let mut c = PageCache::new(2);
        c.insert((1, 0), false);
        c.mark_dirty((1, 0));
        c.insert((1, 1), false);
        let ev = c.insert((1, 2), false);
        assert_eq!(ev, vec![((1, 0), true)]);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn writeback_flushes_lru_first_and_clears_dirty() {
        let mut c = PageCache::new(4);
        for i in 0..4 {
            c.insert((1, i), false);
            c.mark_dirty((1, i));
        }
        assert_eq!(c.dirty_count(), 4);
        let flushed = c.writeback(2);
        assert_eq!(flushed, vec![(1, 0), (1, 1)]); // LRU end first
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.stats().writebacks, 2);
    }

    #[test]
    fn wasted_prefetch_accounting() {
        let mut c = PageCache::new(2);
        c.insert((1, 0), true); // speculative, never touched
        c.insert((1, 1), true);
        c.touch((1, 1)); // used: de-speculated
        c.insert((1, 2), false); // evicts (1,0) → wasted
        c.insert((1, 3), false); // evicts (1,1) → NOT wasted
        assert_eq!(c.stats().wasted_prefetch, 1);
    }

    #[test]
    fn touch_counts_hits_and_misses() {
        let mut c = PageCache::new(2);
        assert!(!c.touch((9, 9)));
        c.insert((9, 9), false);
        assert!(c.touch((9, 9)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = PageCache::new(4);
        for i in 0..4 {
            c.insert((1, i), false);
            c.mark_dirty((1, i));
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.dirty_count(), 0);
        assert!(!c.touch((1, 0)));
    }

    #[test]
    fn forget_removes_and_reports_dirty() {
        let mut c = PageCache::new(4);
        c.insert((1, 0), false);
        c.insert((1, 1), false);
        c.mark_dirty((1, 1));
        assert!(!c.forget((1, 0))); // clean
        assert!(c.forget((1, 1))); // dirty
        assert!(!c.forget((1, 2))); // absent
        assert!(c.is_empty());
        assert_eq!(c.dirty_count(), 0);
        // Slots are recycled.
        c.insert((1, 3), false);
        assert!(c.touch((1, 3)));
    }

    #[test]
    fn mark_dirty_absent_page_is_false() {
        let mut c = PageCache::new(2);
        assert!(!c.mark_dirty((1, 0)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = PageCache::new(0);
    }

    #[test]
    fn set_capacity_shrink_evicts_lru_and_grow_restores() {
        let mut c = PageCache::new(4);
        for i in 0..4 {
            c.insert((1, i), false);
        }
        c.mark_dirty((1, 0));
        let ev = c.set_capacity(2);
        assert_eq!(ev, vec![((1, 0), true), ((1, 1), false)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.dirty_count(), 0);
        // Growing back evicts nothing and admits new pages again.
        assert!(c.set_capacity(4).is_empty());
        c.insert((1, 7), false);
        c.insert((1, 8), false);
        assert_eq!(c.len(), 4);
    }

    proptest! {
        /// The cache never exceeds capacity and stays internally consistent
        /// under arbitrary operation sequences.
        #[test]
        fn prop_capacity_invariant(ops in proptest::collection::vec((0u8..4, 0u64..20), 1..300)) {
            let mut c = PageCache::new(8);
            for (op, page) in ops {
                match op {
                    0 => { c.insert((1, page), false); }
                    1 => { c.insert((1, page), true); }
                    2 => { c.touch((1, page)); }
                    _ => { c.mark_dirty((1, page)); }
                }
                prop_assert!(c.len() <= 8);
                prop_assert!(c.dirty_count() <= c.len());
            }
            // Every mapped page must be reachable by a touch.
            let resident: Vec<PageKey> = (0..20).map(|p| (1u64, p))
                .filter(|k| c.contains(*k)).collect();
            for k in resident {
                prop_assert!(c.touch(k));
            }
        }
    }
}
