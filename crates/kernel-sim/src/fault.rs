//! Device-level fault injection — the substrate of deterministic
//! simulation testing (DST).
//!
//! The paper's deployment argument (§3.1/§3.3) is that an in-kernel ML loop
//! must *degrade gracefully*: a mispredicting model or a failing device may
//! cost performance but must never corrupt state or wedge the system. To
//! validate that claim the simulator can carry a [`FaultPlan`]: a seeded,
//! deterministic schedule of device-level adversity —
//!
//! - **read/write errors** — the request fails after consuming device time,
//! - **torn writes** — a multi-page write transfers only a prefix before
//!   failing (power-loss / FTL-abort shape),
//! - **latency spikes** — the request takes `spike_mult`× its normal time
//!   (garbage collection, thermal throttling),
//! - **stalls** — a fixed multi-millisecond hiccup (command timeout +
//!   retry),
//! - **cache-pressure squeezes** — the page cache temporarily shrinks to a
//!   fraction of its capacity (another tenant ballooning), applied at the
//!   [`crate::Sim`] level.
//!
//! Every decision is drawn from a counter-based [splitmix64] stream seeded
//! by [`FaultConfig::seed`], so a plan replays byte-identically given the
//! same request sequence — the property the `kml-dst` harness builds its
//! minimal-reproducer shrinking on.
//!
//! With no plan attached (the default) the fault path costs one branch per
//! request and behavior is bit-identical to the pre-fault-layer simulator.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::fmt;

/// Direction of a failed device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorKind {
    /// A read request failed.
    Read,
    /// A write request failed (possibly after a torn partial transfer).
    Write,
}

/// A failed device request. Carries enough context to account for the
/// failure precisely: which pages were covered, how many made it to the
/// medium, and how much device time the attempt consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    /// Read or write.
    pub kind: IoErrorKind,
    /// Inode of the failed request.
    pub inode: u64,
    /// First page of the failed request.
    pub page: u64,
    /// Pages the request covered.
    pub npages: u64,
    /// Pages actually transferred before the failure (0 for reads and
    /// clean write errors; `0 < completed < npages` for torn writes).
    pub completed: u64,
    /// Device time consumed by the failed attempt, ns (the clock still
    /// advances by this much — failures are not free).
    pub ns: u64,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.kind {
            IoErrorKind::Read => "read",
            IoErrorKind::Write => "write",
        };
        write!(
            f,
            "device {dir} error: inode {} pages [{}, {}) ({}/{} transferred, {} ns consumed)",
            self.inode,
            self.page,
            self.page + self.npages,
            self.completed,
            self.npages,
            self.ns
        )
    }
}

impl std::error::Error for IoError {}

/// Result of a fallible simulated I/O operation. The `Ok` payload is the
/// operation's cost in ns unless documented otherwise.
pub type IoResult<T = u64> = Result<T, IoError>;

/// Probabilities and magnitudes of injected faults. All rates are per
/// device request (or per logical operation for the cache squeeze), in
/// `[0, 1]`. [`FaultConfig::off`] disables everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// Probability a read request fails outright.
    pub read_error: f64,
    /// Probability a write request fails outright (no pages transferred).
    pub write_error: f64,
    /// Probability a multi-page write tears: a strict prefix of its pages
    /// is transferred, then the request fails.
    pub torn_write: f64,
    /// Probability a request's service time is multiplied by `spike_mult`.
    pub latency_spike: f64,
    /// Multiplier applied by a latency spike (≥ 1).
    pub spike_mult: u64,
    /// Probability a request stalls for an extra `stall_ns`.
    pub stall: f64,
    /// Stall duration, ns.
    pub stall_ns: u64,
    /// Probability (per logical `Sim` operation) the page cache is
    /// squeezed to `squeeze_frac` of its configured capacity.
    pub cache_squeeze: f64,
    /// Fraction of the configured capacity left during a squeeze.
    pub squeeze_frac: f64,
    /// Squeeze duration, in logical operations.
    pub squeeze_ops: u64,
    /// Probability a network packet (one RPC leg) is dropped in flight.
    /// Consulted only by the netfs transport via [`FaultPlan::on_packet`];
    /// pure device runs never draw for it.
    pub net_loss: f64,
    /// Probability a packet is duplicated in flight (the receiver sees it
    /// twice; NFS-style duplicate-request caches absorb the second copy).
    pub net_dup: f64,
    /// Probability a packet is delivered out of order relative to the next
    /// one — modeled as swapping its delay with the following packet's.
    pub net_reorder: f64,
    /// Probability a packet's propagation delay is stretched by an extra
    /// jitter term of up to `net_jitter_ns`.
    pub net_jitter: f64,
    /// Maximum extra delay a jitter event adds, ns.
    pub net_jitter_ns: u64,
}

impl FaultConfig {
    /// A configuration that injects nothing (but still draws no randomness,
    /// so attaching it is behaviorally identical to no plan at all).
    pub fn off() -> Self {
        FaultConfig {
            seed: 0,
            read_error: 0.0,
            write_error: 0.0,
            torn_write: 0.0,
            latency_spike: 0.0,
            spike_mult: 1,
            stall: 0.0,
            stall_ns: 0,
            cache_squeeze: 0.0,
            squeeze_frac: 1.0,
            squeeze_ops: 0,
            net_loss: 0.0,
            net_dup: 0.0,
            net_reorder: 0.0,
            net_jitter: 0.0,
            net_jitter_ns: 0,
        }
    }

    /// A moderate all-faults-on profile for smoke testing: every fault
    /// kind fires with a few-percent probability.
    pub fn light(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error: 0.01,
            write_error: 0.01,
            torn_write: 0.02,
            latency_spike: 0.03,
            spike_mult: 20,
            stall: 0.005,
            stall_ns: 3_000_000,
            cache_squeeze: 0.002,
            squeeze_frac: 0.125,
            squeeze_ops: 64,
            ..FaultConfig::off()
        }
    }

    /// A network-only profile: no device faults, moderate packet adversity.
    /// The shape a netfs transport attaches to its own plan (device plans
    /// stay separate so the two decision streams never interleave).
    pub fn net_light(seed: u64) -> Self {
        FaultConfig {
            seed,
            net_loss: 0.02,
            net_dup: 0.01,
            net_reorder: 0.02,
            net_jitter: 0.10,
            net_jitter_ns: 400_000,
            ..FaultConfig::off()
        }
    }

    /// Whether any fault can ever fire under this configuration.
    pub fn is_active(&self) -> bool {
        self.read_error > 0.0
            || self.write_error > 0.0
            || self.torn_write > 0.0
            || self.latency_spike > 0.0
            || self.stall > 0.0
            || self.cache_squeeze > 0.0
            || self.net_is_active()
    }

    /// Whether any *network* fault can ever fire under this configuration.
    pub fn net_is_active(&self) -> bool {
        self.net_loss > 0.0 || self.net_dup > 0.0 || self.net_reorder > 0.0 || self.net_jitter > 0.0
    }
}

/// A fault decision for one device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the request; nothing is transferred.
    Error,
    /// Transfer only `completed` pages, then fail (writes only).
    Torn {
        /// Pages transferred before the failure.
        completed: u64,
    },
    /// Multiply the request's service time.
    Spike {
        /// The multiplier.
        mult: u64,
    },
    /// Add a fixed hiccup to the request's service time.
    Stall {
        /// Extra nanoseconds.
        ns: u64,
    },
}

/// A fault decision for one network packet (one RPC leg). Drawn by the
/// netfs transport via [`FaultPlan::on_packet`] — device I/O never draws
/// for these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The packet is dropped in flight; the receiver never sees it.
    Drop,
    /// The packet is delivered twice.
    Duplicate,
    /// The packet is delivered out of order relative to the next packet
    /// (the transport swaps their delays).
    Reorder,
    /// The packet's propagation delay is stretched.
    Jitter {
        /// Extra nanoseconds of delay.
        ns: u64,
    },
}

/// A cache-pressure squeeze decision for one logical operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Squeeze {
    /// Fraction of the configured capacity to squeeze down to.
    pub frac: f64,
    /// Logical operations the squeeze lasts.
    pub ops: u64,
}

/// Counters of faults actually injected (distinct from *configured* rates:
/// a run's schedule is what fired, not what could have).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Read requests failed.
    pub read_errors: u64,
    /// Write requests failed cleanly (nothing transferred).
    pub write_errors: u64,
    /// Write requests torn (partial transfer then failure).
    pub torn_writes: u64,
    /// Latency spikes applied.
    pub latency_spikes: u64,
    /// Stalls applied.
    pub stalls: u64,
    /// Cache squeezes begun.
    pub cache_squeezes: u64,
    /// Network packets dropped.
    pub packets_lost: u64,
    /// Network packets duplicated.
    pub packets_duplicated: u64,
    /// Network packets reordered.
    pub packets_reordered: u64,
    /// Network packets jittered.
    pub packet_jitters: u64,
}

impl FaultStats {
    /// Total faults of any kind injected.
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.write_errors
            + self.torn_writes
            + self.latency_spikes
            + self.stalls
            + self.cache_squeezes
            + self.packets_lost
            + self.packets_duplicated
            + self.packets_reordered
            + self.packet_jitters
    }
}

/// The seeded fault schedule. One plan is attached to one device (or
/// [`crate::Sim`]); it draws one `u64` per consulted request, so the
/// schedule is a pure function of `(seed, request index)`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    draws: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan from a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            draws: 0,
            stats: FaultStats::default(),
        }
    }

    /// The configuration the plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One uniform draw in `[0, 1)` from the counter-based stream.
    fn roll(&mut self) -> f64 {
        let mut z = self
            .cfg
            .seed
            .wrapping_add(self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.draws += 1;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // 53 high bits → uniform double in [0, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fault decision for a read request, if any.
    pub fn on_read(&mut self) -> Option<Fault> {
        if !self.cfg.is_active() {
            return None;
        }
        let r = self.roll();
        let mut edge = self.cfg.read_error;
        if r < edge {
            self.stats.read_errors += 1;
            return Some(Fault::Error);
        }
        edge += self.cfg.latency_spike;
        if r < edge {
            self.stats.latency_spikes += 1;
            return Some(Fault::Spike {
                mult: self.cfg.spike_mult.max(1),
            });
        }
        edge += self.cfg.stall;
        if r < edge {
            self.stats.stalls += 1;
            return Some(Fault::Stall {
                ns: self.cfg.stall_ns,
            });
        }
        None
    }

    /// Fault decision for a write request of `npages`, if any.
    pub fn on_write(&mut self, npages: u64) -> Option<Fault> {
        if !self.cfg.is_active() {
            return None;
        }
        let r = self.roll();
        let mut edge = self.cfg.write_error;
        if r < edge {
            self.stats.write_errors += 1;
            return Some(Fault::Error);
        }
        edge += self.cfg.torn_write;
        if r < edge {
            if npages > 1 {
                self.stats.torn_writes += 1;
                // Deterministic tear point: a second draw picks a strict
                // prefix length in [1, npages).
                let cut = 1 + (self.roll() * (npages - 1) as f64) as u64;
                return Some(Fault::Torn {
                    completed: cut.min(npages - 1),
                });
            }
            // Single-page writes cannot tear; fail them cleanly instead.
            self.stats.write_errors += 1;
            return Some(Fault::Error);
        }
        edge += self.cfg.latency_spike;
        if r < edge {
            self.stats.latency_spikes += 1;
            return Some(Fault::Spike {
                mult: self.cfg.spike_mult.max(1),
            });
        }
        edge += self.cfg.stall;
        if r < edge {
            self.stats.stalls += 1;
            return Some(Fault::Stall {
                ns: self.cfg.stall_ns,
            });
        }
        None
    }

    /// Fault decision for one network packet (one RPC leg), if any.
    ///
    /// Like the device hooks this consumes exactly one draw per consulted
    /// packet (plus one for the jitter magnitude when a jitter fires), so
    /// a transport schedule is a pure function of `(seed, packet index)`.
    pub fn on_packet(&mut self) -> Option<NetFault> {
        self.on_packet_sized(1, true)
    }

    /// Size- and phase-aware packet decision. A leg spanning `frags` wire
    /// fragments is lost if *any* fragment is, so the effective loss rate
    /// is `1 - (1 - net_loss)^frags` — big payloads drop more, the physics
    /// that makes small rsize values worth paying for on lossy links. When
    /// `faults_gated` is false (a calm phase of a bursty profile) loss,
    /// duplication and reordering are suppressed but background jitter
    /// still applies; exactly one draw is consumed either way, so the
    /// schedule stays a pure function of the packet index.
    pub fn on_packet_sized(&mut self, frags: u64, faults_gated: bool) -> Option<NetFault> {
        if !self.cfg.net_is_active() {
            return None;
        }
        let r = self.roll();
        if faults_gated {
            let survive = (1.0 - self.cfg.net_loss).powi(frags.min(i32::MAX as u64) as i32);
            let mut edge = 1.0 - survive;
            if r < edge {
                self.stats.packets_lost += 1;
                return Some(NetFault::Drop);
            }
            edge += self.cfg.net_dup;
            if r < edge {
                self.stats.packets_duplicated += 1;
                return Some(NetFault::Duplicate);
            }
            edge += self.cfg.net_reorder;
            if r < edge {
                self.stats.packets_reordered += 1;
                return Some(NetFault::Reorder);
            }
            edge += self.cfg.net_jitter;
            if r < edge {
                self.stats.packet_jitters += 1;
                let ns = (self.roll() * self.cfg.net_jitter_ns as f64) as u64;
                return Some(NetFault::Jitter { ns });
            }
            return None;
        }
        if r < self.cfg.net_jitter {
            self.stats.packet_jitters += 1;
            let ns = (self.roll() * self.cfg.net_jitter_ns as f64) as u64;
            return Some(NetFault::Jitter { ns });
        }
        None
    }

    /// Squeeze decision for one logical `Sim` operation, if any.
    pub fn on_logical_op(&mut self) -> Option<Squeeze> {
        if self.cfg.cache_squeeze <= 0.0 {
            return None;
        }
        if self.roll() < self.cfg.cache_squeeze {
            self.stats.cache_squeezes += 1;
            Some(Squeeze {
                frac: self.cfg.squeeze_frac,
                ops: self.cfg.squeeze_ops.max(1),
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::off());
        for _ in 0..1000 {
            assert_eq!(plan.on_read(), None);
            assert_eq!(plan.on_write(8), None);
            assert_eq!(plan.on_logical_op(), None);
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn schedules_replay_identically() {
        let run = || {
            let mut plan = FaultPlan::new(FaultConfig::light(42));
            let mut faults = Vec::new();
            for i in 0..5_000u64 {
                faults.push(plan.on_read());
                faults.push(plan.on_write(1 + i % 16));
            }
            (faults, plan.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.total() > 0, "light profile injected nothing in 10k reqs");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let schedule = |seed| {
            let mut plan = FaultPlan::new(FaultConfig::light(seed));
            (0..2_000).map(|_| plan.on_read()).collect::<Vec<_>>()
        };
        assert_ne!(schedule(1), schedule(2));
    }

    #[test]
    fn certain_error_always_fires() {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 7,
            read_error: 1.0,
            write_error: 1.0,
            ..FaultConfig::off()
        });
        for _ in 0..100 {
            assert_eq!(plan.on_read(), Some(Fault::Error));
            assert_eq!(plan.on_write(4), Some(Fault::Error));
        }
        assert_eq!(plan.stats().read_errors, 100);
        assert_eq!(plan.stats().write_errors, 100);
    }

    #[test]
    fn torn_writes_tear_strict_prefixes_and_singles_fail_clean() {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 3,
            torn_write: 1.0,
            ..FaultConfig::off()
        });
        for npages in 2..64u64 {
            match plan.on_write(npages) {
                Some(Fault::Torn { completed }) => {
                    assert!(
                        completed >= 1 && completed < npages,
                        "tear at {completed}/{npages}"
                    );
                }
                other => panic!("expected torn write, got {other:?}"),
            }
        }
        assert_eq!(plan.on_write(1), Some(Fault::Error));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 11,
            read_error: 0.1,
            ..FaultConfig::off()
        });
        for _ in 0..10_000 {
            plan.on_read();
        }
        let e = plan.stats().read_errors;
        assert!((700..1300).contains(&e), "10% of 10k draws gave {e}");
    }

    #[test]
    fn packet_schedule_replays_and_respects_rates() {
        let run = || {
            let mut plan = FaultPlan::new(FaultConfig::net_light(99));
            let faults: Vec<_> = (0..10_000).map(|_| plan.on_packet()).collect();
            (faults, plan.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(
            (100..400).contains(&sa.packets_lost),
            "2% of 10k packets gave {} drops",
            sa.packets_lost
        );
        assert!(sa.packets_duplicated > 0 && sa.packets_reordered > 0 && sa.packet_jitters > 0);
        // A net-only profile never produces device faults...
        assert_eq!(sa.read_errors + sa.write_errors + sa.torn_writes, 0);
        let mut plan = FaultPlan::new(FaultConfig::net_light(99));
        // ...and device-only profiles never draw for packets.
        assert!(plan.on_logical_op().is_none());
        let mut dev = FaultPlan::new(FaultConfig::light(5));
        for _ in 0..1000 {
            assert_eq!(dev.on_packet(), None);
        }
        assert_eq!(dev.stats().packets_lost, 0);
    }

    #[test]
    fn jitter_magnitudes_stay_bounded() {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: 17,
            net_jitter: 1.0,
            net_jitter_ns: 250_000,
            ..FaultConfig::off()
        });
        for _ in 0..1000 {
            match plan.on_packet() {
                Some(NetFault::Jitter { ns }) => assert!(ns < 250_000),
                other => panic!("expected jitter, got {other:?}"),
            }
        }
    }

    #[test]
    fn io_error_displays_context() {
        let e = IoError {
            kind: IoErrorKind::Write,
            inode: 9,
            page: 128,
            npages: 8,
            completed: 3,
            ns: 55_000,
        };
        let s = e.to_string();
        assert!(s.contains("write error"));
        assert!(s.contains("inode 9"));
        assert!(s.contains("3/8"));
    }
}
