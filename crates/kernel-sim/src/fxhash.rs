//! Inline FxHash-style hasher for hot simulator maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which buys HashDoS
//! resistance the simulator does not need (keys are internal inode/page
//! numbers, not attacker-controlled input) at the cost of ~1-2 ns per byte.
//! The page cache hashes a key per simulated I/O, so the hasher sits on the
//! same per-event budget the paper polices for its instrumentation (~49
//! ns/event, E5). This module inlines the rustc-hash "Fx" mixing function —
//! multiply by a golden-ratio-derived odd constant and rotate — instead of
//! adding a dependency.
//!
//! Determinism is also a feature: Fx has no per-process random seed, so
//! iteration-order-independent results stay byte-identical across runs and
//! worker counts (required by the parallel experiment sweeps).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using [`FxHasher`]; drop-in for the default hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Multiplicative constant from rustc-hash: `2^64 / φ`, forced odd.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, deterministic hasher (FxHash function).
///
/// Each word is folded in as `hash = (hash.rotate_left(5) ^ word) * SEED`.
/// Good dispersion for small integer keys like `(inode, page_index)`;
/// **not** resistant to engineered collisions — internal keys only.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let key: (u64, u64) = (42, 1 << 20);
        assert_eq!(hash_of(&key), hash_of(&key));
    }

    #[test]
    fn nearby_page_keys_disperse() {
        // Sequential page indexes on one inode — the common access pattern —
        // must not collide or cluster into the same low bits.
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..1024u64).map(|p| hash_of(&(7u64, p))).collect();
        assert_eq!(hashes.len(), 1024, "collisions among sequential pages");
        let low_bits: HashSet<u64> = hashes.iter().map(|h| h & 0x7f).collect();
        assert!(
            low_bits.len() > 100,
            "low bits degenerate: {}",
            low_bits.len()
        );
    }

    #[test]
    fn fxhashmap_behaves_like_hashmap() {
        let mut m: FxHashMap<(u64, u64), usize> = FxHashMap::default();
        for i in 0..100u64 {
            m.insert((1, i), i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(1, 50)), Some(&50));
        assert_eq!(m.remove(&(1, 50)), Some(50));
        assert!(!m.contains_key(&(1, 50)));
    }

    #[test]
    fn partial_tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
