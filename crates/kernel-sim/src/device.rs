//! Block-device timing models.
//!
//! The paper evaluates on two media — an NVMe SSD and a SATA SSD — whose
//! different base latencies and bandwidths move the optimal readahead value
//! (that is the whole premise of per-device tuning). Each profile charges
//!
//! `cost = base + discontiguity_penalty? + pages × per_page`
//!
//! per request: `base` models command setup + device latency (amortized by
//! larger readahead windows), `per_page` models bandwidth (the cost of
//! *wasted* prefetch), and the penalty applies when a request does not
//! continue where the previous one ended. Absolute values are calibrated to
//! datasheet orders of magnitude, not to the authors' testbed (DESIGN.md §1).

/// Timing parameters for one storage medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Human-readable name ("nvme", "ssd", ...).
    pub name: &'static str,
    /// Fixed cost per read request, ns.
    pub read_base_ns: u64,
    /// Incremental cost per 4 KiB page read, ns.
    pub read_per_page_ns: u64,
    /// Fixed cost per write request, ns.
    pub write_base_ns: u64,
    /// Incremental cost per 4 KiB page written, ns.
    pub write_per_page_ns: u64,
    /// Extra cost when a request is not contiguous with the previous one, ns.
    pub discontiguity_ns: u64,
}

impl DeviceProfile {
    /// NVMe SSD: ~10 µs request overhead, ~6.5 GB/s streaming.
    pub fn nvme() -> Self {
        DeviceProfile {
            name: "nvme",
            read_base_ns: 10_000,
            read_per_page_ns: 600,
            write_base_ns: 12_000,
            write_per_page_ns: 800,
            discontiguity_ns: 1_000,
        }
    }

    /// SATA SSD: ~40 µs request overhead, ~400 MB/s streaming — per-page
    /// cost dominates, which is what makes wasted readahead expensive here.
    pub fn sata_ssd() -> Self {
        DeviceProfile {
            name: "ssd",
            read_base_ns: 40_000,
            read_per_page_ns: 10_000,
            write_base_ns: 45_000,
            write_per_page_ns: 11_000,
            discontiguity_ns: 10_000,
        }
    }

    /// 7200-RPM hard disk: dominated by seeks. Not used by the paper's
    /// evaluation, but kept for the "different devices need different
    /// readahead" motivation and the extension benches.
    pub fn hdd() -> Self {
        DeviceProfile {
            name: "hdd",
            read_base_ns: 4_000_000,
            read_per_page_ns: 25_000,
            write_base_ns: 4_000_000,
            write_per_page_ns: 25_000,
            discontiguity_ns: 8_000_000,
        }
    }
}

/// Cumulative statistics of one device instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read requests served.
    pub read_requests: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Write requests served.
    pub write_requests: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Total busy time, ns.
    pub busy_ns: u64,
}

/// A block device: applies a [`DeviceProfile`] to a request stream and keeps
/// track of contiguity and utilization.
#[derive(Debug, Clone)]
pub struct BlockDevice {
    profile: DeviceProfile,
    /// `(inode, next_page)` the head is positioned after, for contiguity.
    last_end: Option<(u64, u64)>,
    stats: DeviceStats,
}

impl BlockDevice {
    /// Creates a device with the given timing profile.
    pub fn new(profile: DeviceProfile) -> Self {
        BlockDevice {
            profile,
            last_end: None,
            stats: DeviceStats::default(),
        }
    }

    /// The device's timing profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Serves a read of `npages` starting at `page` of `inode`; returns the
    /// service time in ns.
    pub fn read(&mut self, inode: u64, page: u64, npages: u64) -> u64 {
        let contiguous = self.last_end == Some((inode, page));
        let mut cost = self.profile.read_base_ns + npages * self.profile.read_per_page_ns;
        if !contiguous {
            cost += self.profile.discontiguity_ns;
        }
        self.last_end = Some((inode, page + npages));
        self.stats.read_requests += 1;
        self.stats.pages_read += npages;
        self.stats.busy_ns += cost;
        cost
    }

    /// Serves a write of `npages` starting at `page` of `inode`; returns the
    /// service time in ns.
    pub fn write(&mut self, inode: u64, page: u64, npages: u64) -> u64 {
        let contiguous = self.last_end == Some((inode, page));
        let mut cost = self.profile.write_base_ns + npages * self.profile.write_per_page_ns;
        if !contiguous {
            cost += self.profile.discontiguity_ns;
        }
        self.last_end = Some((inode, page + npages));
        self.stats.write_requests += 1;
        self.stats.pages_written += npages;
        self.stats.busy_ns += cost;
        cost
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Clears statistics and positioning (a fresh benchmark run).
    pub fn reset(&mut self) {
        self.last_end = None;
        self.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortizes_base_cost() {
        let mut d = BlockDevice::new(DeviceProfile::sata_ssd());
        // 256 pages in one request...
        let one_big = d.read(1, 0, 256);
        d.reset();
        // ...vs 8 requests of 32 pages (contiguous).
        let mut many = 0;
        for i in 0..8 {
            many += d.read(1, i * 32, 32);
        }
        assert!(one_big < many, "batched {one_big} !< split {many}");
    }

    #[test]
    fn contiguous_requests_skip_penalty() {
        let mut d = BlockDevice::new(DeviceProfile::sata_ssd());
        let first = d.read(1, 0, 8); // cold: discontiguous
        let second = d.read(1, 8, 8); // continues exactly
        let third = d.read(1, 100, 8); // jumps
        assert_eq!(first - second, DeviceProfile::sata_ssd().discontiguity_ns);
        assert_eq!(third, first);
    }

    #[test]
    fn different_inodes_break_contiguity() {
        let mut d = BlockDevice::new(DeviceProfile::nvme());
        d.read(1, 0, 8);
        let same = d.read(1, 8, 8);
        d.reset();
        d.read(1, 0, 8);
        let other = d.read(2, 8, 8);
        assert!(other > same);
    }

    #[test]
    fn nvme_is_faster_than_ssd_everywhere() {
        let n = DeviceProfile::nvme();
        let s = DeviceProfile::sata_ssd();
        assert!(n.read_base_ns < s.read_base_ns);
        assert!(n.read_per_page_ns < s.read_per_page_ns);
        assert!(n.write_per_page_ns < s.write_per_page_ns);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = BlockDevice::new(DeviceProfile::nvme());
        d.read(1, 0, 10);
        d.write(1, 10, 5);
        let s = d.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 10);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 5);
        assert!(s.busy_ns > 0);
        d.reset();
        assert_eq!(d.stats(), DeviceStats::default());
    }
}
