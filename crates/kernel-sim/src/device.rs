//! Block-device timing models.
//!
//! The paper evaluates on two media — an NVMe SSD and a SATA SSD — whose
//! different base latencies and bandwidths move the optimal readahead value
//! (that is the whole premise of per-device tuning). Each profile charges
//!
//! `cost = base + discontiguity_penalty? + pages × per_page`
//!
//! per request: `base` models command setup + device latency (amortized by
//! larger readahead windows), `per_page` models bandwidth (the cost of
//! *wasted* prefetch), and the penalty applies when a request does not
//! continue where the previous one ended. Absolute values are calibrated to
//! datasheet orders of magnitude, not to the authors' testbed (DESIGN.md §1).
//!
//! A device may carry a [`FaultPlan`]: requests then consult the seeded
//! schedule and can fail ([`IoError`]), tear, spike, or stall. Without a
//! plan the device is infallible and timing is identical to the
//! pre-fault-layer model.

use crate::fault::{Fault, FaultPlan, FaultStats, IoError, IoErrorKind, IoResult};

/// Timing parameters for one storage medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Human-readable name ("nvme", "ssd", ...).
    pub name: &'static str,
    /// Fixed cost per read request, ns.
    pub read_base_ns: u64,
    /// Incremental cost per 4 KiB page read, ns.
    pub read_per_page_ns: u64,
    /// Fixed cost per write request, ns.
    pub write_base_ns: u64,
    /// Incremental cost per 4 KiB page written, ns.
    pub write_per_page_ns: u64,
    /// Extra cost when a request is not contiguous with the previous one, ns.
    pub discontiguity_ns: u64,
}

impl DeviceProfile {
    /// NVMe SSD: ~10 µs request overhead, ~6.5 GB/s streaming.
    pub fn nvme() -> Self {
        DeviceProfile {
            name: "nvme",
            read_base_ns: 10_000,
            read_per_page_ns: 600,
            write_base_ns: 12_000,
            write_per_page_ns: 800,
            discontiguity_ns: 1_000,
        }
    }

    /// SATA SSD: ~40 µs request overhead, ~400 MB/s streaming — per-page
    /// cost dominates, which is what makes wasted readahead expensive here.
    pub fn sata_ssd() -> Self {
        DeviceProfile {
            name: "ssd",
            read_base_ns: 40_000,
            read_per_page_ns: 10_000,
            write_base_ns: 45_000,
            write_per_page_ns: 11_000,
            discontiguity_ns: 10_000,
        }
    }

    /// 7200-RPM hard disk: dominated by seeks. Not used by the paper's
    /// evaluation, but kept for the "different devices need different
    /// readahead" motivation and the extension benches.
    pub fn hdd() -> Self {
        DeviceProfile {
            name: "hdd",
            read_base_ns: 4_000_000,
            read_per_page_ns: 25_000,
            write_base_ns: 4_000_000,
            write_per_page_ns: 25_000,
            discontiguity_ns: 8_000_000,
        }
    }
}

/// Cumulative statistics of one device instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read requests served.
    pub read_requests: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Write requests served.
    pub write_requests: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Total busy time, ns.
    pub busy_ns: u64,
}

/// A block device: applies a [`DeviceProfile`] to a request stream and keeps
/// track of contiguity and utilization.
#[derive(Debug, Clone)]
pub struct BlockDevice {
    profile: DeviceProfile,
    /// `(inode, next_page)` the head is positioned after, for contiguity.
    last_end: Option<(u64, u64)>,
    stats: DeviceStats,
    /// Seeded fault schedule; `None` means an infallible device.
    faults: Option<FaultPlan>,
}

impl BlockDevice {
    /// Creates a device with the given timing profile.
    pub fn new(profile: DeviceProfile) -> Self {
        BlockDevice {
            profile,
            last_end: None,
            stats: DeviceStats::default(),
            faults: None,
        }
    }

    /// The device's timing profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Attaches (or with `None`, detaches) a fault schedule.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// Mutable access to the attached fault schedule, if any.
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.faults.as_mut()
    }

    /// Counters of faults injected so far (zero if no plan is attached).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Nominal service time of the request (before fault adjustments).
    fn base_cost(&self, inode: u64, page: u64, npages: u64, base: u64, per_page: u64) -> u64 {
        let mut cost = base + npages * per_page;
        if self.last_end != Some((inode, page)) {
            cost += self.profile.discontiguity_ns;
        }
        cost
    }

    /// Serves a read of `npages` starting at `page` of `inode`; returns the
    /// service time in ns, or an [`IoError`] if the fault schedule fails
    /// the request (the failed attempt still consumes `IoError::ns` of
    /// device time, counted in `busy_ns`).
    pub fn read(&mut self, inode: u64, page: u64, npages: u64) -> IoResult<u64> {
        let mut cost = self.base_cost(
            inode,
            page,
            npages,
            self.profile.read_base_ns,
            self.profile.read_per_page_ns,
        );
        match self.faults.as_mut().and_then(|p| p.on_read()) {
            Some(Fault::Error) => {
                // The failed attempt occupies the device and loses head
                // position, but transfers nothing.
                self.stats.busy_ns += cost;
                self.last_end = None;
                return Err(IoError {
                    kind: IoErrorKind::Read,
                    inode,
                    page,
                    npages,
                    completed: 0,
                    ns: cost,
                });
            }
            Some(Fault::Spike { mult }) => cost *= mult,
            Some(Fault::Stall { ns }) => cost += ns,
            Some(Fault::Torn { .. }) | None => {}
        }
        self.last_end = Some((inode, page + npages));
        self.stats.read_requests += 1;
        self.stats.pages_read += npages;
        self.stats.busy_ns += cost;
        Ok(cost)
    }

    /// Serves a write of `npages` starting at `page` of `inode`; returns the
    /// service time in ns. Under an attached fault schedule the write may
    /// fail cleanly (nothing transferred) or tear (`IoError::completed`
    /// pages of the prefix reached the medium before the failure).
    pub fn write(&mut self, inode: u64, page: u64, npages: u64) -> IoResult<u64> {
        let mut cost = self.base_cost(
            inode,
            page,
            npages,
            self.profile.write_base_ns,
            self.profile.write_per_page_ns,
        );
        match self.faults.as_mut().and_then(|p| p.on_write(npages)) {
            Some(Fault::Error) => {
                self.stats.busy_ns += cost;
                self.last_end = None;
                return Err(IoError {
                    kind: IoErrorKind::Write,
                    inode,
                    page,
                    npages,
                    completed: 0,
                    ns: cost,
                });
            }
            Some(Fault::Torn { completed }) => {
                // The prefix reached the medium: charge and account for it,
                // then fail the request.
                let done_cost = self.base_cost(
                    inode,
                    page,
                    completed,
                    self.profile.write_base_ns,
                    self.profile.write_per_page_ns,
                );
                self.stats.pages_written += completed;
                self.stats.busy_ns += done_cost;
                self.last_end = None;
                return Err(IoError {
                    kind: IoErrorKind::Write,
                    inode,
                    page,
                    npages,
                    completed,
                    ns: done_cost,
                });
            }
            Some(Fault::Spike { mult }) => cost *= mult,
            Some(Fault::Stall { ns }) => cost += ns,
            None => {}
        }
        self.last_end = Some((inode, page + npages));
        self.stats.write_requests += 1;
        self.stats.pages_written += npages;
        self.stats.busy_ns += cost;
        Ok(cost)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Clears statistics and positioning (a fresh benchmark run). The
    /// attached fault schedule, if any, is left in place and keeps its
    /// position in the decision stream.
    pub fn reset(&mut self) {
        self.last_end = None;
        self.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    #[test]
    fn batching_amortizes_base_cost() {
        let mut d = BlockDevice::new(DeviceProfile::sata_ssd());
        // 256 pages in one request...
        let one_big = d.read(1, 0, 256).unwrap();
        d.reset();
        // ...vs 8 requests of 32 pages (contiguous).
        let mut many = 0;
        for i in 0..8 {
            many += d.read(1, i * 32, 32).unwrap();
        }
        assert!(one_big < many, "batched {one_big} !< split {many}");
    }

    #[test]
    fn contiguous_requests_skip_penalty() {
        let mut d = BlockDevice::new(DeviceProfile::sata_ssd());
        let first = d.read(1, 0, 8).unwrap(); // cold: discontiguous
        let second = d.read(1, 8, 8).unwrap(); // continues exactly
        let third = d.read(1, 100, 8).unwrap(); // jumps
        assert_eq!(first - second, DeviceProfile::sata_ssd().discontiguity_ns);
        assert_eq!(third, first);
    }

    #[test]
    fn different_inodes_break_contiguity() {
        let mut d = BlockDevice::new(DeviceProfile::nvme());
        d.read(1, 0, 8).unwrap();
        let same = d.read(1, 8, 8).unwrap();
        d.reset();
        d.read(1, 0, 8).unwrap();
        let other = d.read(2, 8, 8).unwrap();
        assert!(other > same);
    }

    #[test]
    fn nvme_is_faster_than_ssd_everywhere() {
        let n = DeviceProfile::nvme();
        let s = DeviceProfile::sata_ssd();
        assert!(n.read_base_ns < s.read_base_ns);
        assert!(n.read_per_page_ns < s.read_per_page_ns);
        assert!(n.write_per_page_ns < s.write_per_page_ns);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = BlockDevice::new(DeviceProfile::nvme());
        d.read(1, 0, 10).unwrap();
        d.write(1, 10, 5).unwrap();
        let s = d.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 10);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.pages_written, 5);
        assert!(s.busy_ns > 0);
        d.reset();
        assert_eq!(d.stats(), DeviceStats::default());
    }

    #[test]
    fn read_error_consumes_time_but_transfers_nothing() {
        let mut d = BlockDevice::new(DeviceProfile::nvme());
        d.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 1,
            read_error: 1.0,
            ..FaultConfig::off()
        })));
        let err = d.read(3, 0, 16).unwrap_err();
        assert_eq!(err.kind, IoErrorKind::Read);
        assert_eq!(err.completed, 0);
        assert!(err.ns > 0);
        let s = d.stats();
        assert_eq!(s.read_requests, 0);
        assert_eq!(s.pages_read, 0);
        assert_eq!(s.busy_ns, err.ns);
    }

    #[test]
    fn torn_write_accounts_partial_transfer() {
        let mut d = BlockDevice::new(DeviceProfile::nvme());
        d.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 5,
            torn_write: 1.0,
            ..FaultConfig::off()
        })));
        let err = d.write(7, 0, 32).unwrap_err();
        assert_eq!(err.kind, IoErrorKind::Write);
        assert!(err.completed >= 1 && err.completed < 32);
        assert_eq!(d.stats().pages_written, err.completed);
        assert_eq!(d.stats().write_requests, 0);
    }

    #[test]
    fn spike_multiplies_service_time() {
        let cost_of = |cfg: Option<FaultConfig>| {
            let mut d = BlockDevice::new(DeviceProfile::nvme());
            d.set_fault_plan(cfg.map(FaultPlan::new));
            d.read(1, 0, 8).unwrap()
        };
        let clean = cost_of(None);
        let spiked = cost_of(Some(FaultConfig {
            seed: 1,
            latency_spike: 1.0,
            spike_mult: 10,
            ..FaultConfig::off()
        }));
        assert_eq!(spiked, clean * 10);
        let stalled = cost_of(Some(FaultConfig {
            seed: 1,
            stall: 1.0,
            stall_ns: 1_000_000,
            ..FaultConfig::off()
        }));
        assert_eq!(stalled, clean + 1_000_000);
    }

    #[test]
    fn attached_off_plan_is_behaviorally_inert() {
        let mut clean = BlockDevice::new(DeviceProfile::sata_ssd());
        let mut off = BlockDevice::new(DeviceProfile::sata_ssd());
        off.set_fault_plan(Some(FaultPlan::new(FaultConfig::off())));
        for i in 0..50 {
            assert_eq!(
                clean.read(1, i * 8, 8).unwrap(),
                off.read(1, i * 8, 8).unwrap()
            );
            assert_eq!(
                clean.write(2, i * 4, 4).unwrap(),
                off.write(2, i * 4, 4).unwrap()
            );
        }
        assert_eq!(clean.stats(), off.stats());
        assert_eq!(off.fault_stats().total(), 0);
    }
}
