//! Tracepoints (paper §4 "Data collection").
//!
//! The original collects training data from built-in kernel tracepoints
//! ("e.g. `add_to_page_cache`, `writeback_dirty_page`. These tracepoints
//! track file-backed pages") and records "the inode number, page offset of
//! the files that are accessed, and time difference from the beginning of
//! the execution of the KML kernel module". [`TraceRecord`] is exactly that
//! triple plus the event kind; the simulator pushes records into KML's
//! lock-free ring buffer so the collection path matches the paper's
//! (wait-free producer on the I/O path, async consumer).

use kml_collect::ringbuf::Producer;

/// Which tracepoint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A file-backed page entered the page cache (`add_to_page_cache`).
    AddToPageCache,
    /// A dirty page was written back (`writeback_dirty_page`).
    WritebackDirtyPage,
}

/// One tracepoint record — the fields the paper's hooks collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Which tracepoint fired.
    pub kind: TraceKind,
    /// Inode of the file the page belongs to.
    pub inode: u64,
    /// Page offset within the file.
    pub page_offset: u64,
    /// Nanoseconds since the module (simulation) started.
    pub time_ns: u64,
}

/// Sink for tracepoint records: a KML ring-buffer producer, optional so
/// tracing can be disabled with zero overhead.
#[derive(Debug, Default)]
pub struct TraceSink {
    producer: Option<Producer<TraceRecord>>,
    emitted: u64,
}

impl TraceSink {
    /// A sink that discards everything.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A sink feeding the given ring-buffer producer.
    pub fn new(producer: Producer<TraceRecord>) -> Self {
        TraceSink {
            producer: Some(producer),
            emitted: 0,
        }
    }

    /// Emits one record (wait-free; drops silently when disabled).
    pub fn emit(&mut self, record: TraceRecord) {
        if let Some(p) = &self.producer {
            p.push(record);
            self.emitted += 1;
        }
    }

    /// Whether a producer is attached.
    pub fn is_enabled(&self) -> bool {
        self.producer.is_some()
    }

    /// Records emitted so far (0 while disabled).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kml_collect::RingBuffer;

    #[test]
    fn disabled_sink_swallows_records() {
        let mut sink = TraceSink::disabled();
        sink.emit(TraceRecord {
            kind: TraceKind::AddToPageCache,
            inode: 1,
            page_offset: 2,
            time_ns: 3,
        });
        assert!(!sink.is_enabled());
        assert_eq!(sink.emitted(), 0);
    }

    #[test]
    fn enabled_sink_delivers_records() {
        let (p, mut c) = RingBuffer::with_capacity(16).split();
        let mut sink = TraceSink::new(p);
        for i in 0..5 {
            sink.emit(TraceRecord {
                kind: if i % 2 == 0 {
                    TraceKind::AddToPageCache
                } else {
                    TraceKind::WritebackDirtyPage
                },
                inode: 7,
                page_offset: i,
                time_ns: i * 100,
            });
        }
        assert_eq!(sink.emitted(), 5);
        let got: Vec<TraceRecord> = c.drain().collect();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].kind, TraceKind::AddToPageCache);
        assert_eq!(got[1].kind, TraceKind::WritebackDirtyPage);
        assert_eq!(got[4].page_offset, 4);
    }
}
