//! Linux-style on-demand readahead state machine.
//!
//! A per-file reimplementation (in shape) of `mm/readahead.c`'s on-demand
//! algorithm — the very heuristic the paper's neural network re-tunes:
//!
//! - A **miss** that continues the previous access (`page == prev + 1`)
//!   counts as sequential: the window doubles, capped at `ra_pages`.
//! - Any other miss gets the **initial window**, which per
//!   `get_init_ra_size` grows with *both* the request size and `ra_pages`:
//!   this is why an over-sized `ra_pages` makes random block reads fetch
//!   far more than they use, and why tuning it down speeds random
//!   workloads up (the paper's readrandom rows).
//! - A sync window plants a **marker** right after the requested region
//!   (`async_size = size − req_size` in Linux terms); a later *hit* on the
//!   marker triggers asynchronous readahead of the next, doubled window,
//!   whose marker sits at its own start — keeping a sequential stream one
//!   window ahead without ever punishing isolated block reads.
//!
//! `ra_pages` is the knob the KML application actuates ("changes readahead
//! sizes using block device layer ioctls and updates the readahead values
//! in struct files", §3.3).

/// Decision produced by the state machine for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaAction {
    /// Nothing to fetch (cache hit off-marker, or beyond EOF).
    None,
    /// Fetch `[start, start + len)` before serving the access.
    Sync {
        /// First page to fetch.
        start: u64,
        /// Pages to fetch.
        len: u64,
    },
    /// Fetch `[start, start + len)` asynchronously (marker hit).
    Async {
        /// First page to fetch.
        start: u64,
        /// Pages to fetch.
        len: u64,
    },
}

/// Per-file readahead state (`struct file_ra_state` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaState {
    /// Maximum window in pages (the tunable).
    ra_pages: u64,
    /// Last page accessed (hit or miss).
    prev_page: Option<u64>,
    /// Current window size in pages.
    window: u64,
    /// Marker page that triggers async readahead when hit.
    marker: Option<u64>,
    /// End of the last fetched region (next fetch start for async chains).
    window_end: u64,
}

/// Initial readahead window, following the shape of Linux's
/// `get_init_ra_size(req_size, max)`.
fn init_window(req: u64, max: u64) -> u64 {
    let size = req.max(1).next_power_of_two();
    let grown = if size <= max / 32 {
        size * 4
    } else if size <= max / 4 {
        size * 2
    } else {
        size
    };
    grown.clamp(1, max)
}

impl RaState {
    /// Creates state with the given maximum window (pages).
    pub fn new(ra_pages: u64) -> Self {
        RaState {
            ra_pages: ra_pages.max(1),
            prev_page: None,
            window: 0,
            marker: None,
            window_end: 0,
        }
    }

    /// The current maximum window in pages.
    pub fn ra_pages(&self) -> u64 {
        self.ra_pages
    }

    /// Retunes the maximum window (the KML actuation point). Shrinks the
    /// active window immediately if the new cap is below it.
    pub fn set_ra_pages(&mut self, ra_pages: u64) {
        self.ra_pages = ra_pages.max(1);
        self.window = self.window.min(self.ra_pages);
    }

    /// Feeds one page access through the state machine.
    ///
    /// - `page`: the page being accessed.
    /// - `req_len`: length in pages of the enclosing logical request (a
    ///   RocksDB block read spans several pages; Linux sizes the initial
    ///   window from it).
    /// - `cached`: whether the page is already resident.
    /// - `file_pages`: file size; fetches clamp to it.
    pub fn on_access(
        &mut self,
        page: u64,
        req_len: u64,
        cached: bool,
        file_pages: u64,
    ) -> RaAction {
        let action = if cached {
            if self.marker == Some(page) {
                // Async readahead: next window, doubled, one ahead.
                self.window = (self.window * 2).clamp(1, self.ra_pages);
                let start = self.window_end.max(page + 1);
                let len = self.window.min(file_pages.saturating_sub(start));
                self.marker = None;
                if len == 0 {
                    RaAction::None
                } else {
                    self.window_end = start + len;
                    // Async windows carry their marker at their own start, so
                    // a stream that reaches them immediately chains the next.
                    self.marker = Some(start);
                    RaAction::Async { start, len }
                }
            } else {
                RaAction::None
            }
        } else {
            let sequential = self.prev_page.is_some_and(|p| page == p + 1);
            self.window = if sequential && self.window > 0 {
                (self.window * 2).clamp(1, self.ra_pages)
            } else {
                init_window(req_len, self.ra_pages)
            };
            // The demanded request always fetches whole: `ra_pages` caps the
            // *speculative* extent, not the application's own read (Linux
            // issues one bio for the requested range even under FADV_RANDOM).
            let len = self
                .window
                .max(req_len)
                .min(file_pages.saturating_sub(page));
            if len == 0 {
                self.prev_page = Some(page);
                return RaAction::None;
            }
            self.window_end = page + len;
            // Marker right after the requested region — untouched by an
            // isolated block read, hit by the next sequential request.
            self.marker = (req_len < len).then_some(page + req_len);
            RaAction::Sync { start: page, len }
        };
        self.prev_page = Some(page);
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: u64 = 1 << 30; // effectively unbounded

    #[test]
    fn init_window_matches_linux_shape() {
        // One-page request: 4 pages once max is large enough.
        assert_eq!(init_window(1, 256), 4);
        assert_eq!(init_window(1, 32), 4);
        assert_eq!(init_window(1, 2), 1);
        // Four-page request (a 16 KiB block read): scales with max.
        assert_eq!(init_window(4, 256), 16);
        assert_eq!(init_window(4, 32), 8);
        assert_eq!(init_window(4, 4), 4);
        assert_eq!(init_window(4, 2), 2);
    }

    #[test]
    fn cold_one_page_miss_fetches_initial_window() {
        let mut ra = RaState::new(32);
        let action = ra.on_access(100, 1, false, FILE);
        assert_eq!(action, RaAction::Sync { start: 100, len: 4 });
    }

    #[test]
    fn sequential_misses_double_the_window_up_to_cap() {
        let mut ra = RaState::new(32);
        // Defeat the marker (req_len == window) so every access is a miss.
        let mut page = 0;
        let mut lens = Vec::new();
        for _ in 0..5 {
            match ra.on_access(page, 1, false, FILE) {
                RaAction::Sync { len, .. } => {
                    lens.push(len);
                    page += 1;
                }
                other => panic!("expected sync fetch, got {other:?}"),
            }
        }
        assert_eq!(lens, vec![4, 8, 16, 32, 32]);
    }

    #[test]
    fn random_block_reads_fetch_init_window_scaled_by_ra_pages() {
        // A 4-page block read under a huge ra_pages drags in 16 pages...
        let mut big = RaState::new(256);
        assert_eq!(
            big.on_access(5000, 4, false, FILE),
            RaAction::Sync {
                start: 5000,
                len: 16
            }
        );
        // ...but under a tight ra_pages only 4.
        let mut small = RaState::new(4);
        assert_eq!(
            small.on_access(5000, 4, false, FILE),
            RaAction::Sync {
                start: 5000,
                len: 4
            }
        );
    }

    #[test]
    fn isolated_block_read_never_touches_its_marker() {
        let mut ra = RaState::new(256);
        // Block read of pages 100..104: sync fetch 16, marker at 104.
        assert_eq!(
            ra.on_access(100, 4, false, FILE),
            RaAction::Sync {
                start: 100,
                len: 16
            }
        );
        for p in 101..104 {
            assert_eq!(ra.on_access(p, 4, true, FILE), RaAction::None);
        }
    }

    #[test]
    fn stream_hits_marker_and_chains_async_windows() {
        let mut ra = RaState::new(64);
        // First request [0,4): init window 8 (= 2×req under this cap),
        // marker at 4.
        assert_eq!(
            ra.on_access(0, 4, false, FILE),
            RaAction::Sync { start: 0, len: 8 }
        );
        for p in 1..4 {
            assert_eq!(ra.on_access(p, 4, true, FILE), RaAction::None);
        }
        // Second request starts at 4 — the marker — and pulls the next
        // (doubled) window starting where the last fetch ended.
        let action = ra.on_access(4, 4, true, FILE);
        assert_eq!(action, RaAction::Async { start: 8, len: 16 });
        // The async window's marker sits at its start (page 8): reaching it
        // chains the next window.
        for p in 5..8 {
            assert_eq!(ra.on_access(p, 4, true, FILE), RaAction::None);
        }
        let action = ra.on_access(8, 4, true, FILE);
        assert_eq!(action, RaAction::Async { start: 24, len: 32 });
    }

    #[test]
    fn fetches_clamp_at_eof() {
        let mut ra = RaState::new(32);
        assert_eq!(
            ra.on_access(10, 1, false, 12),
            RaAction::Sync { start: 10, len: 2 }
        );
        assert_eq!(ra.on_access(12, 1, false, 12), RaAction::None);
    }

    #[test]
    fn retuning_shrinks_active_window() {
        let mut ra = RaState::new(64);
        for page in 0..6 {
            ra.on_access(page, 1, false, FILE);
        }
        ra.set_ra_pages(8);
        assert_eq!(ra.ra_pages(), 8);
        let mut max_len = 0;
        for page in 6..30 {
            if let RaAction::Sync { len, .. } = ra.on_access(page, 1, false, FILE) {
                max_len = max_len.max(len);
            }
        }
        assert!(max_len <= 8, "window {max_len} exceeded retuned cap");
    }

    #[test]
    fn full_stream_stays_ahead_of_reader() {
        let mut ra = RaState::new(32);
        let mut resident = std::collections::HashSet::new();
        let mut fetches = 0;
        let mut misses = 0;
        for page in 0..1000u64 {
            let cached = resident.contains(&page);
            if !cached {
                misses += 1;
            }
            match ra.on_access(page, 1, cached, FILE) {
                RaAction::None => {}
                RaAction::Sync { start, len } | RaAction::Async { start, len } => {
                    fetches += 1;
                    for p in start..start + len {
                        resident.insert(p);
                    }
                }
            }
        }
        // After warm-up the stream is served by chained async windows:
        // very few misses and roughly pages/window fetches.
        assert!(misses <= 3, "stream missed {misses} times");
        assert!(fetches <= 1000 / 32 + 8, "too many fetches: {fetches}");
    }
}
