//! Trace capture and replay (paper §3.3 "Training in user space").
//!
//! "Users can collect data using KML's data processing and normalization
//! components and then train ML models on collected trace data in user
//! space." This module provides the persistent half of that workflow: a
//! compact binary trace format (one fixed-width record per tracepoint,
//! little-endian, FNV-checksummed) written through the KML file API, plus a
//! replayer that feeds records back at their recorded timestamps — so a
//! trace captured from one kernel-sim run can train models offline, be
//! shared, or be re-run against different feature pipelines.

use crate::trace::{TraceKind, TraceRecord};
use kml_platform::fileops::KmlFile;

/// Magic prefix of a KML trace file.
const MAGIC: &[u8; 8] = b"KMLTRACE";
/// Format version.
const VERSION: u32 = 1;
/// Bytes per encoded record: kind(1) + inode(8) + offset(8) + time(8).
const RECORD_BYTES: usize = 25;

/// Errors from trace encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The byte stream is not a KML trace (bad magic/version/length).
    Malformed(String),
    /// Checksum mismatch (bit rot or truncation).
    Corrupt {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// Underlying platform I/O failure.
    Io(kml_platform::PlatformError),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Malformed(msg) => write!(f, "malformed trace file: {msg}"),
            TraceFileError::Corrupt { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            TraceFileError::Io(e) => write!(f, "trace i/o failed: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kml_platform::PlatformError> for TraceFileError {
    fn from(e: kml_platform::PlatformError) -> Self {
        TraceFileError::Io(e)
    }
}

/// Serializes records to the KML trace format.
pub fn encode(records: &[TraceRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + records.len() * RECORD_BYTES + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        buf.push(match r.kind {
            TraceKind::AddToPageCache => 1,
            TraceKind::WritebackDirtyPage => 2,
        });
        buf.extend_from_slice(&r.inode.to_le_bytes());
        buf.extend_from_slice(&r.page_offset.to_le_bytes());
        buf.extend_from_slice(&r.time_ns.to_le_bytes());
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Deserializes records from the KML trace format.
///
/// # Errors
///
/// Returns [`TraceFileError::Malformed`] for structural problems and
/// [`TraceFileError::Corrupt`] on checksum mismatch.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceFileError> {
    if bytes.len() < 16 + 8 {
        return Err(TraceFileError::Malformed(format!(
            "{} bytes is too short for a trace file",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(TraceFileError::Malformed("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(TraceFileError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let expected_len = 16 + count * RECORD_BYTES + 8;
    if bytes.len() != expected_len {
        return Err(TraceFileError::Malformed(format!(
            "{} bytes but {count} records imply {expected_len}",
            bytes.len()
        )));
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(TraceFileError::Corrupt { stored, computed });
    }

    let mut records = Vec::with_capacity(count);
    let mut pos = 16;
    for _ in 0..count {
        let kind = match bytes[pos] {
            1 => TraceKind::AddToPageCache,
            2 => TraceKind::WritebackDirtyPage,
            other => {
                return Err(TraceFileError::Malformed(format!(
                    "unknown record kind {other}"
                )))
            }
        };
        let inode = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8 bytes"));
        let page_offset = u64::from_le_bytes(bytes[pos + 9..pos + 17].try_into().expect("8 bytes"));
        let time_ns = u64::from_le_bytes(bytes[pos + 17..pos + 25].try_into().expect("8 bytes"));
        records.push(TraceRecord {
            kind,
            inode,
            page_offset,
            time_ns,
        });
        pos += RECORD_BYTES;
    }
    Ok(records)
}

/// Writes a trace to disk through the KML file API.
///
/// # Errors
///
/// Propagates platform I/O failures.
pub fn save(
    records: &[TraceRecord],
    path: impl AsRef<std::path::Path>,
) -> Result<(), TraceFileError> {
    let mut f = KmlFile::create(path)?;
    f.write_all(&encode(records))?;
    f.sync()?;
    Ok(())
}

/// Loads a trace from disk.
///
/// # Errors
///
/// Propagates I/O and decoding failures.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<Vec<TraceRecord>, TraceFileError> {
    let mut f = KmlFile::open(path)?;
    let bytes = f.read_to_end_vec()?;
    decode(&bytes)
}

/// One event delivered by [`replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEvent<'a> {
    /// A tracepoint record, in stored (timestamp) order.
    Record(&'a TraceRecord),
    /// The recorded clock crossed a window boundary (the boundary time).
    WindowBoundary(u64),
}

/// Replays a trace in timestamp order, delivering a
/// [`ReplayEvent::WindowBoundary`] whenever the recorded clock crosses a
/// multiple of `window_ns` — the offline twin of the online per-window
/// feature cut.
///
/// # Panics
///
/// Panics if `window_ns == 0` or timestamps go backwards (traces are
/// captured with non-decreasing timestamps).
pub fn replay(records: &[TraceRecord], window_ns: u64, mut on_event: impl FnMut(ReplayEvent<'_>)) {
    assert!(window_ns > 0, "window must be positive");
    let mut next_boundary = records.first().map_or(0, |r| r.time_ns) + window_ns;
    let mut prev = 0;
    for r in records {
        assert!(r.time_ns >= prev, "trace timestamps must be non-decreasing");
        prev = r.time_ns;
        while r.time_ns >= next_boundary {
            on_event(ReplayEvent::WindowBoundary(next_boundary));
            next_boundary += window_ns;
        }
        on_event(ReplayEvent::Record(r));
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                kind: if i % 3 == 0 {
                    TraceKind::WritebackDirtyPage
                } else {
                    TraceKind::AddToPageCache
                },
                inode: 1 + i % 4,
                page_offset: i * 13,
                time_ns: i * 1000,
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let records = sample(500);
        let decoded = decode(&encode(&records)).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode(&sample(50));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode(&bytes),
            Err(TraceFileError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample(50));
        for cut in [0, 10, 16, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = encode(&sample(3));
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(TraceFileError::Malformed(_))));
        let mut bytes = encode(&sample(3));
        bytes[8] = 9;
        assert!(matches!(decode(&bytes), Err(TraceFileError::Malformed(_))));
    }

    #[test]
    fn file_round_trip() {
        let records = sample(100);
        let path = std::env::temp_dir().join(format!("kml-trace-{}.trc", std::process::id()));
        save(&records, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(records, loaded);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn replay_cuts_windows_at_recorded_boundaries() {
        let records = sample(100); // timestamps 0..100_000 ns step 1000
        let mut seen = 0;
        let mut boundaries = Vec::new();
        replay(&records, 10_000, |event| match event {
            ReplayEvent::Record(_) => seen += 1,
            ReplayEvent::WindowBoundary(t) => boundaries.push(t),
        });
        assert_eq!(seen, 100);
        // First record at t=0, so boundaries at 10k, 20k, ..., 90k.
        assert_eq!(boundaries.len(), 9);
        assert_eq!(boundaries[0], 10_000);
        assert!(boundaries.windows(2).all(|w| w[1] - w[0] == 10_000));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn replay_rejects_time_travel() {
        let mut records = sample(3);
        records[2].time_ns = 0;
        records[1].time_ns = 5000;
        replay(&records, 1000, |_| {});
    }
}
