//! # kernel-sim — the simulated OS storage substrate
//!
//! The paper evaluates KML inside a real Linux kernel: the readahead model
//! observes page-cache tracepoints (`add_to_page_cache`,
//! `writeback_dirty_page`) and actuates per-file/per-device readahead sizes.
//! This crate is the faithful-in-shape substitute (see DESIGN.md §1): a
//! discrete-cost simulation of
//!
//! - an **LRU page cache** with dirty pages and threshold writeback
//!   ([`cache::PageCache`]),
//! - **Linux-style on-demand readahead** with sequential-run detection,
//!   window doubling, and marker-page async readahead ([`readahead`]),
//! - parameterized **block devices** (NVMe / SATA-SSD timing models,
//!   [`device`]),
//! - **tracepoints** streamed into KML's lock-free ring buffer
//!   ([`trace`]),
//!
//! glued together by [`sim::Sim`], whose `read`/`write` calls advance a
//! simulated nanosecond clock by the cost of each operation. Throughput
//! numbers are therefore deterministic and hardware-independent.
//!
//! ## What is simulated vs. real
//!
//! Device service times are charged synchronously (prefetch batches
//! requests but does not overlap I/O with compute). This understates the
//! benefit of readahead for sequential scans and leaves the cost of wasted
//! prefetch fully visible — conservative in the direction that matters for
//! the paper's claims.
//!
//! ## Example
//!
//! ```
//! use kernel_sim::{DeviceProfile, Sim, SimConfig};
//!
//! let mut sim = Sim::new(SimConfig {
//!     device: DeviceProfile::nvme(),
//!     cache_pages: 1024,
//!     ..SimConfig::default()
//! });
//! let f = sim.create_file(4096);
//! let before = sim.now_ns();
//! sim.read(f, 0, 64).unwrap(); // cold: charged device time
//! let cold = sim.now_ns() - before;
//! let before = sim.now_ns();
//! sim.read(f, 0, 64).unwrap(); // warm: page-cache hits
//! let warm = sim.now_ns() - before;
//! assert!(warm * 2 < cold);
//! ```
//!
//! I/O is fallible: with a [`fault::FaultPlan`] attached (see
//! [`sim::Sim::set_fault_plan`]) reads and writes may return
//! [`fault::IoError`]; without one they always succeed.

pub mod cache;
pub mod device;
pub mod fault;
pub mod fxhash;
pub mod readahead;
pub mod sim;
pub mod trace;
pub mod tracefile;

pub use cache::PageCache;
pub use device::{BlockDevice, DeviceProfile};
pub use fault::{
    Fault, FaultConfig, FaultPlan, FaultStats, IoError, IoErrorKind, IoResult, NetFault,
};
pub use readahead::RaState;
pub use sim::{FileId, Sim, SimConfig, SimStats};
pub use trace::{TraceKind, TraceRecord};

/// Page size used throughout the simulation, in bytes (Linux default).
pub const PAGE_SIZE: u64 = 4096;

/// Converts a readahead size in KiB (the unit the paper sweeps: 8..1024)
/// into pages, rounding down but never below one page.
pub fn ra_kb_to_pages(kb: u32) -> u64 {
    ((kb as u64 * 1024) / PAGE_SIZE).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ra_conversion_matches_paper_sweep_bounds() {
        assert_eq!(ra_kb_to_pages(8), 2);
        assert_eq!(ra_kb_to_pages(128), 32); // the Linux default
        assert_eq!(ra_kb_to_pages(1024), 256);
        assert_eq!(ra_kb_to_pages(1), 1); // clamps to one page
    }
}
