//! Property tests pinning [`WorkerPool`] to the retained scoped
//! `parallel_map` reference implementation.
//!
//! The pipelined fleet (and every repro sweep) now dispatches through the
//! persistent pool; these properties are the contract that lets it claim
//! byte-identical output at any worker count: for *arbitrary* item counts ×
//! worker counts the pooled map returns exactly what the scoped reference
//! returns, and a panicking task neither wedges nor poisons the pool for
//! subsequent dispatches.

use std::sync::atomic::{AtomicU64, Ordering};

use kml_platform::threading::{parallel_map, WorkerPool};
use proptest::prelude::*;

/// A deterministic, item-dependent workload: mixes the index and value so
/// any scheduling mistake (skipped index, double-run, slot/index swap)
/// changes the output.
fn mix(i: usize, x: u64) -> u64 {
    let mut h = x ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 29;
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pooled map == scoped reference for arbitrary item × worker counts,
    /// including workers > items, workers > pool threads, and 0/1 items.
    #[test]
    fn pooled_map_matches_scoped_reference(
        items in proptest::collection::vec(any::<u64>(), 0..300),
        workers in 1usize..12,
        pool_threads in 0usize..6,
    ) {
        let pool = WorkerPool::new(pool_threads);
        let reference = parallel_map(&items, workers, |i, &x| mix(i, x));
        let pooled = pool.map(&items, workers, |i, &x| mix(i, x));
        prop_assert_eq!(reference, pooled);
    }

    /// Back-to-back dispatches with varying shapes on one pool stay
    /// identical to the reference — the epoch protocol resets cleanly.
    #[test]
    fn repeated_dispatches_stay_identical(
        shapes in proptest::collection::vec((0usize..120, 1usize..9), 1..8),
    ) {
        let pool = WorkerPool::new(4);
        for (n, workers) in shapes {
            let items: Vec<u64> = (0..n as u64).collect();
            let reference = parallel_map(&items, workers, |i, &x| mix(i, x));
            let pooled = pool.map(&items, workers, |i, &x| mix(i, x));
            prop_assert_eq!(reference, pooled);
        }
    }

    /// A panicking task propagates to the dispatcher and leaves the pool
    /// fully usable: the next dispatch still matches the reference.
    #[test]
    fn panic_does_not_wedge_or_poison_the_pool(
        n in 2usize..100,
        workers in 2usize..8,
        victim_seed in any::<u64>(),
    ) {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..n as u64).collect();
        let victim = (victim_seed % n as u64) as usize;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, workers, |i, &x| {
                if i == victim {
                    panic!("victim task {i}");
                }
                mix(i, x)
            })
        }));
        prop_assert!(result.is_err(), "panic must reach the dispatcher");
        let reference = parallel_map(&items, workers, |i, &x| mix(i, x));
        let pooled = pool.map(&items, workers, |i, &x| mix(i, x));
        prop_assert_eq!(reference, pooled);
    }
}

/// `run` hands out every index exactly once even when workers outnumber
/// both tasks and pool threads (non-proptest: exercises the slot API).
#[test]
fn run_visits_every_index_once_under_oversubscription() {
    let pool = WorkerPool::new(2);
    for tasks in [0usize, 1, 2, 7, 63, 256] {
        let hits: Vec<AtomicU64> = (0..tasks).map(|_| AtomicU64::new(0)).collect();
        pool.run(16, tasks, |slot, i| {
            assert!(slot <= pool.max_slot());
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "tasks={tasks}"
        );
    }
}
