//! Logging wrappers (`kml_log`, `kml_debug`, ...).
//!
//! The dev API routes diagnostics through one interface so the same ML code
//! prints via `printf` in user space and `printk` in the kernel. Our logger
//! additionally supports an in-memory sink so tests can assert on messages
//! and benchmark runs can stay silent.

use std::sync::{Arc, Mutex};

/// Severity of a log record, mirroring the kernel's printk levels KML uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Verbose diagnostics, compiled out of hot paths.
    Debug,
    /// Normal operational messages.
    Info,
    /// Recoverable anomalies (e.g. dropped training samples).
    Warn,
    /// Failures that degrade the model or the framework.
    Error,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Debug => f.write_str("DEBUG"),
            Level::Info => f.write_str("INFO"),
            Level::Warn => f.write_str("WARN"),
            Level::Error => f.write_str("ERROR"),
        }
    }
}

/// Where log records go.
#[derive(Debug, Clone)]
pub enum Sink {
    /// Print to stderr (userspace `printf` / kernel `printk` analogue).
    Stderr,
    /// Collect records in memory (for tests and quiet benchmark runs).
    Memory(Arc<Mutex<Vec<(Level, String)>>>),
    /// Drop all records.
    Null,
}

/// A KML logger handle. Cheap to clone; clones share the sink.
///
/// # Example
///
/// ```
/// use kml_platform::logging::{Level, Logger};
///
/// let log = Logger::memory();
/// log.log(Level::Info, "model loaded");
/// log.log(Level::Debug, "this is filtered out by default threshold");
/// assert_eq!(log.records().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Logger {
    sink: Sink,
    min_level: Level,
}

impl Logger {
    /// A logger that prints `Info` and above to stderr.
    pub fn stderr() -> Self {
        Logger {
            sink: Sink::Stderr,
            min_level: Level::Info,
        }
    }

    /// A logger that records `Info` and above in memory.
    pub fn memory() -> Self {
        Logger {
            sink: Sink::Memory(Arc::new(Mutex::new(Vec::new()))),
            min_level: Level::Info,
        }
    }

    /// A logger that discards everything.
    pub fn null() -> Self {
        Logger {
            sink: Sink::Null,
            min_level: Level::Error,
        }
    }

    /// Returns a copy of this logger with a different minimum level.
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }

    /// Emits a record at `level` (dropped if below the configured minimum).
    pub fn log(&self, level: Level, msg: impl AsRef<str>) {
        if level < self.min_level {
            return;
        }
        match &self.sink {
            Sink::Stderr => eprintln!("[kml {level}] {}", msg.as_ref()),
            Sink::Memory(buf) => buf
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((level, msg.as_ref().to_owned())),
            Sink::Null => {}
        }
    }

    /// Records captured so far (empty unless the sink is [`Sink::Memory`]).
    pub fn records(&self) -> Vec<(Level, String)> {
        match &self.sink {
            Sink::Memory(buf) => buf.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            _ => Vec::new(),
        }
    }
}

impl Default for Logger {
    fn default() -> Self {
        Logger::stderr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_in_order() {
        let log = Logger::memory();
        log.log(Level::Info, "a");
        log.log(Level::Warn, "b");
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (Level::Info, "a".to_owned()));
        assert_eq!(recs[1], (Level::Warn, "b".to_owned()));
    }

    #[test]
    fn level_threshold_filters() {
        let log = Logger::memory().with_min_level(Level::Warn);
        log.log(Level::Info, "dropped");
        log.log(Level::Error, "kept");
        assert_eq!(log.records().len(), 1);
    }

    #[test]
    fn null_sink_records_nothing() {
        let log = Logger::null();
        log.log(Level::Error, "still dropped");
        assert!(log.records().is_empty());
    }

    #[test]
    fn clones_share_memory_sink() {
        let log = Logger::memory();
        let clone = log.clone();
        clone.log(Level::Info, "shared");
        assert_eq!(log.records().len(), 1);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }
}
