//! Atomic-operation wrappers (`kml_atomic_add`, `kml_atomic_cmpxchg`, ...).
//!
//! KML relies on lock-free data structures for deadlock-free data collection
//! (paper §3.3 "Safety in KML's programming model"). The dev API exposes the
//! small set of atomic primitives that code needs, so the same source maps to
//! C11 atomics in user space and `atomic_t`/`atomic64_t` in the kernel.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A 64-bit unsigned counter with kernel-flavoured helper methods.
///
/// # Example
///
/// ```
/// use kml_platform::atomics::KmlCounter;
///
/// let c = KmlCounter::new(0);
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// assert_eq!(c.swap(0), 5);
/// ```
#[derive(Debug, Default)]
pub struct KmlCounter(AtomicU64);

impl KmlCounter {
    /// Creates a counter with the given initial value.
    pub fn new(v: u64) -> Self {
        KmlCounter(AtomicU64::new(v))
    }

    /// Atomically increments by one and returns the previous value.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel)
    }

    /// Atomically adds `n` and returns the previous value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::AcqRel)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Atomically replaces the value, returning the old one.
    pub fn swap(&self, v: u64) -> u64 {
        self.0.swap(v, Ordering::AcqRel)
    }

    /// Compare-and-exchange; returns `Ok(old)` on success, `Err(actual)` on
    /// mismatch (the `kml_atomic_cmpxchg` analogue).
    ///
    /// # Errors
    ///
    /// Returns `Err` carrying the observed value when it differs from
    /// `expected`.
    pub fn cmpxchg(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
    }
}

/// A 64-bit signed gauge (values may go negative transiently, e.g. byte
/// balances during concurrent charge/refund).
#[derive(Debug, Default)]
pub struct KmlGauge(AtomicI64);

impl KmlGauge {
    /// Creates a gauge with the given initial value.
    pub fn new(v: i64) -> Self {
        KmlGauge(AtomicI64::new(v))
    }

    /// Atomically adds `delta` (may be negative) and returns the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Acquire)
    }

    /// Atomically records `v` as a maximum candidate, returning the new max.
    pub fn fetch_max(&self, v: i64) -> i64 {
        self.0.fetch_max(v, Ordering::AcqRel).max(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = KmlCounter::new(10);
        assert_eq!(c.inc(), 10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.add(5), 11);
        assert_eq!(c.get(), 16);
    }

    #[test]
    fn cmpxchg_success_and_failure() {
        let c = KmlCounter::new(1);
        assert_eq!(c.cmpxchg(1, 2), Ok(1));
        assert_eq!(c.cmpxchg(1, 3), Err(2));
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_handles_negative_and_max() {
        let g = KmlGauge::new(0);
        assert_eq!(g.add(-5), -5);
        assert_eq!(g.add(15), 10);
        assert_eq!(g.fetch_max(7), 10);
        assert_eq!(g.fetch_max(20), 20);
    }

    #[test]
    fn counter_is_linearizable_under_contention() {
        let c = KmlCounter::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
