//! Threading wrappers (`kml_create_thread`, `kml_stop_thread`, ...).
//!
//! KML's async training runs on a dedicated thread created through the dev
//! API so the same model code spawns a pthread in user space and a kthread in
//! the kernel. [`KmlThread`] reproduces the kthread lifecycle: a `should_stop`
//! flag the worker polls (`kthread_should_stop`), an explicit `stop()` that
//! joins, and named threads for debuggability.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::{Persona, PlatformError, Result};

/// Handle to a stoppable worker thread, mirroring the kernel kthread API.
///
/// # Example
///
/// ```
/// use kml_platform::{threading::KmlThread, Persona};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let count = Arc::new(AtomicU64::new(0));
/// let c = count.clone();
/// let t = KmlThread::spawn(Persona::Kernel, "kml-train", move |ctl| {
///     while !ctl.should_stop() {
///         c.fetch_add(1, Ordering::Relaxed);
///         std::thread::yield_now();
///     }
/// }).unwrap();
/// while count.load(Ordering::Relaxed) == 0 {
///     std::thread::yield_now();
/// }
/// t.stop().unwrap();
/// assert!(count.load(Ordering::Relaxed) > 0);
/// ```
#[derive(Debug)]
pub struct KmlThread {
    name: String,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Control block passed to the worker closure.
#[derive(Debug, Clone)]
pub struct ThreadCtl {
    stop: Arc<AtomicBool>,
}

impl ThreadCtl {
    /// Whether the owner has requested the thread to stop
    /// (`kthread_should_stop` analogue). Workers should poll this in their
    /// main loop and return promptly when it turns true.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

impl KmlThread {
    /// Spawns a named worker thread (`kml_create_thread` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Thread`] if the OS refuses to spawn a thread.
    pub fn spawn<F>(persona: Persona, name: &str, work: F) -> Result<Self>
    where
        F: FnOnce(ThreadCtl) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let ctl = ThreadCtl { stop: stop.clone() };
        let full_name = match persona {
            Persona::Kernel => format!("kthread/{name}"),
            Persona::User => name.to_owned(),
        };
        let handle = std::thread::Builder::new()
            .name(full_name.clone())
            .spawn(move || work(ctl))
            .map_err(|e| PlatformError::Thread(e.to_string()))?;
        Ok(KmlThread {
            name: full_name,
            stop,
            handle: Some(handle),
        })
    }

    /// The (persona-prefixed) thread name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests the worker to stop and joins it (`kml_stop_thread` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Thread`] if the worker panicked.
    pub fn stop(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| PlatformError::Thread(format!("{} panicked", self.name)))?;
        }
        Ok(())
    }

    /// Whether a stop has been requested (visible to the owner side).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

impl Drop for KmlThread {
    fn drop(&mut self) {
        // Destructors never fail: request stop and detach-join best effort.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Environment variable that overrides the worker count used by
/// [`default_workers`] (and therefore by the experiment sweeps).
pub const WORKERS_ENV: &str = "KML_REPRO_THREADS";

/// Worker count for embarrassingly-parallel sweeps: the `KML_REPRO_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (1 if unknown).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `work(i, &items[i])` for every item on a pool of `workers` scoped
/// threads and returns the results **in item order**, regardless of which
/// worker ran which task or in what order tasks finished. Work is handed
/// out through an atomic cursor, so the schedule is dynamic but the output
/// is deterministic: callers that seed per-task RNGs from the task index
/// get byte-identical results at any worker count (including 1).
///
/// With `workers <= 1` or fewer than two items, everything runs inline on
/// the caller's thread — same code path the sequential experiments used.
///
/// # Panics
///
/// Propagates the first worker panic after all threads are joined.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = work(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was visited")
        })
        .collect()
}

/// Environment variable that overrides the size of the process-global
/// [`WorkerPool`] (number of resident pool threads, caller not counted).
pub const POOL_THREADS_ENV: &str = "KML_POOL_THREADS";

/// Lifetime-erased reference to the closure being broadcast for one epoch.
///
/// Workers only dereference it while `finished < participants` for the
/// active epoch, and [`WorkerPool::broadcast`] blocks until
/// `finished == participants` before returning, so the pointee strictly
/// outlives every use.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared access from many threads is fine)
// and `broadcast` keeps it alive for the duration of the epoch.
unsafe impl Send for TaskRef {}

struct PoolState {
    /// Bumped once per dispatch; workers compare against their last-seen
    /// epoch to detect new work.
    epoch: u64,
    /// Closure for the active epoch (`None` between dispatches).
    task: Option<TaskRef>,
    /// How many pool threads take part in the active epoch.
    participants: usize,
    /// How many participants have finished the active epoch.
    finished: usize,
    /// First panic payload captured from a participant this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a new epoch is published (or on shutdown).
    work_cv: Condvar,
    /// Signalled when the last participant of an epoch finishes.
    done_cv: Condvar,
}

/// A persistent worker pool: threads are spawned once and parked on a
/// condvar between dispatches, so repeated fan-outs (a fleet run issues
/// thousands) cost a wakeup instead of a `std::thread::spawn` each.
///
/// Dispatch model: [`broadcast`](Self::broadcast) publishes one closure per
/// *epoch*; every participating worker invokes it exactly once with its
/// **slot index** (pool thread `w` gets slot `w + 1`), and the calling
/// thread participates as slot 0. Slots let callers keep per-worker scratch
/// without allocation. [`run`](Self::run) and [`map`](Self::map) build the
/// familiar atomic-cursor/item-order-deterministic scheme on top, matching
/// [`parallel_map`] (the retained scoped reference implementation) result
/// for result at any worker count.
///
/// Panic safety: a panicking task is caught in the worker, re-raised on the
/// dispatching thread after the epoch completes, and the pool remains
/// usable for subsequent dispatches — no wedging, no poisoning.
///
/// Re-entrancy: a dispatch issued while another is in flight (including
/// from inside a pool task) runs inline on the caller, so nested
/// parallelism degrades to sequential instead of deadlocking.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Guards against concurrent/nested dispatch; see [`Self::broadcast`].
    dispatching: AtomicBool,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` resident worker threads. The caller's
    /// thread always participates in dispatches as slot 0, so a pool with
    /// `threads == 0` is valid and simply runs everything inline.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                task: None,
                participants: 0,
                finished: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("kml-pool/{w}"))
                    .spawn(move || Self::worker_loop(&shared, w))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            dispatching: AtomicBool::new(false),
            threads,
            handles,
        }
    }

    /// Number of resident pool threads (excluding the dispatching caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Highest slot index a task closure can observe (`threads`, because the
    /// caller is slot 0). Size per-slot scratch as `max_slot() + 1`.
    pub fn max_slot(&self) -> usize {
        self.threads
    }

    fn worker_loop(shared: &PoolShared, w: usize) {
        let mut seen = 0u64;
        loop {
            let task = {
                let mut st = shared.state.lock().expect("pool mutex poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch != seen {
                        seen = st.epoch;
                        if w < st.participants {
                            break st.task.expect("active epoch has a task");
                        }
                    }
                    st = shared.work_cv.wait(st).expect("pool mutex poisoned");
                }
            };
            // SAFETY: see `TaskRef` — valid until we bump `finished` below.
            let f = unsafe { &*task.0 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(w + 1)));
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.finished += 1;
            if st.finished == st.participants {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Invokes `f(slot)` once on the caller (slot 0) and once on each of up
    /// to `extra_workers` pool threads (slots 1..), returning after **all**
    /// invocations finish. With `extra_workers == 0`, or when another
    /// dispatch is already in flight (nested use), `f(0)` runs inline.
    ///
    /// Allocation-free on the dispatch path: the closure is passed by
    /// reference through a lifetime-erased pointer, not boxed.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from any participant after the epoch
    /// completes; the pool stays usable afterwards.
    pub fn broadcast<F>(&self, extra_workers: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let participants = extra_workers.min(self.threads);
        if participants == 0 {
            f(0);
            return;
        }
        if self
            .dispatching
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Pool busy (nested or concurrent dispatch): degrade to inline
            // execution instead of deadlocking on the epoch protocol.
            f(0);
            return;
        }
        struct DispatchGuard<'a>(&'a AtomicBool);
        impl Drop for DispatchGuard<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let guard = DispatchGuard(&self.dispatching);

        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: lifetime erasure only; `broadcast` blocks until every
        // participant finished, so `f` outlives all uses (see `TaskRef`).
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        });
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.epoch = st.epoch.wrapping_add(1);
            st.task = Some(task);
            st.participants = participants;
            st.finished = 0;
            st.panic = None;
            self.shared.work_cv.notify_all();
        }
        // The caller participates as slot 0. Catch a local panic so we
        // still wait for the workers before unwinding (they hold a
        // pointer into our frame).
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let worker_panic = {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            while st.finished < st.participants {
                st = self.shared.done_cv.wait(st).expect("pool mutex poisoned");
            }
            st.task = None;
            st.panic.take()
        };
        drop(guard);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Runs `task(slot, index)` for every `index in 0..tasks`, handing
    /// indices out through an atomic cursor across `workers` participants
    /// (caller included). Same deterministic-schedule contract as
    /// [`parallel_map`]: which slot runs which index is dynamic, but
    /// callers that key results/scratch by **index** (not slot) get
    /// byte-identical output at any worker count. With `workers <= 1` or
    /// fewer than two tasks everything runs inline as slot 0.
    ///
    /// Unlike [`map`](Self::map) this returns nothing and allocates
    /// nothing: tasks write results into caller-owned storage indexed by
    /// `index` (disjoint per task) or `slot` (exclusive per participant).
    pub fn run<F>(&self, workers: usize, tasks: usize, task: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let workers = workers.clamp(1, tasks.max(1));
        if workers <= 1 || tasks <= 1 {
            for i in 0..tasks {
                task(0, i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        self.broadcast(workers - 1, |slot| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            task(slot, i);
        });
    }

    /// Drop-in, result-identical replacement for [`parallel_map`] running
    /// on the persistent pool instead of freshly scoped threads.
    pub fn map<T, R, F>(&self, items: &[T], workers: usize, work: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = workers.clamp(1, items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
        }
        let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.run(workers, items.len(), |_slot, i| {
            let r = work(i, &items[i]);
            *results[i].lock().expect("result slot poisoned") = Some(r);
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every task index was visited")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pool-thread count for the process-global pool: `KML_POOL_THREADS` when
/// set to a positive integer, otherwise enough threads that the repro
/// byte-identity sweeps (`--threads 8`) schedule on real pool workers even
/// on small hosts — parked threads cost nothing.
fn global_pool_threads() -> usize {
    if let Ok(v) = std::env::var(POOL_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n;
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    hw.max(9) - 1
}

/// The process-global [`WorkerPool`], created on first use and never torn
/// down. Every production fan-out (fleet rounds, batched serving, repro
/// sweeps, sharded training) dispatches here so the whole process performs
/// exactly one round of thread spawns.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(global_pool_threads()))
}

/// [`parallel_map`] semantics on the process-global persistent pool: same
/// signature, same item-order determinism, no per-call thread spawns.
pub fn pool_map<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global_pool().map(items, workers, work)
}

/// Yields the current thread (`kml_yield` analogue; `cond_resched` in-kernel).
pub fn kml_yield() {
    std::thread::yield_now();
}

/// Sleeps for the given duration (`kml_msleep` analogue).
pub fn kml_sleep(d: std::time::Duration) {
    std::thread::sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_runs_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let nn = n.clone();
        let t = KmlThread::spawn(Persona::User, "worker", move |ctl| {
            while !ctl.should_stop() {
                nn.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        while n.load(Ordering::Relaxed) < 10 {
            kml_yield();
        }
        t.stop().unwrap();
        let after = n.load(Ordering::Relaxed);
        assert!(after >= 10);
    }

    #[test]
    fn kernel_persona_prefixes_name() {
        let t = KmlThread::spawn(Persona::Kernel, "train", |_| {}).unwrap();
        assert_eq!(t.name(), "kthread/train");
        t.stop().unwrap();
    }

    #[test]
    fn stop_reports_worker_panic() {
        let t = KmlThread::spawn(Persona::User, "panicky", |_| panic!("boom")).unwrap();
        // Give it a moment to panic, then join through stop().
        let err = t.stop().unwrap_err();
        assert!(matches!(err, PlatformError::Thread(_)));
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let seq = parallel_map(&items, 1, |i, &x| (i, x * x));
        let par = parallel_map(&items, 8, |i, &x| (i, x * x));
        assert_eq!(seq, par);
        assert_eq!(par[10], (10, 100));
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_runs_on_many_threads() {
        use std::collections::HashSet;
        let items: Vec<usize> = (0..256).collect();
        let ids = parallel_map(&items, 4, |_, _| {
            // Slight stall so the pool actually interleaves.
            std::thread::sleep(std::time::Duration::from_micros(50));
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work spread across workers");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn pool_map_matches_parallel_map() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 3, 4, 9] {
            let scoped = parallel_map(&items, workers, |i, &x| (i, x.wrapping_mul(x)));
            let pooled = pool.map(&items, workers, |i, &x| (i, x.wrapping_mul(x)));
            assert_eq!(scoped, pooled, "workers={workers}");
        }
    }

    #[test]
    fn pool_handles_empty_and_single() {
        let pool = WorkerPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn pool_zero_threads_runs_inline() {
        let pool = WorkerPool::new(0);
        let items: Vec<usize> = (0..32).collect();
        assert_eq!(
            pool.map(&items, 8, |_, &x| x * 2),
            items.iter().map(|&x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..64).collect();
        for round in 0..50u64 {
            let out = pool.map(&items, 4, |_, &x| x + round);
            assert_eq!(out[63], 63 + round);
        }
    }

    #[test]
    fn pool_run_covers_every_index_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(5, hits.len(), |_slot, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_run_slots_are_disjoint_participants() {
        let pool = WorkerPool::new(4);
        let max_slot = pool.max_slot();
        let seen: Vec<AtomicU64> = (0..=max_slot).map(|_| AtomicU64::new(0)).collect();
        pool.run(5, 512, |slot, _i| {
            assert!(slot <= max_slot, "slot {slot} out of range");
            seen[slot].fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(20));
        });
        let total: u64 = seen.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn pool_panic_propagates_and_does_not_wedge() {
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, 4, |_, &x| {
                if x == 17 {
                    panic!("task 17 exploded");
                }
                x
            })
        }));
        assert!(result.is_err(), "panic must propagate to the dispatcher");
        // The pool must remain fully usable after a panicking epoch.
        for _ in 0..10 {
            let out = pool.map(&items, 4, |_, &x| x + 1);
            assert_eq!(out.len(), items.len());
            assert_eq!(out[17], 18);
        }
    }

    #[test]
    fn pool_caller_panic_still_joins_workers() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(2, |slot| {
                if slot == 0 {
                    panic!("caller slot panics");
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        }));
        assert!(result.is_err());
        // Subsequent dispatch works.
        let done = AtomicU64::new(0);
        pool.broadcast(2, |_| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = WorkerPool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        let inner: Vec<usize> = (0..8).collect();
        let out = pool.map(&outer, 3, |_, &x| {
            // A nested map on the same pool must degrade to inline, not
            // deadlock on the single-dispatch protocol.
            let sums: usize = pool.map(&inner, 3, |_, &y| x + y).iter().sum();
            sums
        });
        let expected: Vec<usize> = outer.iter().map(|&x| 8 * x + 28).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global_pool() as *const WorkerPool;
        let b = global_pool() as *const WorkerPool;
        assert_eq!(a, b);
        let items: Vec<usize> = (0..128).collect();
        let out = pool_map(&items, 8, |i, &x| (i, x));
        assert_eq!(out.len(), 128);
        assert_eq!(out[77], (77, 77));
    }

    #[test]
    fn drop_joins_without_hanging() {
        let t = KmlThread::spawn(Persona::User, "dropper", |ctl| {
            while !ctl.should_stop() {
                kml_yield();
            }
        })
        .unwrap();
        drop(t); // must not hang or panic
    }
}
