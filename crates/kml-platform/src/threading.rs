//! Threading wrappers (`kml_create_thread`, `kml_stop_thread`, ...).
//!
//! KML's async training runs on a dedicated thread created through the dev
//! API so the same model code spawns a pthread in user space and a kthread in
//! the kernel. [`KmlThread`] reproduces the kthread lifecycle: a `should_stop`
//! flag the worker polls (`kthread_should_stop`), an explicit `stop()` that
//! joins, and named threads for debuggability.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::{Persona, PlatformError, Result};

/// Handle to a stoppable worker thread, mirroring the kernel kthread API.
///
/// # Example
///
/// ```
/// use kml_platform::{threading::KmlThread, Persona};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let count = Arc::new(AtomicU64::new(0));
/// let c = count.clone();
/// let t = KmlThread::spawn(Persona::Kernel, "kml-train", move |ctl| {
///     while !ctl.should_stop() {
///         c.fetch_add(1, Ordering::Relaxed);
///         std::thread::yield_now();
///     }
/// }).unwrap();
/// while count.load(Ordering::Relaxed) == 0 {
///     std::thread::yield_now();
/// }
/// t.stop().unwrap();
/// assert!(count.load(Ordering::Relaxed) > 0);
/// ```
#[derive(Debug)]
pub struct KmlThread {
    name: String,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Control block passed to the worker closure.
#[derive(Debug, Clone)]
pub struct ThreadCtl {
    stop: Arc<AtomicBool>,
}

impl ThreadCtl {
    /// Whether the owner has requested the thread to stop
    /// (`kthread_should_stop` analogue). Workers should poll this in their
    /// main loop and return promptly when it turns true.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

impl KmlThread {
    /// Spawns a named worker thread (`kml_create_thread` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Thread`] if the OS refuses to spawn a thread.
    pub fn spawn<F>(persona: Persona, name: &str, work: F) -> Result<Self>
    where
        F: FnOnce(ThreadCtl) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let ctl = ThreadCtl { stop: stop.clone() };
        let full_name = match persona {
            Persona::Kernel => format!("kthread/{name}"),
            Persona::User => name.to_owned(),
        };
        let handle = std::thread::Builder::new()
            .name(full_name.clone())
            .spawn(move || work(ctl))
            .map_err(|e| PlatformError::Thread(e.to_string()))?;
        Ok(KmlThread {
            name: full_name,
            stop,
            handle: Some(handle),
        })
    }

    /// The (persona-prefixed) thread name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests the worker to stop and joins it (`kml_stop_thread` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Thread`] if the worker panicked.
    pub fn stop(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| PlatformError::Thread(format!("{} panicked", self.name)))?;
        }
        Ok(())
    }

    /// Whether a stop has been requested (visible to the owner side).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

impl Drop for KmlThread {
    fn drop(&mut self) {
        // Destructors never fail: request stop and detach-join best effort.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Environment variable that overrides the worker count used by
/// [`default_workers`] (and therefore by the experiment sweeps).
pub const WORKERS_ENV: &str = "KML_REPRO_THREADS";

/// Worker count for embarrassingly-parallel sweeps: the `KML_REPRO_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (1 if unknown).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `work(i, &items[i])` for every item on a pool of `workers` scoped
/// threads and returns the results **in item order**, regardless of which
/// worker ran which task or in what order tasks finished. Work is handed
/// out through an atomic cursor, so the schedule is dynamic but the output
/// is deterministic: callers that seed per-task RNGs from the task index
/// get byte-identical results at any worker count (including 1).
///
/// With `workers <= 1` or fewer than two items, everything runs inline on
/// the caller's thread — same code path the sequential experiments used.
///
/// # Panics
///
/// Propagates the first worker panic after all threads are joined.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = work(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was visited")
        })
        .collect()
}

/// Yields the current thread (`kml_yield` analogue; `cond_resched` in-kernel).
pub fn kml_yield() {
    std::thread::yield_now();
}

/// Sleeps for the given duration (`kml_msleep` analogue).
pub fn kml_sleep(d: std::time::Duration) {
    std::thread::sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_runs_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let nn = n.clone();
        let t = KmlThread::spawn(Persona::User, "worker", move |ctl| {
            while !ctl.should_stop() {
                nn.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        while n.load(Ordering::Relaxed) < 10 {
            kml_yield();
        }
        t.stop().unwrap();
        let after = n.load(Ordering::Relaxed);
        assert!(after >= 10);
    }

    #[test]
    fn kernel_persona_prefixes_name() {
        let t = KmlThread::spawn(Persona::Kernel, "train", |_| {}).unwrap();
        assert_eq!(t.name(), "kthread/train");
        t.stop().unwrap();
    }

    #[test]
    fn stop_reports_worker_panic() {
        let t = KmlThread::spawn(Persona::User, "panicky", |_| panic!("boom")).unwrap();
        // Give it a moment to panic, then join through stop().
        let err = t.stop().unwrap_err();
        assert!(matches!(err, PlatformError::Thread(_)));
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let seq = parallel_map(&items, 1, |i, &x| (i, x * x));
        let par = parallel_map(&items, 8, |i, &x| (i, x * x));
        assert_eq!(seq, par);
        assert_eq!(par[10], (10, 100));
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_runs_on_many_threads() {
        use std::collections::HashSet;
        let items: Vec<usize> = (0..256).collect();
        let ids = parallel_map(&items, 4, |_, _| {
            // Slight stall so the pool actually interleaves.
            std::thread::sleep(std::time::Duration::from_micros(50));
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work spread across workers");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn drop_joins_without_hanging() {
        let t = KmlThread::spawn(Persona::User, "dropper", |ctl| {
            while !ctl.should_stop() {
                kml_yield();
            }
        })
        .unwrap();
        drop(t); // must not hang or panic
    }
}
