//! Threading wrappers (`kml_create_thread`, `kml_stop_thread`, ...).
//!
//! KML's async training runs on a dedicated thread created through the dev
//! API so the same model code spawns a pthread in user space and a kthread in
//! the kernel. [`KmlThread`] reproduces the kthread lifecycle: a `should_stop`
//! flag the worker polls (`kthread_should_stop`), an explicit `stop()` that
//! joins, and named threads for debuggability.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{Persona, PlatformError, Result};

/// Handle to a stoppable worker thread, mirroring the kernel kthread API.
///
/// # Example
///
/// ```
/// use kml_platform::{threading::KmlThread, Persona};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let count = Arc::new(AtomicU64::new(0));
/// let c = count.clone();
/// let t = KmlThread::spawn(Persona::Kernel, "kml-train", move |ctl| {
///     while !ctl.should_stop() {
///         c.fetch_add(1, Ordering::Relaxed);
///         std::thread::yield_now();
///     }
/// }).unwrap();
/// while count.load(Ordering::Relaxed) == 0 {
///     std::thread::yield_now();
/// }
/// t.stop().unwrap();
/// assert!(count.load(Ordering::Relaxed) > 0);
/// ```
#[derive(Debug)]
pub struct KmlThread {
    name: String,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Control block passed to the worker closure.
#[derive(Debug, Clone)]
pub struct ThreadCtl {
    stop: Arc<AtomicBool>,
}

impl ThreadCtl {
    /// Whether the owner has requested the thread to stop
    /// (`kthread_should_stop` analogue). Workers should poll this in their
    /// main loop and return promptly when it turns true.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

impl KmlThread {
    /// Spawns a named worker thread (`kml_create_thread` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Thread`] if the OS refuses to spawn a thread.
    pub fn spawn<F>(persona: Persona, name: &str, work: F) -> Result<Self>
    where
        F: FnOnce(ThreadCtl) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let ctl = ThreadCtl { stop: stop.clone() };
        let full_name = match persona {
            Persona::Kernel => format!("kthread/{name}"),
            Persona::User => name.to_owned(),
        };
        let handle = std::thread::Builder::new()
            .name(full_name.clone())
            .spawn(move || work(ctl))
            .map_err(|e| PlatformError::Thread(e.to_string()))?;
        Ok(KmlThread {
            name: full_name,
            stop,
            handle: Some(handle),
        })
    }

    /// The (persona-prefixed) thread name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests the worker to stop and joins it (`kml_stop_thread` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Thread`] if the worker panicked.
    pub fn stop(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| PlatformError::Thread(format!("{} panicked", self.name)))?;
        }
        Ok(())
    }

    /// Whether a stop has been requested (visible to the owner side).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

impl Drop for KmlThread {
    fn drop(&mut self) {
        // Destructors never fail: request stop and detach-join best effort.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Yields the current thread (`kml_yield` analogue; `cond_resched` in-kernel).
pub fn kml_yield() {
    std::thread::yield_now();
}

/// Sleeps for the given duration (`kml_msleep` analogue).
pub fn kml_sleep(d: std::time::Duration) {
    std::thread::sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_runs_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let nn = n.clone();
        let t = KmlThread::spawn(Persona::User, "worker", move |ctl| {
            while !ctl.should_stop() {
                nn.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        while n.load(Ordering::Relaxed) < 10 {
            kml_yield();
        }
        t.stop().unwrap();
        let after = n.load(Ordering::Relaxed);
        assert!(after >= 10);
    }

    #[test]
    fn kernel_persona_prefixes_name() {
        let t = KmlThread::spawn(Persona::Kernel, "train", |_| {}).unwrap();
        assert_eq!(t.name(), "kthread/train");
        t.stop().unwrap();
    }

    #[test]
    fn stop_reports_worker_panic() {
        let t = KmlThread::spawn(Persona::User, "panicky", |_| panic!("boom")).unwrap();
        // Give it a moment to panic, then join through stop().
        let err = t.stop().unwrap_err();
        assert!(matches!(err, PlatformError::Thread(_)));
    }

    #[test]
    fn drop_joins_without_hanging() {
        let t = KmlThread::spawn(Persona::User, "dropper", |ctl| {
            while !ctl.should_stop() {
                kml_yield();
            }
        })
        .unwrap();
        drop(t); // must not hang or panic
    }
}
