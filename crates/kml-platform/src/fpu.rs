//! Simulated `kernel_fpu_begin` / `kernel_fpu_end` discipline (paper §3.1).
//!
//! In a real kernel, floating-point use must be bracketed so the FPU register
//! state is saved and restored, and each bracket is costly — which is why the
//! paper *minimizes the number of code blocks using FP*. In this userspace
//! reproduction the guard is a bookkeeping device: it counts sections and
//! tracks nesting so tests and benchmarks can verify that (a) all FP-heavy
//! KML code runs inside a guard and (b) the number of guard transitions stays
//! small per operation, matching the paper's design goal.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of `FpuGuard` sections entered (process-wide, for reporting).
static FPU_SECTIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static FPU_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard representing one `kernel_fpu_begin()`/`kernel_fpu_end()` pair.
///
/// Guards nest: only the outermost enter/exit counts as a "section", exactly
/// like the cost model of the real primitive (nested begins are free).
///
/// # Example
///
/// ```
/// use kml_platform::fpu::{self, FpuGuard};
///
/// let before = fpu::sections_entered();
/// {
///     let _g = FpuGuard::enter();
///     let _nested = FpuGuard::enter(); // free: already inside a section
///     assert!(fpu::in_fpu_section());
/// }
/// assert!(!fpu::in_fpu_section());
/// assert_eq!(fpu::sections_entered(), before + 1);
/// ```
#[derive(Debug)]
pub struct FpuGuard {
    outermost: bool,
}

impl FpuGuard {
    /// Enters an FPU section (`kernel_fpu_begin`).
    pub fn enter() -> Self {
        let outermost = FPU_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth == 0
        });
        if outermost {
            FPU_SECTIONS.fetch_add(1, Ordering::Relaxed);
        }
        FpuGuard { outermost }
    }
}

impl Drop for FpuGuard {
    fn drop(&mut self) {
        FPU_DEPTH.with(|d| d.set(d.get() - 1));
        let _ = self.outermost; // kernel_fpu_end(): nothing to restore in userspace
    }
}

/// Whether the current thread is inside an FPU section.
pub fn in_fpu_section() -> bool {
    FPU_DEPTH.with(|d| d.get() > 0)
}

/// Process-wide number of outermost FPU sections entered so far.
///
/// Benchmarks use the delta of this counter across an operation to report
/// "FPU transitions per inference", which the paper minimizes.
pub fn sections_entered() -> u64 {
    FPU_SECTIONS.load(Ordering::Relaxed)
}

/// Runs `f` inside a single FPU section and returns its result.
///
/// This is the preferred pattern: batch all FP work of one logical operation
/// under one section, per the paper's "minimize the number of code blocks
/// using FPs" guidance.
///
/// # Example
///
/// ```
/// let y = kml_platform::fpu::with_fpu(|| (0..10).map(|i| (i as f64).sqrt()).sum::<f64>());
/// assert!(y > 0.0);
/// ```
pub fn with_fpu<T>(f: impl FnOnce() -> T) -> T {
    let _guard = FpuGuard::enter();
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_counts_one_section() {
        let before = sections_entered();
        {
            let _a = FpuGuard::enter();
            let _b = FpuGuard::enter();
            let _c = FpuGuard::enter();
            assert!(in_fpu_section());
        }
        assert!(!in_fpu_section());
        assert_eq!(sections_entered(), before + 1);
    }

    #[test]
    fn sequential_sections_each_count() {
        let before = sections_entered();
        for _ in 0..5 {
            with_fpu(|| 1.0_f64 + 1.0);
        }
        assert_eq!(sections_entered(), before + 5);
    }

    #[test]
    fn sections_are_per_thread() {
        let _outer = FpuGuard::enter();
        std::thread::spawn(|| {
            assert!(!in_fpu_section());
        })
        .join()
        .unwrap();
        assert!(in_fpu_section());
    }

    #[test]
    fn with_fpu_returns_value() {
        assert_eq!(with_fpu(|| 21 * 2), 42);
    }
}
