//! File-operation wrappers (`kml_file_open`, `kml_file_read`, ...).
//!
//! Used by KML's model save/load path: trained models are serialized to a
//! KML-specific binary file in user space and loaded by the kernel module at
//! deploy time (paper §3.3 "Training in user space"). The wrapper keeps the
//! ML code independent of `std::fs` vs kernel VFS calls.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::{PlatformError, Result};

/// An open KML file handle.
///
/// # Example
///
/// ```no_run
/// use kml_platform::fileops::KmlFile;
///
/// # fn main() -> kml_platform::Result<()> {
/// let mut f = KmlFile::create("/tmp/model.kml")?;
/// f.write_all(b"KMLMODEL")?;
/// f.seek_to(0)?;
/// let bytes = f.read_exact_vec(8)?;
/// assert_eq!(&bytes, b"KMLMODEL");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KmlFile {
    inner: std::fs::File,
    path: String,
}

impl KmlFile {
    /// Opens an existing file read-only (`kml_file_open` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let p = path.as_ref();
        let inner = std::fs::File::open(p)
            .map_err(|e| PlatformError::File(format!("{}: {e}", p.display())))?;
        Ok(KmlFile {
            inner,
            path: p.display().to_string(),
        })
    }

    /// Creates (truncating) a file for read/write.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let p = path.as_ref();
        let inner = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(p)
            .map_err(|e| PlatformError::File(format!("{}: {e}", p.display())))?;
        Ok(KmlFile {
            inner,
            path: p.display().to_string(),
        })
    }

    /// Path this handle was opened with.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Writes all of `buf` (`kml_file_write` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] on any I/O error.
    pub fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.inner
            .write_all(buf)
            .map_err(|e| PlatformError::File(format!("{}: write: {e}", self.path)))
    }

    /// Reads exactly `len` bytes into a fresh vector (`kml_file_read`).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] on short read or I/O error.
    pub fn read_exact_vec(&mut self, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.inner
            .read_exact(&mut buf)
            .map_err(|e| PlatformError::File(format!("{}: read: {e}", self.path)))?;
        Ok(buf)
    }

    /// Reads the remainder of the file.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] on I/O error.
    pub fn read_to_end_vec(&mut self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.inner
            .read_to_end(&mut buf)
            .map_err(|e| PlatformError::File(format!("{}: read: {e}", self.path)))?;
        Ok(buf)
    }

    /// Seeks to an absolute offset (`kml_file_seek`).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] on I/O error.
    pub fn seek_to(&mut self, offset: u64) -> Result<()> {
        self.inner
            .seek(SeekFrom::Start(offset))
            .map(|_| ())
            .map_err(|e| PlatformError::File(format!("{}: seek: {e}", self.path)))
    }

    /// Flushes buffered writes to the OS (`kml_file_sync` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::File`] on I/O error.
    pub fn sync(&mut self) -> Result<()> {
        self.inner
            .sync_all()
            .map_err(|e| PlatformError::File(format!("{}: sync: {e}", self.path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kml-fileops-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_write_read() {
        let path = tmp("roundtrip");
        let mut f = KmlFile::create(&path).unwrap();
        f.write_all(b"hello kml").unwrap();
        f.seek_to(0).unwrap();
        assert_eq!(f.read_exact_vec(5).unwrap(), b"hello");
        assert_eq!(f.read_to_end_vec().unwrap(), b" kml");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_missing_file_is_error() {
        let err = KmlFile::open("/nonexistent/kml/model.bin").unwrap_err();
        assert!(matches!(err, PlatformError::File(_)));
        assert!(err.to_string().contains("model.bin"));
    }

    #[test]
    fn short_read_is_error() {
        let path = tmp("short");
        let mut f = KmlFile::create(&path).unwrap();
        f.write_all(b"abc").unwrap();
        f.seek_to(0).unwrap();
        assert!(f.read_exact_vec(10).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn create_truncates_existing() {
        let path = tmp("trunc");
        {
            let mut f = KmlFile::create(&path).unwrap();
            f.write_all(b"long old contents").unwrap();
        }
        let mut f = KmlFile::create(&path).unwrap();
        f.write_all(b"new").unwrap();
        f.seek_to(0).unwrap();
        assert_eq!(f.read_to_end_vec().unwrap(), b"new");
        std::fs::remove_file(path).unwrap();
    }
}
