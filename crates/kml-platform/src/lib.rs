//! KML development API — the portability layer described in §3.3 of the paper.
//!
//! The original KML compiles the *exact same* ML code in user space and in the
//! Linux kernel by wrapping every external facility (memory allocation,
//! threading, logging, atomics, file operations) behind a thin API of 27
//! functions (e.g. `kml_malloc` calls `malloc` in user space and `kmalloc` in
//! the kernel). This crate is the Rust rendition of that layer: all other KML
//! crates obtain memory, threads, logs, atomics, and files exclusively through
//! it, so the ML code above stays persona-agnostic.
//!
//! Two [`Persona`]s are provided:
//!
//! - [`Persona::User`] — plain userspace behaviour.
//! - [`Persona::Kernel`] — simulated kernel discipline: floating-point use
//!   must be bracketed by [`fpu::FpuGuard`] sections (the analogue of
//!   `kernel_fpu_begin`/`kernel_fpu_end`), allocation can be served from a
//!   pre-reserved pool (§3.1 "memory reservation"), and allocation-failure
//!   injection is available for fault testing.
//!
//! # Quick example
//!
//! ```
//! use kml_platform::{alloc::KmlAllocator, fpu, Persona};
//!
//! let alloc = KmlAllocator::new(Persona::Kernel);
//! alloc.reserve(4096).unwrap();               // paper §3.1: memory reservation
//! let buf = alloc.alloc_bytes(1024).unwrap(); // served from the reservation
//! assert_eq!(buf.len(), 1024);
//!
//! let _guard = fpu::FpuGuard::enter();        // kernel_fpu_begin()
//! let y = 2.0_f64.sqrt();                     // FP allowed inside the guard
//! assert!(y > 1.0);
//! // guard drop == kernel_fpu_end()
//! ```

pub mod alloc;
pub mod atomics;
pub mod fileops;
pub mod fpu;
pub mod logging;
pub mod sampler;
pub mod threading;

/// Which environment the KML code believes it is running in.
///
/// The paper's KML compiles identical code for user space and kernel space;
/// we model the same split as a runtime persona so tests can exercise the
/// kernel discipline (FPU guards, reserved memory) without an actual kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Persona {
    /// Ordinary userspace semantics (`malloc`, `pthread`, `printf`, ...).
    #[default]
    User,
    /// Simulated kernel semantics (`kmalloc`, kthreads, `printk`, FPU guards).
    Kernel,
}

impl std::fmt::Display for Persona {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Persona::User => f.write_str("user"),
            Persona::Kernel => f.write_str("kernel"),
        }
    }
}

/// Errors produced by the platform layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// An allocation could not be satisfied (pool exhausted or fault injected).
    OutOfMemory {
        /// Bytes that were requested.
        requested: usize,
        /// Bytes still available in the reservation, if one is active.
        available: Option<usize>,
    },
    /// A reservation was requested while one is already active.
    ReservationActive,
    /// A file operation failed.
    File(String),
    /// A thread could not be spawned or joined.
    Thread(String),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::OutOfMemory {
                requested,
                available,
            } => match available {
                Some(avail) => write!(
                    f,
                    "out of memory: requested {requested} bytes, {avail} available in reservation"
                ),
                None => write!(f, "out of memory: requested {requested} bytes"),
            },
            PlatformError::ReservationActive => {
                f.write_str("a memory reservation is already active")
            }
            PlatformError::File(msg) => write!(f, "file operation failed: {msg}"),
            PlatformError::Thread(msg) => write!(f, "thread operation failed: {msg}"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Convenience result alias for platform operations.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persona_display_names() {
        assert_eq!(Persona::User.to_string(), "user");
        assert_eq!(Persona::Kernel.to_string(), "kernel");
    }

    #[test]
    fn persona_default_is_user() {
        assert_eq!(Persona::default(), Persona::User);
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let e = PlatformError::OutOfMemory {
            requested: 128,
            available: Some(64),
        };
        let msg = e.to_string();
        assert!(msg.contains("128"));
        assert!(msg.contains("64"));
        assert!(msg.starts_with("out of memory"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
