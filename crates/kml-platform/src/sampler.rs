//! Seedable, dependency-free samplers shared across experiments.
//!
//! Every experiment that draws from a skewed distribution used to carry
//! its own ad-hoc generator (the kvstore mixgraph workload, the netfs
//! fault schedules, the DST scenario derivation all splitmix in place).
//! This module is the extracted canonical form: a [`SplitMix64`] stream
//! plus exact inverse-CDF [`Zipfian`] and [`Categorical`] samplers, all
//! deterministic from a single `u64` seed — the fleet subsystem derives
//! thousands of tenant personalities from these and nothing else.
//!
//! Determinism contract: for a fixed seed and construction parameters the
//! produced sequence is identical on every platform (the CDF tables are
//! pure `f64` arithmetic in a fixed accumulation order, and sampling is a
//! `partition_point` over them).

/// The splitmix64 generator: the minimal seedable stream every
/// deterministic derivation in this workspace builds on.
///
/// Not cryptographic; statistically solid for simulation draws and cheap
/// enough to keep one per tenant.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` from the high 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`; `0` when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift range reduction: unbiased enough for
            // simulation draws, and branch-free unlike rejection.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// Exact Zipfian sampler over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`. Built as an inverse-CDF table, so a draw
/// is one uniform plus one binary search.
#[derive(Debug, Clone)]
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipfian needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipfian exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipfian { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of `rank` (0 outside the support).
    pub fn pmf(&self, rank: usize) -> f64 {
        match rank {
            0 => self.cdf[0],
            r if r < self.cdf.len() => self.cdf[r] - self.cdf[r - 1],
            _ => 0.0,
        }
    }

    /// Draws a rank in `0..ranks()`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Categorical sampler over explicit weights (the Zipfian's general
/// sibling, used for tenant device / network-profile draws).
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Builds the sampler from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical needs at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be >= 0, got {w}");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in &mut cdf {
            *c /= acc;
        }
        Categorical { cdf }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a category index in `0..categories()`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = SplitMix64::new(43);
        assert_ne!(seq_a[0], c.next_u64());
    }

    #[test]
    fn splitmix_known_first_value() {
        // Reference value of splitmix64(seed=0), pinned so the stream can
        // never silently change (fleet tenant derivation depends on it).
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn next_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn next_below_respects_the_bound() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn zipfian_sampling_is_deterministic() {
        let z = Zipfian::new(10, 1.1);
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zipfian_frequencies_match_the_pmf() {
        let z = Zipfian::new(7, 1.0);
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let mut counts = [0u64; 7];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Monotone-decreasing popularity, and each empirical frequency
        // within a few percent (absolute) of the exact pmf.
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "popularity should decrease with rank");
        }
        for (rank, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            let p = z.pmf(rank);
            assert!(
                (freq - p).abs() < 0.01,
                "rank {rank}: freq {freq:.4} vs pmf {p:.4}"
            );
        }
        let total_p: f64 = (0..7).map(|r| z.pmf(r)).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipfian_exponent_zero_is_uniform() {
        let z = Zipfian::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn categorical_frequencies_match_the_weights() {
        let c = Categorical::new(&[2.0, 1.0, 1.0]);
        assert_eq!(c.categories(), 3);
        let mut rng = SplitMix64::new(11);
        let n = 40_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&x| x as f64 / n as f64).collect();
        assert!((freq[0] - 0.5).abs() < 0.02, "freq {freq:?}");
        assert!((freq[1] - 0.25).abs() < 0.02, "freq {freq:?}");
        assert!((freq[2] - 0.25).abs() < 0.02, "freq {freq:?}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_zipfian_panics() {
        let _ = Zipfian::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn zero_weight_categorical_panics() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }
}
