//! Memory-allocation wrappers (`kml_malloc`, `kml_calloc`, `kml_free`, ...).
//!
//! In the paper, KML wraps `malloc`/`kmalloc` so the same ML code links in
//! both personas, supports **memory reservation** so training keeps working
//! under memory pressure (§3.1), and caps total usage so the framework stays
//! within its configured footprint. This module reproduces those behaviours:
//!
//! - byte-accurate accounting of live and peak usage (the paper reports the
//!   readahead model's footprint — 3,916 B static + 676 B inference scratch —
//!   from exactly this kind of accounting);
//! - an optional reservation pool that allocations are charged against;
//! - deterministic allocation-failure injection for fault testing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::{Persona, PlatformError, Result};

thread_local! {
    // const-initialized so reading/updating the counters never allocates —
    // the counting hooks run *inside* the allocator.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_FREES: Cell<u64> = const { Cell::new(0) };
}

// Process-wide totals alongside the per-thread cells: steady-state tests for
// paths that fan work out across the persistent worker pool need to see
// allocations performed *on pool threads*, which the per-thread counters of
// the measuring thread cannot.
static PROCESS_ALLOCS: AtomicU64 = AtomicU64::new(0);
static PROCESS_FREES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper around the system allocator that counts every
/// heap allocation per thread. Install it as the `#[global_allocator]` of a
/// dedicated test binary to *prove* a code path is allocation-free — the
/// mechanism behind the zero-allocation steady-state inference regression
/// test (the paper's runtime is garbage-free in steady state, §3.1/§4):
///
/// ```ignore
/// use kml_platform::alloc::CountingSystemAlloc;
///
/// #[global_allocator]
/// static ALLOC: CountingSystemAlloc = CountingSystemAlloc;
///
/// let before = CountingSystemAlloc::thread_allocations();
/// hot_path();
/// assert_eq!(CountingSystemAlloc::thread_allocations(), before);
/// ```
///
/// Counters are per-thread, so concurrent test threads (the default libtest
/// harness) do not perturb each other's measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSystemAlloc;

impl CountingSystemAlloc {
    /// Heap allocations performed by the current thread (including
    /// reallocations) since it started.
    pub fn thread_allocations() -> u64 {
        THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
    }

    /// Heap frees performed by the current thread since it started.
    pub fn thread_frees() -> u64 {
        THREAD_FREES.try_with(Cell::get).unwrap_or(0)
    }

    /// Heap allocations performed by **every** thread of the process since
    /// start. Use this (instead of [`Self::thread_allocations`]) to measure
    /// paths that dispatch onto the persistent worker pool, whose
    /// allocations land on pool threads. Note: in a multi-threaded test
    /// harness other concurrently-running tests perturb this counter —
    /// process-wide measurements belong in single-test binaries or
    /// `--test-threads=1` contexts.
    pub fn process_allocations() -> u64 {
        PROCESS_ALLOCS.load(Ordering::Relaxed)
    }

    /// Heap frees performed by every thread of the process since start.
    pub fn process_frees() -> u64 {
        PROCESS_FREES.load(Ordering::Relaxed)
    }
}

// `try_with` everywhere: during thread teardown the TLS slot may already be
// destroyed, and the allocator must keep working (uncounted) rather than
// panic.
unsafe impl GlobalAlloc for CountingSystemAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        PROCESS_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        PROCESS_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        PROCESS_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let _ = THREAD_FREES.try_with(|c| c.set(c.get() + 1));
        PROCESS_FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Accounting allocator used by every KML component.
///
/// Cloning an allocator yields a handle to the *same* accounting state, so a
/// model and its layers can share one budget.
///
/// # Example
///
/// ```
/// use kml_platform::{alloc::KmlAllocator, Persona};
///
/// let alloc = KmlAllocator::new(Persona::User);
/// let a = alloc.alloc_bytes(100).unwrap();
/// assert_eq!(alloc.live_bytes(), 100);
/// drop(a);
/// assert_eq!(alloc.live_bytes(), 0);
/// assert_eq!(alloc.peak_bytes(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct KmlAllocator {
    inner: Arc<AllocState>,
}

#[derive(Debug)]
struct AllocState {
    persona: Persona,
    live: AtomicUsize,
    peak: AtomicUsize,
    total_allocs: AtomicU64,
    total_frees: AtomicU64,
    /// Remaining bytes of an active reservation; `usize::MAX` = no reservation.
    reserved_remaining: AtomicUsize,
    reservation_active: AtomicBool,
    /// Fail the next N allocations (fault injection).
    fail_next: AtomicUsize,
}

const NO_RESERVATION: usize = usize::MAX;

impl KmlAllocator {
    /// Creates an allocator for the given persona with no reservation.
    pub fn new(persona: Persona) -> Self {
        KmlAllocator {
            inner: Arc::new(AllocState {
                persona,
                live: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                total_allocs: AtomicU64::new(0),
                total_frees: AtomicU64::new(0),
                reserved_remaining: AtomicUsize::new(NO_RESERVATION),
                reservation_active: AtomicBool::new(false),
                fail_next: AtomicUsize::new(0),
            }),
        }
    }

    /// The persona this allocator serves.
    pub fn persona(&self) -> Persona {
        self.inner.persona
    }

    /// Pre-reserves `bytes` so subsequent allocations are guaranteed to
    /// succeed up to that amount even "under memory pressure" (paper §3.1).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ReservationActive`] if a reservation is
    /// already in place.
    pub fn reserve(&self, bytes: usize) -> Result<()> {
        if self.inner.reservation_active.swap(true, Ordering::AcqRel) {
            return Err(PlatformError::ReservationActive);
        }
        self.inner
            .reserved_remaining
            .store(bytes, Ordering::Release);
        Ok(())
    }

    /// Drops the active reservation (if any); future allocations are unbounded.
    pub fn release_reservation(&self) {
        self.inner
            .reserved_remaining
            .store(NO_RESERVATION, Ordering::Release);
        self.inner
            .reservation_active
            .store(false, Ordering::Release);
    }

    /// Bytes still available in the active reservation, or `None` if no
    /// reservation is active.
    pub fn reservation_remaining(&self) -> Option<usize> {
        let rem = self.inner.reserved_remaining.load(Ordering::Acquire);
        (rem != NO_RESERVATION).then_some(rem)
    }

    /// Injects `n` allocation failures: the next `n` calls to an `alloc_*`
    /// function return [`PlatformError::OutOfMemory`].
    pub fn inject_failures(&self, n: usize) {
        self.inner.fail_next.store(n, Ordering::Release);
    }

    /// Allocates a zeroed buffer of `len` bytes (the `kml_calloc` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfMemory`] when a fault is injected or the
    /// active reservation cannot cover `len` bytes.
    pub fn alloc_bytes(&self, len: usize) -> Result<KmlBox<u8>> {
        self.charge(len)?;
        Ok(KmlBox {
            data: vec![0u8; len].into_boxed_slice(),
            alloc: self.clone(),
        })
    }

    /// Allocates a slice of `len` default-initialized `T` (the typed
    /// `kml_malloc` analogue).
    ///
    /// # Errors
    ///
    /// Same conditions as [`KmlAllocator::alloc_bytes`].
    pub fn alloc_slice<T: Default + Clone>(&self, len: usize) -> Result<KmlBox<T>> {
        let bytes = len * std::mem::size_of::<T>();
        self.charge(bytes)?;
        Ok(KmlBox {
            data: vec![T::default(); len].into_boxed_slice(),
            alloc: self.clone(),
        })
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    /// High-water mark of [`KmlAllocator::live_bytes`] since creation.
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak.load(Ordering::Acquire)
    }

    /// Number of successful allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.inner.total_allocs.load(Ordering::Acquire)
    }

    /// Number of frees performed.
    pub fn free_count(&self) -> u64 {
        self.inner.total_frees.load(Ordering::Acquire)
    }

    /// Resets the peak-usage high-water mark to the current live usage,
    /// so a subsequent phase (e.g. one inference pass) can be measured alone.
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.live_bytes(), Ordering::Release);
    }

    fn charge(&self, bytes: usize) -> Result<()> {
        // Fault injection first: decrement fail_next if it is non-zero.
        let mut failures = self.inner.fail_next.load(Ordering::Acquire);
        while failures > 0 {
            match self.inner.fail_next.compare_exchange_weak(
                failures,
                failures - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Err(PlatformError::OutOfMemory {
                        requested: bytes,
                        available: self.reservation_remaining(),
                    })
                }
                Err(cur) => failures = cur,
            }
        }

        // Charge the reservation if one is active.
        let mut rem = self.inner.reserved_remaining.load(Ordering::Acquire);
        while rem != NO_RESERVATION {
            if rem < bytes {
                return Err(PlatformError::OutOfMemory {
                    requested: bytes,
                    available: Some(rem),
                });
            }
            match self.inner.reserved_remaining.compare_exchange_weak(
                rem,
                rem - bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(cur) => rem = cur,
            }
        }

        let live = self.inner.live.fetch_add(bytes, Ordering::AcqRel) + bytes;
        self.inner.peak.fetch_max(live, Ordering::AcqRel);
        self.inner.total_allocs.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    fn uncharge(&self, bytes: usize) {
        self.inner.live.fetch_sub(bytes, Ordering::AcqRel);
        self.inner.total_frees.fetch_add(1, Ordering::AcqRel);
        // A freed allocation returns its bytes to the reservation pool.
        let rem = self.inner.reserved_remaining.load(Ordering::Acquire);
        if rem != NO_RESERVATION {
            self.inner
                .reserved_remaining
                .fetch_add(bytes, Ordering::AcqRel);
        }
    }
}

impl Default for KmlAllocator {
    fn default() -> Self {
        KmlAllocator::new(Persona::User)
    }
}

/// An owned, accounted buffer returned by [`KmlAllocator`].
///
/// Dropping the box returns its bytes to the allocator's accounting (and to
/// the reservation pool if one is active) — the `kml_free` analogue.
#[derive(Debug)]
pub struct KmlBox<T> {
    data: Box<[T]>,
    alloc: KmlAllocator,
}

impl<T> KmlBox<T> {
    /// Length of the buffer in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<T> std::ops::Deref for KmlBox<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for KmlBox<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for KmlBox<T> {
    fn drop(&mut self) {
        self.alloc
            .uncharge(self.data.len() * std::mem::size_of::<T>());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_tracks_live_and_peak() {
        let alloc = KmlAllocator::new(Persona::User);
        let a = alloc.alloc_bytes(100).unwrap();
        let b = alloc.alloc_bytes(50).unwrap();
        assert_eq!(alloc.live_bytes(), 150);
        assert_eq!(alloc.peak_bytes(), 150);
        drop(a);
        assert_eq!(alloc.live_bytes(), 50);
        assert_eq!(alloc.peak_bytes(), 150);
        drop(b);
        assert_eq!(alloc.live_bytes(), 0);
        assert_eq!(alloc.alloc_count(), 2);
        assert_eq!(alloc.free_count(), 2);
    }

    #[test]
    fn typed_allocations_charge_element_size() {
        let alloc = KmlAllocator::new(Persona::User);
        let v = alloc.alloc_slice::<f64>(10).unwrap();
        assert_eq!(alloc.live_bytes(), 80);
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn reservation_caps_usage_and_refunds_on_free() {
        let alloc = KmlAllocator::new(Persona::Kernel);
        alloc.reserve(128).unwrap();
        let a = alloc.alloc_bytes(100).unwrap();
        assert_eq!(alloc.reservation_remaining(), Some(28));
        let err = alloc.alloc_bytes(64).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::OutOfMemory {
                requested: 64,
                available: Some(28)
            }
        ));
        drop(a);
        assert_eq!(alloc.reservation_remaining(), Some(128));
        // Now the same allocation succeeds.
        let _b = alloc.alloc_bytes(64).unwrap();
    }

    #[test]
    fn double_reservation_rejected() {
        let alloc = KmlAllocator::new(Persona::Kernel);
        alloc.reserve(10).unwrap();
        assert_eq!(alloc.reserve(20), Err(PlatformError::ReservationActive));
        alloc.release_reservation();
        alloc.reserve(20).unwrap();
    }

    #[test]
    fn fault_injection_fails_exactly_n_allocations() {
        let alloc = KmlAllocator::new(Persona::User);
        alloc.inject_failures(2);
        assert!(alloc.alloc_bytes(8).is_err());
        assert!(alloc.alloc_bytes(8).is_err());
        assert!(alloc.alloc_bytes(8).is_ok());
    }

    #[test]
    fn reset_peak_rebaselines_to_live() {
        let alloc = KmlAllocator::new(Persona::User);
        let a = alloc.alloc_bytes(100).unwrap();
        drop(a);
        assert_eq!(alloc.peak_bytes(), 100);
        alloc.reset_peak();
        assert_eq!(alloc.peak_bytes(), 0);
        let _b = alloc.alloc_bytes(10).unwrap();
        assert_eq!(alloc.peak_bytes(), 10);
    }

    #[test]
    fn clones_share_accounting() {
        let alloc = KmlAllocator::new(Persona::User);
        let clone = alloc.clone();
        let _a = clone.alloc_bytes(64).unwrap();
        assert_eq!(alloc.live_bytes(), 64);
    }

    #[test]
    fn concurrent_allocation_accounting_is_exact() {
        let alloc = KmlAllocator::new(Persona::User);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = alloc.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let b = a.alloc_bytes(16).unwrap();
                        drop(b);
                    }
                });
            }
        });
        assert_eq!(alloc.live_bytes(), 0);
        assert_eq!(alloc.alloc_count(), 800);
        assert_eq!(alloc.free_count(), 800);
    }
}
